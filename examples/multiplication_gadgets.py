"""How to multiply with one inequality: the gadgets of Section 3.

The surprising combinatorial engine behind Theorem 3: a pair of
conjunctive queries can "multiply by q" (Definition 3) — the b-query
systematically undercounts the s-query by an exact factor on some database
while never undercounting by more on any non-trivial database.

* β (Lemma 5) multiplies by (p+1)²/2p using one inequality,
* γ (Lemma 10) multiplies by (m−1)/m using none,
* their Lemma 4 composition hits any exact natural number c.

Run:  python examples/multiplication_gadgets.py
"""

from repro.core import alpha_gadget, beta_gadget, gamma_gadget
from repro.decision import enumerate_structures, random_structures
from repro.homomorphism import count


def show_beta() -> None:
    print("=" * 72)
    print("β gadget (Lemma 5): CYCLIQ pairs with one inequality")
    for p in (3, 4, 5):
        gadget = beta_gadget(p)
        value_s, value_b = gadget.witness_counts()
        print(
            f"  p = {p}: ratio = {gadget.ratio}  witness counts: "
            f"β_s = {value_s} = (p+1)², β_b = {value_b} = 2p  "
            f"equality verified: {gadget.verify_equality()}"
        )
    # The (≤) side, exhaustively for p = 3 over all 2-element structures.
    gadget = beta_gadget(3)
    stream = enumerate_structures(
        gadget.query_s.schema, 2, nontrivial_constants=True
    )
    violator = gadget.upper_bound_violation(stream)
    print(
        "  (≤) checked on all 256 two-element structures: "
        f"{'violated!' if violator else 'holds everywhere'}"
    )


def show_gamma() -> None:
    print("=" * 72)
    print("γ gadget (Lemma 10): fine-tuning below 1 with no inequality")
    for m in (3, 4, 5, 8):
        gadget = gamma_gadget(m)
        print(
            f"  m = {m}: ratio = {gadget.ratio}  witness counts: "
            f"{gadget.witness_counts()}  inequalities: "
            f"{gadget.inequality_counts}"
        )


def show_alpha() -> None:
    print("=" * 72)
    print("α = β ∧̄ γ (Lemma 4): exact multiplication by any natural c")
    for c in (2, 3, 5):
        gadget = alpha_gadget(c)
        value_s, value_b = gadget.witness_counts()
        print(
            f"  c = {c}: p = {2*c-1}, m = {2*c}; witness: α_s = {value_s}, "
            f"α_b = {value_b}, ratio = {value_s}/{value_b} = {gadget.ratio}"
        )
        stream = random_structures(
            gadget.query_s.schema.union(gadget.query_b.schema),
            domain_size=2,
            count=40,
            nontrivial_constants=True,
            seed=c,
        )
        violator = gadget.upper_bound_violation(stream)
        print(
            f"         (≤) on 40 random non-trivial structures: "
            f"{'violated!' if violator else 'holds'}"
        )


def show_triviality_matters() -> None:
    print("=" * 72)
    print("Why non-triviality? The 'well of positivity' (Section 1.2)")
    gadget = beta_gadget(3)
    witness = gadget.witness
    # Identify spade with heart: the database becomes trivial.
    from repro.naming import HEART, SPADE

    well = witness.relabel({witness.interpret(SPADE): witness.interpret(HEART)})
    value_s = count(gadget.query_s, well)
    value_b = count(gadget.query_b, well)
    print(
        f"  on the quotient (trivial) database: β_s = {value_s}, "
        f"β_b = {value_b} — the inequality x₁ ≠ y₁ can never fire, so no "
        "pair of queries with an inequality in the b-query can contain an "
        "inequality-free s-query on trivial databases."
    )


def main() -> None:
    show_beta()
    show_gamma()
    show_alpha()
    show_triviality_matters()


if __name__ == "__main__":
    main()
