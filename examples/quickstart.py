"""Quickstart: conjunctive queries under bag semantics.

Build a small database, count query answers under multiset semantics, and
see the Chaudhuri–Vardi observation — set-semantics containment does not
survive in the bag world — reproduced on a five-line example.

Run:  python examples/quickstart.py
"""

from repro import (
    Schema,
    Structure,
    count,
    parse_query,
    set_contained,
)
from repro.decision import enumerate_structures, find_counterexample


def main() -> None:
    # A tiny social graph: follows(a, b) edges.
    schema = Schema.from_arities({"follows": 2})
    graph = Structure(
        schema,
        {
            "follows": [
                ("ada", "bob"),
                ("bob", "ada"),
                ("bob", "cyd"),
                ("cyd", "cyd"),
            ]
        },
    )

    # Boolean conjunctive queries; under bag semantics a boolean query
    # evaluates to the NUMBER of homomorphisms (Section 2.1 of the paper).
    mutual = parse_query("follows(x, y) & follows(y, x)")
    edge = parse_query("follows(x, y)")
    print(f"edges:          {count(edge, graph)}")
    print(f"mutual follows: {count(mutual, graph)}")

    # Set semantics: 'mutual' is contained in 'edge' (Chandra-Merlin, 1977).
    print(f"set-contained(mutual ⊑ edge): {set_contained(mutual, edge)}")

    # Bag semantics: containment still holds here (counts can only drop
    # when more atoms constrain the same variables)...
    verdict = find_counterexample(
        mutual, edge, enumerate_structures(schema, 2)
    )
    print(f"bag counterexample on all 2-element databases: {verdict.found}")

    # ...but the converse direction separates the two semantics:
    # 'double' = two independent edges is set-EQUIVALENT to 'edge', yet its
    # bag value is the square of edge's.
    double = parse_query("follows(x, y) & follows(u, v)")
    print(f"set-contained(double ⊑ edge): {set_contained(double, edge)}")
    outcome = find_counterexample(double, edge, enumerate_structures(schema, 2))
    assert outcome.counterexample is not None
    d = outcome.counterexample
    print(
        "bag semantics disagrees: on a database with "
        f"{d.fact_count('follows')} edges, double(D) = {outcome.lhs} > "
        f"edge(D) = {outcome.rhs}"
    )
    print(
        "\nThis gap — trivial for sets, open for bags — is the subject of "
        "the reproduced paper."
    )


if __name__ == "__main__":
    main()
