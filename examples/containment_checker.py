"""A practical bag-containment checker for query optimization.

``QCP^bag_CQ`` is open (and its generalizations are undecidable — the
paper's subject), so no complete decision procedure exists.  What a query
optimizer can still use is a *three-valued* checker built from sound
one-sided certificates:

* CONTAINED via an onto query homomorphism (the Lemma 12 observation);
* NOT_CONTAINED via Chandra–Merlin failure, blow-up asymptotics
  (Lemma 22), or an explicit counterexample database;
* UNKNOWN otherwise.

This example runs the checker over a small workload of rewrite candidates
the way an optimizer would: "may I replace φ_b by φ_s without ever
reporting more duplicate rows?"

Run:  python examples/containment_checker.py
"""

from repro.decision import (
    Verdict,
    decide_bag_containment,
    enumerate_structures,
    random_structures,
)
from repro.queries import parse_query
from repro.relational import Schema

SCHEMA = Schema.from_arities({"E": 2})

#: (name, candidate rewrite φ_s, original φ_b)
WORKLOAD = [
    (
        "drop redundant self-join",
        parse_query("E(x, y)"),
        parse_query("E(x, y) & E(x, y2)"),
    ),
    (
        "2-cycle vs edge",
        parse_query("E(x, y) & E(y, x)"),
        parse_query("E(x, y)"),
    ),
    (
        "cartesian square vs edge",
        parse_query("E(x, y) & E(u, v)"),
        parse_query("E(x, y)"),
    ),
    (
        "loop vs 2-cycle",
        parse_query("E(x, x)"),
        parse_query("E(x, y) & E(y, x)"),
    ),
    (
        "triangle vs 2-cycle",
        parse_query("E(x, y) & E(y, z) & E(z, x)"),
        parse_query("E(x, y) & E(y, x)"),
    ),
    (
        "path-2 vs cherry",
        parse_query("E(x, y) & E(y, z)"),
        parse_query("E(u, v) & E(w, v)"),
    ),
]


def candidate_stream():
    yield from enumerate_structures(SCHEMA, 2)
    yield from random_structures(SCHEMA, domain_size=4, count=120, seed=0)


def main() -> None:
    print(f"{'rewrite':<28} {'verdict':<15} evidence")
    print("-" * 100)
    for name, phi_s, phi_b in WORKLOAD:
        certificate = decide_bag_containment(phi_s, phi_b, candidate_stream())
        marker = {
            Verdict.CONTAINED: "SAFE",
            Verdict.NOT_CONTAINED: "UNSAFE",
            Verdict.UNKNOWN: "unknown",
        }[certificate.verdict]
        reason = certificate.reason
        if len(reason) > 52:
            reason = reason[:49] + "..."
        print(f"{name:<28} {marker:<15} {reason}")
    print(
        "\n'unknown' is not a bug: deciding bag containment of CQs has been "
        "open since Chaudhuri & Vardi (1993), and the paper shows its "
        "natural generalizations are undecidable."
    )


if __name__ == "__main__":
    main()
