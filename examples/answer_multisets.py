"""Answer multisets: the queries a real database actually returns.

The paper's machinery is phrased for boolean queries, but the problem it
studies — ``QCP^bag`` of Section 1.1 — is about queries whose results are
**multisets of tuples** (SQL without DISTINCT).  This example shows the
two worlds connected:

* projecting a join keeps duplicates, and duplicates are exactly what
  distinguishes bag from set containment;
* reading constants as output variables (Section 2.3) turns boolean
  counting into answer multiplicities and back;
* for projection-free queries bag containment is *decidable* — the [7]
  fragment — and the library's exact decision procedure agrees with
  exhaustive checking.

Run:  python examples/answer_multisets.py
"""

from repro.decision import enumerate_structures
from repro.decision.projection_free import projection_free_contained
from repro.queries import OpenQuery, bag_answer_counterexample, parse_query
from repro.relational import Schema, Structure


def show_duplicates() -> None:
    print("=" * 72)
    print("1. Projection keeps duplicates (SQL without DISTINCT)")
    schema = Schema.from_arities({"reviews": 2})
    d = Structure(
        schema,
        {
            "reviews": [
                ("ana", "paper1"),
                ("ana", "paper2"),
                ("ana", "paper3"),
                ("ben", "paper1"),
            ]
        },
    )
    reviewers = OpenQuery(parse_query("reviews(r, p)"), ("r",))
    print("  SELECT r FROM reviews  (bag semantics):")
    for answer, multiplicity in sorted(reviewers.answers(d).items()):
        print(f"    {answer[0]}: multiplicity {multiplicity}")


def show_bag_vs_set() -> None:
    print("=" * 72)
    print("2. Bag containment of answers is strictly finer than set")
    schema = Schema.from_arities({"E": 2})
    fanout = OpenQuery(parse_query("E(x, y)"), ("x",))
    fanout_squared = OpenQuery(parse_query("E(x, y) & E(x, z)"), ("x",))
    # Set semantics: both return the same x's.  Bag semantics: the square
    # overtakes once any x has out-degree >= 2.
    hit = bag_answer_counterexample(
        fanout_squared, fanout, enumerate_structures(schema, 2)
    )
    assert hit is not None
    structure, answer = hit
    print(
        f"  fanout²(D)[{answer}] = "
        f"{fanout_squared.answers(structure)[answer]} > "
        f"fanout(D)[{answer}] = {fanout.answers(structure)[answer]} "
        f"on a {structure.fact_count('E')}-edge database"
    )


def show_decidable_fragment() -> None:
    print("=" * 72)
    print("3. The projection-free fragment is decidable ([7])")
    cases = [
        ("E(x, y) & E(y, x)", "E(x, y)"),
        ("E(x, y)", "E(x, y) & E(y, x)"),
        ("E(x, y)", "E(y, x)"),
    ]
    for s_text, b_text in cases:
        q_s = OpenQuery(parse_query(s_text), ("x", "y"))
        q_b = OpenQuery(parse_query(b_text), ("x", "y"))
        verdict = projection_free_contained(q_s, q_b)
        print(f"  [{s_text}] ⊑_bag [{b_text}] (head x,y): {verdict}")
    print(
        "  (with projections allowed, the same question is the open "
        "QCP^bag_CQ — and the paper shows its generalizations are "
        "undecidable)"
    )


def main() -> None:
    show_duplicates()
    show_bag_vs_set()
    show_decidable_fragment()


if __name__ == "__main__":
    main()
