"""Theorem 5: eliminating s-query inequalities, constructively.

Section 5 proves that allowing inequalities in the *small* query does not
change the decidability status of bag containment: any counterexample for
the inequality-free relaxation ``ψ'_s`` can be amplified — product powers
(Lemma 22 ii) followed by a blow-up (Lemma 24) — into a counterexample for
``ψ_s`` itself.

This example runs the amplification on a concrete pair and prints the
counts at each step, so you can watch the inequality "lose its bite" as
the blow-up gives every violating homomorphism room to separate its
endpoints.

Run:  python examples/theorem5_inequality_elimination.py
"""

from repro.core import lemma24_holds, transfer_witness
from repro.homomorphism import count
from repro.queries import parse_query
from repro.relational import Schema, Structure, blowup, power


def main() -> None:
    psi_s = parse_query("E(x, y) & x != y")
    psi_b = parse_query("F(u, v)")
    print(f"ψ_s = {psi_s}")
    print(f"ψ_b = {psi_b}")

    # A source database where the RELAXED containment already fails:
    # three E-edges but a single F-fact.
    source = Structure(
        Schema.from_arities({"E": 2, "F": 2}),
        {"E": [(0, 0), (1, 1), (0, 1)], "F": [(0, 0)]},
    )
    relaxed = psi_s.without_inequalities()
    print(
        f"\nsource D₀: ψ'_s(D₀) = {count(relaxed, source)} > "
        f"ψ_b(D₀) = {count(psi_b, source)}   "
        f"but ψ_s(D₀) = {count(psi_s, source)} (the inequality bites)"
    )

    print("\namplification ladder (Lemma 22 ii, then blow-up):")
    for k in (1, 2, 3):
        amplified = power(source, k) if k > 1 else source
        blown = blowup(amplified, 2)
        print(
            f"  k = {k}: ψ_s(blowup(D₀^×{k}, 2)) = {count(psi_s, blown):>6}   "
            f"ψ'_s = {count(relaxed, blown):>6}   ψ_b = {count(psi_b, blown):>6}"
        )

    print(f"\nLemma 24 bound holds on D₀: {lemma24_holds(psi_s, source)}")

    transfer = transfer_witness(psi_s, psi_b, source)
    print(
        f"\nLemma 23 witness found: D = blowup(D₀^×{transfer.product_power}, "
        f"{transfer.blowup_factor}) with ψ_s(D) = {transfer.lhs} > "
        f"ψ_b(D) = {transfer.rhs}"
    )
    print(
        "\nConclusion (Theorem 5): deciding ψ_s ≤ ψ_b with inequalities in "
        "ψ_s reduces to the inequality-free case — so only inequalities in "
        "the b-query can be the source of extra undecidability."
    )


if __name__ == "__main__":
    main()
