"""The full undecidability pipeline, end to end.

Takes Diophantine equations with known solvability, runs Appendix B
(polynomial → Lemma 11 normal form) and Section 4 (Lemma 11 → conjunctive
queries), and demonstrates the reduction's correctness constructively:

* for a *solvable* equation, a violating valuation is found on a grid and
  turned into a concrete non-trivial database ``D`` with
  ``ℂ·φ_s(D) > φ_b(D)`` — verified by exact homomorphism counting;
* for an *unsolvable* equation, no violation exists on the grid, and every
  correct database built from grid valuations satisfies the inequality.

Run:  python examples/hilbert_reduction.py
"""

from repro.core import reduce_polynomial
from repro.polynomials import parity_obstruction, pell, sum_of_squares


def demonstrate(instance, grid: int) -> None:
    print("=" * 72)
    print(instance)
    hilbert, reduction = reduce_polynomial(instance.polynomial)
    lemma11 = reduction.instance

    print(f"\nAppendix B normal form: {lemma11}")
    print(
        f"dimensions: n = {lemma11.n} variables, m = {lemma11.m} monomials, "
        f"d = {lemma11.d} degree, c = {lemma11.c}"
    )
    report = reduction.size_report()
    print(
        f"Theorem 1 output: ℂ = {report['C']}, "
        f"φ_s has {report['phi_s_atoms']} atoms, "
        f"φ_b has ~10^{len(str(report['phi_b_atoms'])) - 1} atoms "
        f"(factorized: {len(reduction.phi_b.factors)} factors)"
    )

    witness = reduction.find_counterexample(grid)
    if witness is None:
        print(f"grid search (values ≤ {grid}): no violating valuation —")
        print("consistent with the equation being unsolvable.")
        sample = reduction.correct_database({n: 1 for n in range(1, lemma11.n + 1)})
        print(
            f"spot check, all-ones valuation: ℂ·φ_s = {reduction.lhs(sample)} "
            f"≤ φ_b = {reduction.rhs(sample)}"
        )
    else:
        print(
            f"violating valuation found: Ξ = {reduction.valuation_of(witness)}"
        )
        print(
            f"counterexample database: |domain| = {len(witness.domain)}, "
            f"{witness.fact_count()} facts, non-trivial = "
            f"{witness.is_nontrivial()}"
        )
        print(
            f"verified: ℂ·φ_s(D) = {reduction.lhs(witness)} > "
            f"φ_b(D) = {reduction.rhs(witness)}"
        )
    print()


def main() -> None:
    demonstrate(pell(2), grid=2)                # solvable: x=1, y=0
    demonstrate(sum_of_squares(7), grid=2)      # unsolvable: 7 ≠ a² + b²
    demonstrate(parity_obstruction(), grid=2)   # unsolvable: parity


if __name__ == "__main__":
    main()
