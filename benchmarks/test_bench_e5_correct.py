"""E5 — Lemma 15: on correct databases the π queries compute the polynomials.

Regenerates the identity table ``π_s(D) = P_s(Ξ)`` and
``π_b(D) = Ξ(x₁)^d·P_b(Ξ)`` over a valuation grid.  The benchmark times
one full identity check (build correct database + two exact counts).
"""

from repro.core import build_arena, build_pi_b, build_pi_s
from repro.homomorphism import count
from repro.polynomials import Lemma11Instance, Monomial

from benchmarks.conftest import print_table

INSTANCE = Lemma11Instance(
    c=3,
    monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
    s_coefficients=(2, 1),
    b_coefficients=(3, 4),
)


def _grid_rows() -> list[list]:
    arena = build_arena(INSTANCE)
    pi_s, pi_b = build_pi_s(INSTANCE), build_pi_b(INSTANCE)
    rows = []
    for valuation in INSTANCE.valuations(2):
        structure = arena.correct_database(valuation)
        measured_s = count(pi_s, structure)
        measured_b = count(pi_b, structure)
        expected_s = INSTANCE.p_s.evaluate(valuation)
        expected_b = valuation[1] ** INSTANCE.d * INSTANCE.p_b.evaluate(valuation)
        rows.append(
            [
                str(valuation),
                measured_s,
                expected_s,
                measured_b,
                expected_b,
                measured_s == expected_s and measured_b == expected_b,
            ]
        )
    return rows


def _one_check() -> bool:
    arena = build_arena(INSTANCE)
    structure = arena.correct_database({1: 3, 2: 2})
    value_s = count(build_pi_s(INSTANCE), structure)
    value_b = count(build_pi_b(INSTANCE), structure)
    return (
        value_s == INSTANCE.p_s.evaluate({1: 3, 2: 2})
        and value_b == 3**INSTANCE.d * INSTANCE.p_b.evaluate({1: 3, 2: 2})
    )


def test_e5_lemma15(benchmark):
    rows = _grid_rows()
    print_table(
        "E5 / Lemma 15 — exact polynomial evaluation by counting",
        ["Ξ", "π_s(D)", "P_s(Ξ)", "π_b(D)", "Ξ(x₁)^d·P_b(Ξ)", "exact"],
        rows,
    )
    assert all(row[-1] for row in rows)
    assert benchmark(_one_check)
