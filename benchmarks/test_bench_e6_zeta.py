"""E6 — Lemmas 17–18: ζ_b detects slight incorrectness.

Regenerates the table: ζ_b(D) = C₁ on correct databases; adding any single
extra Σ_RS atom pushes ζ_b(D) ≥ c·C₁.  The benchmark times the full
perturbation sweep (one extra atom per Σ_RS relation).
"""

from repro.core import build_arena, build_zeta
from repro.homomorphism import count
from repro.polynomials import Lemma11Instance, Monomial

from benchmarks.conftest import print_table

INSTANCE = Lemma11Instance(
    c=3,
    monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
    s_coefficients=(2, 1),
    b_coefficients=(3, 4),
)


def _rows() -> list[list]:
    arena = build_arena(INSTANCE)
    zeta = build_zeta(arena, INSTANCE.c)
    rows = [
        [
            "correct (D_Arena)",
            count(zeta.zeta_b, arena.d_arena),
            zeta.c1,
            "= C₁",
            count(zeta.zeta_b, arena.d_arena) == zeta.c1,
        ]
    ]
    for relation in arena.rs_relations:
        cheating = arena.d_arena.with_fact(relation, (("junk",), ("junk2",)))
        value = count(zeta.zeta_b, cheating)
        rows.append(
            [
                f"+1 atom of {relation}",
                value,
                INSTANCE.c * zeta.c1,
                "≥ c·C₁",
                value >= INSTANCE.c * zeta.c1,
            ]
        )
    return rows


def _sweep() -> bool:
    return all(row[-1] for row in _rows())


def test_e6_zeta(benchmark):
    arena = build_arena(INSTANCE)
    zeta = build_zeta(arena, INSTANCE.c)
    rows = _rows()
    print_table(
        f"E6 / Lemmas 17–18 — ζ_b punishment (j = {zeta.j}, k = {zeta.k}, "
        f"C₁ = {zeta.c1})",
        ["database", "ζ_b(D)", "bound", "relation", "holds"],
        rows,
    )
    assert benchmark(_sweep)
