"""E4 — Lemma 12: π_s(D) ≤ π_b(D) for every database.

Regenerates a table of (π_s, π_b) counts over random databases for several
Lemma 11 instances, exhibiting the onto homomorphism witness for each.
The benchmark times the onto-homomorphism validity check plus a counting
sweep on the richest instance.
"""

from repro.core import build_pi_b, build_pi_s, lemma12_homomorphism
from repro.decision import random_structures
from repro.homomorphism import count, is_homomorphism
from repro.polynomials import Lemma11Instance, Monomial
from repro.queries import Variable

from benchmarks.conftest import print_table

INSTANCES = {
    "unit": Lemma11Instance(
        c=2, monomials=(Monomial.of(1),), s_coefficients=(1,), b_coefficients=(1,)
    ),
    "rich": Lemma11Instance(
        c=3,
        monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
        s_coefficients=(2, 1),
        b_coefficients=(3, 4),
    ),
    "wide": Lemma11Instance(
        c=2,
        monomials=(Monomial.of(1, 2, 3), Monomial.of(1, 1, 2), Monomial.of(1, 3, 3)),
        s_coefficients=(1, 2, 1),
        b_coefficients=(2, 2, 3),
    ),
}


def _sweep(name: str, instance: Lemma11Instance) -> list[list]:
    """Candidates: correct databases, their perturbations, and random noise.

    Lemma 12 holds for *every* database, so the interesting candidates are
    ones where the counts are non-zero — correct databases of valuations,
    optionally with extra atoms thrown in.
    """
    import random

    from repro.core import build_arena

    rng = random.Random(17)
    arena = build_arena(instance)
    pi_s, pi_b = build_pi_s(instance), build_pi_b(instance)
    candidates = []
    live_valuations = [v for v in instance.valuations(2) if v[1] >= 1]
    for valuation in live_valuations[:4]:
        structure = arena.correct_database(valuation)
        candidates.append(structure)
        noisy = structure
        for _ in range(3):
            relation = rng.choice(arena.rs_relations)
            pool = sorted(structure.domain, key=repr)
            noisy = noisy.with_fact(
                relation, (rng.choice(pool), rng.choice(pool))
            )
        candidates.append(noisy)
    candidates.extend(
        random_structures(pi_b.schema, domain_size=3, count=3, density=0.5, seed=5)
    )
    rows = []
    for index, structure in enumerate(candidates):
        value_s, value_b = count(pi_s, structure), count(pi_b, structure)
        rows.append([name, index, value_s, value_b, value_s <= value_b])
    return rows


def _verify_onto_hom() -> bool:
    instance = INSTANCES["rich"]
    mapping = dict(lemma12_homomorphism(instance))
    pi_s, pi_b = build_pi_s(instance), build_pi_b(instance)
    canonical = pi_s.canonical_structure()
    if not is_homomorphism(mapping, pi_b, canonical):
        return False
    image = {term for term in mapping.values() if isinstance(term, Variable)}
    return pi_s.variables <= image


def test_e4_lemma12(benchmark):
    rows = []
    for name, instance in INSTANCES.items():
        rows.extend(_sweep(name, instance))
    print_table(
        "E4 / Lemma 12 — π_s(D) ≤ π_b(D) on random databases",
        ["instance", "db#", "π_s(D)", "π_b(D)", "≤ holds"],
        rows,
    )
    assert all(row[-1] for row in rows)

    assert benchmark(_verify_onto_hom), "Lemma 12 onto homomorphism broken"
