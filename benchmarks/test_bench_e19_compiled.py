"""E19 — the compiled engine: ``engine="compiled"`` vs fixed backtracking.

PR 7's acceptance benchmark: the per-component compilation layer
(per-relation fact indexes, the planner's variable order baked into a
flat closure chain, and array-based semiring aggregation for the
acyclic passes) must beat the recursive interpreter by at least 2x on
the slices the earlier experiments established — the E16 acyclic slice
(paths and trees over sparse random graphs) and the E13 engine-shootout
slice (stars and thin cycles over a dense 8-vertex graph) — while
staying bit-identical on every cell.

Timings are warm: ``_time_count`` takes the best of three runs, so the
first run pays the one-time artifact build (amortized by the PlanCache
across the process) and the reported figure is the steady-state replay
cost, which is what the planner's cost model prices.

The run emits ``benchmarks/BENCH_compiled.json`` (path overridable via the
``BENCH_COMPILED`` environment variable): one record per (shape, size)
cell with both latencies, the speedup, the compiled artifact's mode,
and whether the cell carries the 2x acceptance gate — the artifact CI
uploads and the repository checks in.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.homomorphism import compile_component, count
from repro.queries import parse_query
from repro.relational import Schema, Structure
from repro.workloads import cycle_query, path_query, star_query

from benchmarks.conftest import print_table

TREE_QUERY = parse_query("E(x, y) & E(y, z) & E(y, w) & E(w, u) & E(w, v)")


def _graph(n: int, seed: int = 0) -> Structure:
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)}
    return Structure(
        Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n)
    )


def _dense_graph(n: int, seed: int = 0, p: float = 0.5) -> Structure:
    rng = random.Random(seed)
    edges = {
        (i, j) for i in range(n) for j in range(n) if rng.random() < p
    }
    return Structure(
        Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n)
    )


#: (slice, shape, query, structure, carries_gate).  The gate sits on the
#: largest E16 instances and on both E13 cells — the rows the earlier
#: experiments used as their own acceptance bars.
def _cells() -> list[tuple[str, str, object, Structure, int, bool]]:
    cells = []
    for shape, query in (("path-6", path_query(6)), ("tree-5", TREE_QUERY)):
        for n in (16, 32, 64):
            cells.append(("E16", shape, query, _graph(n), n, n == 64))
    dense = _dense_graph(8)
    for shape, query in (
        ("star-6", star_query(6)),
        ("cycle-6", cycle_query(6)),
    ):
        cells.append(("E13", shape, query, dense, 8, True))
    return cells


def _time_count(query, graph, engine: str, repeats: int = 3) -> tuple[int, float]:
    """Best-of-``repeats`` latency (ms) and the count, for one engine."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = count(query, graph, engine=engine)
        best = min(best, (time.perf_counter() - t0) * 1000)
    return value, best


def _rows() -> tuple[list[list], list[dict]]:
    rows: list[list] = []
    records: list[dict] = []
    for slice_name, shape, query, graph, n, gated in _cells():
        modes = sorted(
            {
                compile_component(component, graph).mode
                for component in query.connected_components()
            }
        )
        compiled_value, compiled_ms = _time_count(query, graph, "compiled")
        bt_value, bt_ms = _time_count(query, graph, "backtracking")
        speedup = bt_ms / compiled_ms if compiled_ms > 0 else float("inf")
        rows.append(
            [
                slice_name,
                shape,
                n,
                ",".join(modes),
                f"{compiled_ms:.2f}",
                f"{bt_ms:.2f}",
                f"{speedup:.1f}x",
                compiled_value == bt_value,
            ]
        )
        records.append(
            {
                "slice": slice_name,
                "shape": shape,
                "domain_size": n,
                "compiled_modes": modes,
                "count": compiled_value,
                "compiled_ms": round(compiled_ms, 3),
                "backtracking_ms": round(bt_ms, 3),
                "speedup": round(speedup, 2),
                "agree": compiled_value == bt_value,
                "gated": gated,
            }
        )
    return rows, records


def test_e19_compiled_vs_backtracking(benchmark):
    rows, records = _rows()
    print_table(
        "E19 — engine=compiled vs fixed backtracking, E16/E13 slices",
        [
            "slice",
            "shape",
            "|V(D)|",
            "mode",
            "compiled ms",
            "backtracking ms",
            "speedup",
            "agree",
        ],
        rows,
    )
    assert all(row[-1] for row in rows)
    # The acceptance bar: on the largest E16 instances and on both E13
    # cells, compilation beats the interpreter by at least 2x.
    gated = [record for record in records if record["gated"]]
    assert gated and all(record["speedup"] >= 2.0 for record in gated), gated

    artifact = os.environ.get("BENCH_COMPILED", "benchmarks/BENCH_compiled.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump({"experiment": "E19", "rows": records}, handle, indent=2)
        handle.write("\n")

    graph = _graph(64)
    query = path_query(6)
    result = benchmark(count, query, graph, engine="compiled")
    assert result == count(query, graph, engine="backtracking")
