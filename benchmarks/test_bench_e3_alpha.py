"""E3 — Lemma 4 + Section 3.2: α = β ∧̄ γ multiplies by an exact natural c.

Regenerates the composition table (p = 2c−1, m = p+1, ratio collapses to
c) and verifies the (=) witness for each c.  The benchmark times the full
build-and-verify cycle at c = 3.
"""

from fractions import Fraction

from repro.core import alpha_gadget

from benchmarks.conftest import print_table


def _rows() -> list[list]:
    rows = []
    for c in (2, 3, 4, 5):
        gadget = alpha_gadget(c)
        value_s, value_b = gadget.witness_counts()
        rows.append(
            [
                c,
                2 * c - 1,
                2 * c,
                value_s,
                value_b,
                str(Fraction(value_s, value_b)),
                gadget.inequality_counts,
                gadget.verify_equality(),
            ]
        )
    return rows


def _build_and_verify() -> bool:
    return alpha_gadget(3).verify_equality()


def test_e3_alpha_gadget(benchmark):
    rows = _rows()
    print_table(
        "E3 / Section 3.2 — exact multiplication by c with one inequality",
        ["c", "p", "m", "α_s(D)", "α_b(D)", "ratio", "(≠ s, ≠ b)", "(=) ok"],
        rows,
    )
    for row in rows:
        assert row[5] == str(row[0])  # witness ratio is exactly c
        assert row[6] == (0, 1)
        assert row[7]

    assert benchmark(_build_and_verify)
