"""E7 — Lemmas 19–21: δ_b detects serious incorrectness.

Regenerates the table: δ_b(D) = 1 on correct databases (the label set
omits exactly the arena cycle length); identifying any two Arena constants
creates a short or a loop-extended cycle, driving δ_b(D) ≥ 2^C.  The
benchmark times the constant-identification sweep (with a demonstration
exponent C = 20 so the values stay printable).
"""

import itertools

from repro.core import build_arena, build_delta
from repro.homomorphism import count, count_at_least
from repro.polynomials import Lemma11Instance, Monomial

from benchmarks.conftest import print_table

INSTANCE = Lemma11Instance(
    c=3,
    monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
    s_coefficients=(2, 1),
    b_coefficients=(3, 4),
)

DEMO_EXPONENT = 20


def _rows() -> list[list]:
    arena = build_arena(INSTANCE)
    delta = build_delta(arena, DEMO_EXPONENT)
    d = arena.d_arena
    rows = [
        [
            "correct (D_Arena)",
            count(delta.delta_b, d),
            "= 1",
            count(delta.delta_b, d) == 1,
        ]
    ]
    names = [c.name for c in arena.constants]
    for left, right in itertools.combinations(names, 2):
        merged = d.relabel({d.interpret(left): d.interpret(right)})
        hits_bound = count_at_least(delta.delta_b, merged, 2**DEMO_EXPONENT)
        rows.append(
            [
                f"identify {left} = {right}",
                "≥ 2^C" if hits_bound else count(delta.delta_b, merged),
                "≥ 2^C",
                hits_bound,
            ]
        )
    return rows


def _sweep() -> bool:
    return all(row[-1] for row in _rows())


def test_e7_delta(benchmark):
    arena = build_arena(INSTANCE)
    rows = _rows()
    print_table(
        f"E7 / Lemmas 19–21 — δ_b punishment (𝕝 = {arena.cycle_length}, "
        f"labels L = 1..{arena.cycle_length + 1} minus {arena.cycle_length}, "
        f"demo C = {DEMO_EXPONENT})",
        ["database", "δ_b(D)", "bound", "holds"],
        rows,
    )
    assert benchmark(_sweep)
