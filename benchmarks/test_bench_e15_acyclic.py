"""E15 — the acyclic (Yannakakis) engine vs the general engines.

Regenerates the agreement/latency table for acyclic query shapes on
growing random graphs — the figure-analog showing the linear-time engine
pulling away from the general engines as the instance grows — and
benchmarks the acyclic engine on the largest instance.
"""

import random
import time

from repro.homomorphism import (
    count,
    count_homomorphisms_acyclic,
    count_homomorphisms_td,
    is_acyclic,
)
from repro.queries import parse_query
from repro.relational import Schema, Structure

from benchmarks.conftest import print_table

QUERY = parse_query("E(x, y) & E(y, z) & E(y, w) & E(w, u)")


def _graph(n: int, seed: int = 0) -> Structure:
    rng = random.Random(seed)
    edges = {
        (rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)
    }
    return Structure(Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n))


def _rows() -> list[list]:
    assert is_acyclic(QUERY)
    rows = []
    for n in (8, 16, 32, 64):
        graph = _graph(n)
        t0 = time.perf_counter()
        yannakakis = count_homomorphisms_acyclic(QUERY, graph)
        acyclic_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        backtracking = count(QUERY, graph)
        bt_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        treewidth = count_homomorphisms_td(QUERY, graph)
        td_ms = (time.perf_counter() - t0) * 1000
        rows.append(
            [
                n,
                yannakakis,
                f"{acyclic_ms:.1f}",
                f"{bt_ms:.1f}",
                f"{td_ms:.1f}",
                yannakakis == backtracking == treewidth,
            ]
        )
    return rows


def test_e15_acyclic_engine(benchmark):
    rows = _rows()
    print_table(
        "E15 — Yannakakis counting on a tree query, growing random graphs",
        ["|V(D)|", "count", "acyclic ms", "backtracking ms", "treewidth ms", "agree"],
        rows,
    )
    assert all(row[-1] for row in rows)

    graph = _graph(64)
    result = benchmark(count_homomorphisms_acyclic, QUERY, graph)
    assert result == count(QUERY, graph)
