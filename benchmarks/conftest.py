"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment table from EXPERIMENTS.md
(printed to stdout; run with ``-s`` to see them) and times a
representative computation via pytest-benchmark.
"""

from __future__ import annotations


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render an experiment table the way EXPERIMENTS.md records it."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    print()
    print(f"### {title}")
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
