"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment table from EXPERIMENTS.md
(printed to stdout; run with ``-s`` to see them) and times a
representative computation via pytest-benchmark.

Setting the ``BENCH_OBS`` environment variable to a path makes every
bench test run under an :func:`repro.obs.observe` scope and appends its
observability report (engine counters, memo hit rates, spans) to that
JSON artifact, keyed by test id::

    BENCH_OBS=BENCH_obs.json PYTHONPATH=src pytest benchmarks/ -q

The artifact is a single JSON object ``{test_id: report}``; reports have
the stable shape documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import observe


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render an experiment table the way EXPERIMENTS.md records it."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    print()
    print(f"### {title}")
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture(autouse=True)
def bench_obs(request):
    """Emit a per-test observability report when ``BENCH_OBS`` is set.

    Off by default so the benchmarks keep measuring the uninstrumented
    fast path (the E13 acceptance bar: no measurable overhead while
    disabled).
    """
    artifact = os.environ.get("BENCH_OBS")
    if not artifact:
        yield
        return
    with observe() as observation:
        yield observation
    payload: dict = {}
    if os.path.exists(artifact):
        try:
            with open(artifact, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    payload[request.node.nodeid] = observation.report()
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
