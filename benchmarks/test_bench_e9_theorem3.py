"""E9 — Theorem 3 + the paper's headline comparison table.

Two artifacts:

1. the end-to-end Theorem 3 run on the minimal Lemma 11 instance —
   materialized α gadget at ℂ = 54 (relation arity 107), verified
   counterexample transfer;
2. the inequality-budget table against Jayram–Kolaitis–Vee [15]:
   **59¹⁰ inequalities → 1**, the paper's central quantitative claim.

The benchmark times the counterexample transfer (the expensive verified
counting over the arity-107 gadget).
"""

from repro.baselines import JKV_INEQUALITY_COUNT, comparison_row, format_comparison_table
from repro.core import theorem3_reduction
from repro.polynomials import Lemma11Instance, Monomial

from benchmarks.conftest import print_table

INSTANCE = Lemma11Instance(
    c=2, monomials=(Monomial.of(1),), s_coefficients=(1,), b_coefficients=(1,)
)


def test_e9_theorem3(benchmark):
    reduction = theorem3_reduction(INSTANCE)

    row = comparison_row("minimal (ℂ = 54, arity 107)", reduction)
    print()
    print("### E9 / Theorem 3 vs Jayram-Kolaitis-Vee 2006 — inequality budget")
    print(format_comparison_table([row]))
    assert row.psi_s_inequalities == 0
    assert row.psi_b_inequalities == 1
    assert row.jkv_inequalities == JKV_INEQUALITY_COUNT

    sizes = [
        [
            "ψ_s",
            reduction.psi_s.total_atom_count,
            reduction.psi_s.total_variable_count,
            reduction.psi_s.total_inequality_count,
        ],
        [
            "ψ_b (factorized totals)",
            reduction.psi_b.total_atom_count,
            reduction.psi_b.total_variable_count,
            reduction.psi_b.total_inequality_count,
        ],
    ]
    print_table(
        "E9 — output query sizes (minimal instance)",
        ["query", "atoms", "variables", "inequalities"],
        sizes,
    )

    def transfer() -> bool:
        witness = reduction.find_counterexample(1)
        return witness is not None and reduction.lhs(witness) > reduction.rhs(
            witness
        )

    assert benchmark.pedantic(transfer, rounds=1, iterations=1)
