"""E10 — Section 5: structure operations and the Lemma 23 witness transfer.

Regenerates (a) the Lemma 22 identity table — blow-up scales counts by
k^{variables}, product powers exponentiate them — and (b) the Lemma 23/24
amplification ladder turning a relaxed counterexample into an
inequality-respecting one.  The benchmark times the witness transfer.
"""

from repro.core import transfer_witness
from repro.homomorphism import count
from repro.queries import parse_query
from repro.relational import Schema, Structure, blowup, power

from benchmarks.conftest import print_table


def _lemma22_rows() -> list[list]:
    base = Structure(
        Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 0), (1, 1)]}
    )
    rows = []
    for text in ("E(x, y)", "E(x, y) & E(y, x)", "E(x, y) & E(y, z)"):
        phi = parse_query(text)
        value = count(phi, base)
        for k in (2, 3):
            blown = count(phi, blowup(base, k))
            powered = count(phi, power(base, k))
            rows.append(
                [
                    text,
                    k,
                    blown,
                    k**phi.variable_count * value,
                    powered,
                    value**k,
                    blown == k**phi.variable_count * value
                    and powered == value**k,
                ]
            )
    return rows


def _transfer():
    psi_s = parse_query("E(x, y) & x != y")
    psi_b = parse_query("F(u, v)")
    source = Structure(
        Schema.from_arities({"E": 2, "F": 2}),
        {"E": [(0, 0), (1, 1), (0, 1)], "F": [(0, 0)]},
    )
    return transfer_witness(psi_s, psi_b, source)


def test_e10_theorem5(benchmark):
    rows = _lemma22_rows()
    print_table(
        "E10a / Lemma 22 — blow-up and product-power identities",
        ["φ", "k", "φ(blowup)", "k^j·φ(D)", "φ(D^×k)", "φ(D)^k", "exact"],
        rows,
    )
    assert all(row[-1] for row in rows)

    transfer = benchmark(_transfer)
    print_table(
        "E10b / Lemma 23 — inequality-elimination witness transfer",
        ["product power k", "blow-up", "ψ_s(D)", "ψ_b(D)", "violates"],
        [
            [
                transfer.product_power,
                transfer.blowup_factor,
                transfer.lhs,
                transfer.rhs,
                transfer.lhs > transfer.rhs,
            ]
        ],
    )
    assert transfer.lhs > transfer.rhs
