"""E14 — ablations of the counting engine's design choices.

DESIGN.md calls out three optimizations in the backtracking counter plus
the engine-level inclusion–exclusion over inequalities.  This bench
regenerates the ablation table (same exact counts, different costs) on the
paper's two hard shapes:

* a CYCLIQ gadget (high arity, rotation symmetry) — needs the subtree memo;
* a π_b-style coefficient ray (long thin path) — needs component splitting;
* a star with large X-fanout — needs private-atom counting.

Each variant is timed once (the slow variants are orders of magnitude
slower; we cap shapes so the worst case stays in seconds).
"""

import time

from repro.core import beta_gadget, build_arena, build_pi_b
from repro.homomorphism import count
from repro.homomorphism.backtracking import count_homomorphisms
from repro.polynomials import Lemma11Instance, Monomial

from benchmarks.conftest import print_table


def _cycliq_case():
    gadget = beta_gadget(13)
    query = gadget.query_s
    structure = gadget.witness
    return "CYCLIQ p=13 (β_s on witness)", query, structure


def _ray_case():
    instance = Lemma11Instance(
        c=2,
        monomials=(Monomial.of(1),),
        s_coefficients=(1,),
        b_coefficients=(120,),
    )
    arena = build_arena(instance)
    return (
        "ray length 119 (π_b, coefficient 120)",
        build_pi_b(instance),
        arena.correct_database({1: 2}),
    )


def _star_case():
    instance = Lemma11Instance(
        c=2,
        monomials=(Monomial.of(1, 2, 3),),
        s_coefficients=(2,),
        b_coefficients=(3,),
    )
    arena = build_arena(instance)
    return (
        "star d=3 with X-fanout 6 (π_b)",
        build_pi_b(instance),
        arena.correct_database({1: 6, 2: 6, 3: 6}),
    )


VARIANTS = [
    ("full engine", dict()),
    ("no subtree memo", dict(subtree_memo=False)),
    ("no component split", dict(component_split=False)),
    ("no private counting", dict(private_counting=False)),
    ("no memo, no private", dict(subtree_memo=False, private_counting=False)),
]


def _run_case(name, query, structure) -> list[list]:
    rows = []
    reference = None
    for label, flags in VARIANTS:
        start = time.perf_counter()
        value = count_homomorphisms(query, structure, **flags)
        elapsed_ms = (time.perf_counter() - start) * 1000
        if reference is None:
            reference = value
        rows.append([name, label, value, f"{elapsed_ms:.1f}", value == reference])
    return rows


def _inclusion_exclusion_rows() -> list[list]:
    """Engine-level ablation: inclusion–exclusion over inequalities.

    ``β_b``'s single inequality welds two CYCLIQ blocks into one huge
    component; the engine's IE transform restores factorization.  The
    direct backtracking path must chew through the welded problem.
    """
    gadget = beta_gadget(41)
    rows = []
    start = time.perf_counter()
    direct = count_homomorphisms(gadget.query_b, gadget.witness)
    direct_ms = (time.perf_counter() - start) * 1000
    rows.append(
        ["β_b p=41 (one ≠)", "direct (default)", direct, f"{direct_ms:.1f}", True]
    )
    start = time.perf_counter()
    via_ie = count(gadget.query_b, gadget.witness, use_inclusion_exclusion=True)
    ie_ms = (time.perf_counter() - start) * 1000
    rows.append(
        [
            "β_b p=41 (one ≠)",
            "inclusion-exclusion",
            via_ie,
            f"{ie_ms:.1f}",
            direct == via_ie,
        ]
    )
    return rows


def test_e14_obs_ablation_counters():
    """Ablation effects measured by counters, not wall time (E14).

    The subtree memo's value on the coefficient-ray shape shows up
    directly as the node-count gap between variants; the IE transform's
    cost shows up as its term count (``2^q`` for ``q`` inequalities).
    """
    from repro.obs import observe

    _, query, structure = _ray_case()
    with observe() as full:
        with_memo = count_homomorphisms(query, structure)
    with observe() as ablated:
        without_memo = count_homomorphisms(query, structure, subtree_memo=False)
    assert with_memo == without_memo
    full_metrics = full.report()["metrics"]
    ablated_metrics = ablated.report()["metrics"]
    assert full_metrics["bt.memo_hits"]["value"] > 0
    assert ablated_metrics["bt.memo_hits"]["value"] == 0
    assert (
        ablated_metrics["bt.nodes"]["value"] > full_metrics["bt.nodes"]["value"]
    )

    gadget = beta_gadget(13)
    with observe() as ie_obs:
        direct = count(gadget.query_b, gadget.witness, use_inclusion_exclusion=True)
    assert direct == count(gadget.query_b, gadget.witness)
    ie_metrics = ie_obs.report()["metrics"]
    ie_terms = ie_metrics["engine.ie_terms"]["value"]
    # One inequality → the empty subset and the singleton: 2 terms.
    assert ie_terms == 2

    print_table(
        "E14b — ablations by counter (memo node gap, IE term count)",
        ["measurement", "value"],
        [
            ["ray: bt nodes, full engine", full_metrics["bt.nodes"]["value"]],
            ["ray: bt nodes, no subtree memo", ablated_metrics["bt.nodes"]["value"]],
            ["ray: memo hits, full engine", full_metrics["bt.memo_hits"]["value"]],
            ["β_b p=13: IE terms evaluated", ie_terms],
        ],
    )


def test_e14_ablations(benchmark):
    rows = []
    for case in (_cycliq_case(), _ray_case(), _star_case()):
        rows.extend(_run_case(*case))
    rows.extend(_inclusion_exclusion_rows())
    print_table(
        "E14 — engine ablations (identical counts, different costs)",
        ["case", "variant", "count", "ms", "agrees"],
        rows,
    )
    assert all(row[-1] for row in rows)

    name, query, structure = _star_case()

    def full_engine():
        return count(query, structure)

    assert benchmark(full_engine) > 0
