"""E12 — Baseline [14]: the UCQ encoding computes polynomials exactly.

Regenerates the table checking ``count_ucq(encode(P), D_Ξ) = P(Ξ)`` across
instances and valuations, plus containment consistency: the UCQ pair
violates containment exactly on (renamed) roots of the source equation.
The benchmark times a full encode-evaluate sweep.
"""

import itertools

from repro.baselines import ucq_containment_instance, valuation_structure
from repro.homomorphism import count_ucq
from repro.polynomials import linear, parity_obstruction, pell

from benchmarks.conftest import print_table

INSTANCES = [linear(2, 3, 7), pell(2), parity_obstruction()]
GRID = 3


def _rows() -> list[list]:
    rows = []
    for instance in INSTANCES:
        encoded = ucq_containment_instance(instance.polynomial)
        variables = sorted(encoded.p1.variables | encoded.p2.variables)
        violations = 0
        checked = 0
        exact = True
        for values in itertools.product(range(GRID + 1), repeat=len(variables)):
            valuation = dict(zip(variables, values))
            structure = valuation_structure(valuation)
            lhs = count_ucq(encoded.ucq_s, structure)
            rhs = count_ucq(encoded.ucq_b, structure)
            if lhs != encoded.p1.evaluate(valuation) or rhs != encoded.p2.evaluate(
                valuation
            ):
                exact = False
            if lhs > rhs:
                violations += 1
            checked += 1
        rows.append(
            [
                instance.name,
                instance.solvable,
                len(encoded.ucq_s),
                len(encoded.ucq_b),
                checked,
                violations,
                exact,
                (violations > 0) == instance.solvable
                or (instance.solvable and violations == 0),
            ]
        )
    return rows


def _sweep() -> bool:
    return all(row[-2] for row in _rows())


def test_e12_ucq_baseline(benchmark):
    rows = _rows()
    print_table(
        f"E12 / Ioannidis-Ramakrishnan UCQ baseline (grid ≤ {GRID})",
        [
            "instance",
            "solvable",
            "|UCQ_s|",
            "|UCQ_b|",
            "valuations",
            "violations",
            "counts exact",
            "consistent",
        ],
        rows,
    )
    assert all(row[-1] and row[-2] for row in rows)
    assert benchmark.pedantic(_sweep, rounds=1, iterations=1)
