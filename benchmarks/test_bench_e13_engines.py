"""E13 — counting-engine performance: backtracking vs tree-decomposition DP.

Regenerates the cross-engine agreement/latency table across query shapes
(paths, stars, cycles, the paper's CYCLIQ gadgets) and benchmarks each
engine on a representative workload.  Shapes matter: the backtracking
engine's atom-directed join shines on high-arity CYCLIQ queries, the DP
engine on long thin cycles over dense graphs.
"""

import time

import pytest

from repro.core import cycliq
from repro.core.delta import cycle_query
from repro.homomorphism import count, count_homomorphisms_td
from repro.queries import Variable
from repro.relational import Schema, Structure
from repro.workloads import path_query, star_query

from benchmarks.conftest import print_table


def _dense_graph(n: int, seed: int = 0) -> Structure:
    import random

    rng = random.Random(seed)
    edges = {
        (i, j) for i in range(n) for j in range(n) if rng.random() < 0.5
    }
    return Structure(Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n))


GRAPH = _dense_graph(8)

WORKLOAD = {
    "path-6": path_query(6),
    "star-6": star_query(6),
    "cycle-6": cycle_query(6),
    "cycle-10": cycle_query(10),
}


def _agreement_rows() -> list[list]:
    rows = []
    for name, query in WORKLOAD.items():
        t0 = time.perf_counter()
        backtracking_count = count(query, GRAPH)
        bt_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        td_count = count_homomorphisms_td(query, GRAPH)
        td_ms = (time.perf_counter() - t0) * 1000
        rows.append(
            [
                name,
                backtracking_count,
                td_count,
                f"{bt_ms:.1f}",
                f"{td_ms:.1f}",
                backtracking_count == td_count,
            ]
        )
    return rows


def test_e13_engine_agreement(benchmark):
    rows = _agreement_rows()
    print_table(
        "E13 / engine agreement on a dense 8-vertex graph",
        ["query", "backtracking", "treewidth DP", "bt ms", "td ms", "agree"],
        rows,
    )
    assert all(row[-1] for row in rows)
    # Benchmark the treewidth engine on the shape it is best at.
    result = benchmark(count_homomorphisms_td, WORKLOAD["cycle-6"], GRAPH)
    assert result == count(WORKLOAD["cycle-6"], GRAPH)


def test_e13_scaling_series(benchmark):
    """Figure-analog: counting time vs homomorphic cycle length, per engine.

    The series shows the engines' complementary strengths: the DP engine's
    cost grows with treewidth-local state only (linear-ish in cycle
    length), while the backtracking engine's memoized search tracks it
    closely on this shape.
    """
    rows = []
    for length in (3, 4, 5, 6, 8, 10, 12):
        query = cycle_query(length)
        t0 = time.perf_counter()
        bt_value = count(query, GRAPH)
        bt_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        td_value = count_homomorphisms_td(query, GRAPH)
        td_ms = (time.perf_counter() - t0) * 1000
        rows.append(
            [length, bt_value, f"{bt_ms:.1f}", f"{td_ms:.1f}", bt_value == td_value]
        )
    print_table(
        "E13b — scaling series: homomorphic l-cycles on a dense 8-vertex graph",
        ["cycle length", "count", "backtracking ms", "treewidth ms", "agree"],
        rows,
    )
    assert all(row[-1] for row in rows)
    assert benchmark(count, cycle_query(8), GRAPH) > 0


def test_e13_engine_obs_profile():
    """The per-engine cost counters behind the E13 table, via ``repro.obs``.

    Memo hit rate and DP table size used to be *inferred* from wall time;
    the observability layer measures them directly (EXPERIMENTS.md E13).
    """
    from repro.obs import observe

    rows = []
    for name, query in WORKLOAD.items():
        with observe() as bt_obs:
            bt_value = count(query, GRAPH)
        with observe() as td_obs:
            td_value = count_homomorphisms_td(query, GRAPH)
        bt_metrics = bt_obs.report()["metrics"]
        td_metrics = td_obs.report()["metrics"]
        hits = bt_metrics["bt.memo_hits"]["value"]
        misses = bt_metrics["bt.memo_misses"]["value"]
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        rows.append(
            [
                name,
                bt_value,
                bt_metrics["bt.nodes"]["value"],
                f"{100 * hit_rate:.0f}%",
                td_metrics["td.table_entries"]["value"],
                bt_value == td_value,
            ]
        )
    print_table(
        "E13c — engine observability profile (measured, not inferred)",
        ["query", "count", "bt nodes", "bt memo hit rate", "td DP entries", "agree"],
        rows,
    )
    assert all(row[-1] for row in rows)


def test_e13_batch_cache_profile():
    """E13d — the repeated-component workload: batch + cache vs serial.

    The Section 4 reductions emit factorized queries whose components are
    α-equivalent copies (``φ ↑ k`` alone makes ``k`` of them); the batch
    evaluator deduplicates those through the canonicalization-keyed
    :class:`~repro.homomorphism.cache.CountCache`.  This profile measures
    the reuse directly: the batch counts every copy once, so the cache hit
    rate approaches ``(k−1)/k`` and wall-clock drops accordingly.
    """
    from repro.homomorphism import CountCache, count_many
    from repro.obs import observe

    copies = 16
    structures = [_dense_graph(7, seed=s) for s in range(4)]
    workload = {
        "path-6^16": path_query(6) ** copies,
        "cycle-6^16": cycle_query(6) ** copies,
        "star-6^16": star_query(6) ** copies,
    }
    rows = []
    for name, query in workload.items():
        pairs = [(query, structure) for structure in structures]
        t0 = time.perf_counter()
        serial = [count(q, d) for q, d in pairs]
        serial_ms = (time.perf_counter() - t0) * 1000
        cache = CountCache()
        with observe() as obs:
            t0 = time.perf_counter()
            batched = count_many(pairs, cache=cache)
            cached_ms = (time.perf_counter() - t0) * 1000
        metrics = obs.report()["metrics"]
        rows.append(
            [
                name,
                metrics["batch.tasks"]["value"],
                metrics["batch.evaluated"]["value"],
                f"{100 * cache.hit_rate:.0f}%",
                f"{serial_ms:.1f}",
                f"{cached_ms:.1f}",
                f"{serial_ms / cached_ms:.1f}x" if cached_ms else "-",
                batched == serial,
            ]
        )
    print_table(
        "E13d — batch evaluation with the canonicalization-keyed count cache",
        [
            "workload",
            "tasks",
            "evaluated",
            "hit rate",
            "serial ms",
            "cached ms",
            "speedup",
            "identical",
        ],
        rows,
    )
    assert all(row[-1] for row in rows)
    # The acceptance bar: real reuse, not a no-op cache.
    for row in rows:
        assert row[1] == copies * len(structures)
        assert row[2] == len(structures)  # one evaluation per structure
    # Each structure evaluates one component copy instead of `copies`;
    # the speedup is structural, not a timing fluke.
    assert all(float(row[4]) > float(row[5]) for row in rows)


def test_e13_batch_workers_speed(benchmark):
    """E13e — process-pool fan-out on independent (query, structure) tasks.

    Benchmarks the batched path end to end (decomposition, cache, pool);
    correctness (bit-identical counts for workers ∈ {1, 2, 4}) is covered
    by the differential suite in ``tests/test_batch_differential.py``.
    """
    from repro.homomorphism import count_many

    structures = [_dense_graph(7, seed=s) for s in range(6)]
    pairs = [(cycle_query(8), structure) for structure in structures]
    serial = [count(q, d) for q, d in pairs]
    assert count_many(pairs, workers=2, cache=False) == serial
    assert benchmark(count_many, pairs, workers=2) == serial


@pytest.mark.parametrize("name", list(WORKLOAD))
def test_e13_backtracking_speed(benchmark, name):
    query = WORKLOAD[name]
    result = benchmark(count, query, GRAPH)
    assert result == count_homomorphisms_td(query, GRAPH)


def test_e13_cycliq_high_arity(benchmark):
    """The Section 3 gadget shape: arity-15 CYCLIQ over its own witness."""
    from repro.core import beta_gadget

    gadget = beta_gadget(15)

    def verify():
        return gadget.verify_equality()

    assert benchmark(verify)
