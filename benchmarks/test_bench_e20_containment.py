"""E20 — the set-containment prescreen in the counterexample search.

PR 8's acceptance benchmark: when ``φ_s ⊆_set φ_b`` already fails, the
Chandra–Merlin certificate *is* a bag counterexample (multiplier ≥ 1,
additive ≤ 0), so ``find_counterexample`` can answer without evaluating
a single candidate.  On a random-pair decision workload the prescreen
must skip the candidate sweep for at least 30% of the searches on the
non-contained slice — the pairs where a bag violation exists at all —
while never changing a verdict the plain sweep could reach:

* a counterexample found by the un-prescreened sweep is still found
  (the prescreen only ever *adds* certified refutations, it cannot
  lose one);
* every prescreened refutation re-verifies by direct counting
  (``φ_s(D) > φ_b(D)`` on the returned structure);
* on pairs the prescreen passes through, the two runs are identical —
  same candidate consumption, same outcome.

The run emits ``BENCH_contain.json`` (path overridable via the
``BENCH_CONTAIN`` environment variable): the per-slice skip rates, the
candidate-evaluation savings, and the verdict cross-table.
"""

from __future__ import annotations

import json
import os

from repro.containment_set import cq_contained
from repro.decision.search import find_counterexample, random_structures
from repro.homomorphism import count
from repro.relational import Schema
from repro.workloads import random_queries

from benchmarks.conftest import print_table

SCHEMA = Schema.from_arities({"E": 2, "U": 1})
STREAM = dict(domain_size=3, density=0.4, count=40)


def _pairs() -> list[tuple]:
    queries = list(
        random_queries(SCHEMA, count=10, variable_count=3, atom_count=3, seed=41)
    ) + list(
        random_queries(SCHEMA, count=8, variable_count=4, atom_count=2, seed=42)
    )
    return [
        (queries[i], queries[j])
        for i in range(len(queries))
        for j in range(len(queries))
        if i != j
    ]


def _run(phi_s, phi_b, set_prescreen: bool):
    stream = random_structures(
        phi_s.schema.union(phi_b.schema), seed=7, **STREAM
    )
    return find_counterexample(
        phi_s, phi_b, stream, set_prescreen=set_prescreen
    )


def test_e20_prescreen_skips_searches(benchmark):
    records = []
    for phi_s, phi_b in _pairs():
        with_screen = _run(phi_s, phi_b, set_prescreen=True)
        without = _run(phi_s, phi_b, set_prescreen=False)
        records.append(
            {
                "set_contained": cq_contained(phi_s, phi_b),
                "found": with_screen.found,
                "found_baseline": without.found,
                "checked": with_screen.checked,
                "checked_baseline": without.checked,
                "prescreened": with_screen.found and with_screen.checked == 0,
            }
        )
        # Verdict safety: the sweep's counterexamples survive, and a
        # prescreened refutation re-verifies by direct counting.
        assert not (without.found and not with_screen.found)
        if with_screen.found and with_screen.checked == 0:
            assert (
                count(phi_s, with_screen.counterexample)
                > count(phi_b, with_screen.counterexample)
            )
        if not record_is_prescreened(records[-1]):
            assert with_screen.found == without.found
            assert with_screen.checked == without.checked

    non_contained = [record for record in records if record["found"]]
    skipped = [record for record in non_contained if record["prescreened"]]
    skip_rate = len(skipped) / len(non_contained) if non_contained else 0.0
    saved = sum(
        record["checked_baseline"] - record["checked"] for record in records
    )
    swept = sum(record["checked_baseline"] for record in records)

    print_table(
        "E20 — set-containment prescreen on the decision workload",
        ["slice", "pairs", "prescreened", "skip rate"],
        [
            ["all pairs", len(records), len(skipped), ""],
            [
                "non-contained",
                len(non_contained),
                len(skipped),
                f"{skip_rate:.0%}",
            ],
            [
                "candidates evaluated",
                swept,
                swept - saved,
                f"saved {saved}",
            ],
        ],
    )

    # The acceptance bar: on the slice where a bag violation exists the
    # prescreen answers at least 30% of searches with zero candidates.
    assert len(non_contained) >= 10, "workload too easy to measure"
    assert skip_rate >= 0.30, f"skip rate {skip_rate:.0%} below the 30% bar"

    artifact = os.environ.get("BENCH_CONTAIN", "BENCH_contain.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "experiment": "E20",
                "pairs": len(records),
                "non_contained": len(non_contained),
                "prescreened": len(skipped),
                "skip_rate": round(skip_rate, 3),
                "candidates_saved": saved,
                "candidates_baseline": swept,
                "rows": records,
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    phi_s, phi_b = _pairs()[0]
    result = benchmark(_run, phi_s, phi_b, True)
    assert result.found == _run(phi_s, phi_b, False).found or result.checked == 0


def record_is_prescreened(record: dict) -> bool:
    """A pair the prescreen answered outright (no candidates consumed)."""
    return record["prescreened"]
