"""E11 — Appendix B: the Hilbert-10 → Lemma 11 pipeline, instance by instance.

Regenerates the normal-form table (dimensions, c, grid consistency with
known solvability — Lemmas 25/29 at grid scale).  The benchmark times one
full pipeline run plus grid check on the Markov instance.
"""

from repro.polynomials import hilbert_to_lemma11, markov, standard_suite

from benchmarks.conftest import print_table

GRID = 3


def _row(instance) -> list:
    reduction = hilbert_to_lemma11(instance.polynomial)
    lemma11 = reduction.instance
    violation = lemma11.find_counterexample(GRID)
    witness_small = instance.witness is not None and all(
        value <= GRID for value in instance.witness.values()
    )
    consistent = True
    if not instance.solvable and violation is not None:
        consistent = False
    if witness_small and violation is None:
        consistent = False
    return [
        instance.name,
        instance.solvable,
        lemma11.c,
        lemma11.n,
        lemma11.m,
        lemma11.d,
        violation is not None,
        consistent,
    ]


def _markov_pipeline() -> bool:
    reduction = hilbert_to_lemma11(markov().polynomial)
    return reduction.instance.find_counterexample(1) is not None


def test_e11_hilbert_pipeline(benchmark):
    rows = [_row(instance) for instance in standard_suite()]
    print_table(
        f"E11 / Appendix B — Lemma 11 instances (grid ≤ {GRID})",
        ["instance", "solvable", "c", "n", "m", "d", "grid violation", "consistent"],
        rows,
    )
    assert all(row[-1] for row in rows)

    assert benchmark(_markov_pipeline)
