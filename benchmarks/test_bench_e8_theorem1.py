"""E8 — Theorem 1 end to end: the ℛ ⟺ 𝔇 equivalence on real instances.

For each Diophantine instance: run Appendix B + Section 4, grid-search
valuations, and — when the equation is solvable — build and *verify* the
counterexample database.  Unsolvable instances must produce no grid
counterexample and must satisfy the inequality on sample correct
databases (including cheating perturbations, which the anti-cheating
layers must absorb).

The benchmark times the full pipeline (reduce + search + verify) on the
solvable pell(2).
"""

from repro.core import reduce_polynomial
from repro.polynomials import (
    always_positive,
    parity_obstruction,
    pell,
)

from benchmarks.conftest import print_table

GRID = 2

INSTANCES = [pell(2), always_positive(), parity_obstruction()]


def _row(instance) -> list:
    hilbert, reduction = reduce_polynomial(instance.polynomial)
    lemma11 = reduction.instance
    witness = reduction.find_counterexample(GRID)
    verified = None
    if witness is not None:
        verified = not reduction.holds_on(witness)
    consistent = (witness is not None) == instance.solvable or (
        instance.solvable and witness is None  # witness may exceed grid
    )
    return [
        instance.name,
        instance.solvable,
        lemma11.c,
        f"{lemma11.n}/{lemma11.m}/{lemma11.d}",
        len(str(reduction.big_c)),
        witness is not None,
        verified if verified is not None else "-",
        consistent,
    ]


def _pipeline() -> bool:
    _, reduction = reduce_polynomial(pell(2).polynomial)
    witness = reduction.find_counterexample(GRID)
    return witness is not None and not reduction.holds_on(witness)


def test_e8_theorem1(benchmark):
    rows = [_row(instance) for instance in INSTANCES]
    print_table(
        f"E8 / Theorem 1 — end-to-end reduction (grid ≤ {GRID})",
        [
            "instance",
            "solvable",
            "c",
            "n/m/d",
            "digits(ℂ)",
            "cex found",
            "cex verified",
            "consistent",
        ],
        rows,
    )
    assert all(row[-1] for row in rows)
    for row in rows:
        if not row[1]:  # unsolvable instances must find nothing
            assert row[5] is False

    assert benchmark.pedantic(_pipeline, rounds=1, iterations=1)
