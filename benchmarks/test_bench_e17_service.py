"""E17 — the evaluation service: single-flight coalescing under stampedes.

The service's headline claim: when many clients ask for the same
(α-equivalent) evaluation at once — the cold-cache stampede — single-
flight coalescing collapses the duplicate work into one evaluation and
fans the result out, so duplicate-heavy concurrent load gets ≥2x the
throughput of the same server with coalescing disabled, with better tail
latency.  A second scenario overloads a deliberately tiny server and
checks the failure mode: every over-budget request is *shed* with a
structured 429 envelope — zero hung requests.

Requests are sent with ``cache=false`` so each round pays the real
evaluation cost: the benchmark isolates what coalescing buys *before*
the count cache is warm, which is exactly when stampedes hurt.

The run emits ``benchmarks/BENCH_service.json`` (path overridable via the
``BENCH_SERVICE`` environment variable): one record per scenario with
throughput, p50/p95 latency, and the admission/coalescing counters —
the artifact CI uploads and the repository checks in.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import threading
import time

from repro.relational import Schema, Structure
from repro.service import (
    EvaluationServer,
    ServerConfig,
    ServiceClient,
    ServiceUnavailable,
)
from repro.workloads import cycle_query

from benchmarks.conftest import print_table

QUERY = cycle_query(6)
ROUNDS = 4  # distinct work items (fresh random graph each round)
DUPLICATES = 6  # concurrent identical requests per round — the stampede


def _graph(n: int, seed: int) -> Structure:
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(4 * n)}
    return Structure(
        Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n)
    )


GRAPHS = [_graph(13, seed) for seed in range(ROUNDS)]


def _stampede(server_url: str) -> dict:
    """Fire ROUNDS × DUPLICATES requests; return latency/throughput stats."""
    latencies_ms: list[float] = []
    results: list[int] = []
    lock = threading.Lock()

    started = time.perf_counter()
    for graph in GRAPHS:
        barrier = threading.Barrier(DUPLICATES)

        def fire(graph=graph):
            client = ServiceClient(server_url, retries=4, seed=0)
            barrier.wait()
            t0 = time.perf_counter()
            value = client.evaluate(
                QUERY, graph, engine="backtracking", cache=False
            )
            elapsed_ms = (time.perf_counter() - t0) * 1000
            with lock:
                latencies_ms.append(elapsed_ms)
                results.append(value)

        threads = [
            threading.Thread(target=fire) for _ in range(DUPLICATES)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    wall_s = time.perf_counter() - started

    total = ROUNDS * DUPLICATES
    assert len(results) == total, "zero hung or failed requests"
    latencies_ms.sort()
    return {
        "requests": total,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(total / wall_s, 2),
        "p50_ms": round(statistics.median(latencies_ms), 2),
        "p95_ms": round(latencies_ms[int(0.95 * (total - 1))], 2),
        "results": results,
    }


def _run_mode(coalesce: bool) -> dict:
    config = ServerConfig(workers=2, queue_depth=64, coalesce=coalesce)
    with EvaluationServer(config) as server:
        stats = _stampede(server.url)
        metrics = ServiceClient(server.url).metrics()["metrics"]
        stats["coalesced"] = metrics["service.coalesced"]["value"]
        stats["admitted"] = metrics["service.admitted"]["value"]
        stats["shed"] = metrics["service.shed"]["value"]
    return stats


def _run_shed_scenario() -> dict:
    """Overload a tiny server: everything either completes or sheds cleanly."""
    config = ServerConfig(
        workers=1, queue_depth=2, coalesce=False, retry_after_s=0.02
    )
    outcomes: list[str] = []
    lock = threading.Lock()
    with EvaluationServer(config) as server:
        barrier = threading.Barrier(10)

        def fire():
            client = ServiceClient(server.url, retries=0)
            barrier.wait()
            try:
                client.evaluate(
                    QUERY, GRAPHS[0], engine="backtracking", cache=False
                )
                outcome = "ok"
            except ServiceUnavailable as error:
                assert error.kind == "overloaded"
                assert error.status == 429
                assert error.retry_after is not None
                outcome = "shed"
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=fire) for _ in range(10)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        wall_s = time.perf_counter() - started
        hung = sum(thread.is_alive() for thread in threads)
        metrics = ServiceClient(server.url).metrics()["metrics"]
    return {
        "requests": 10,
        "completed": outcomes.count("ok"),
        "shed": outcomes.count("shed"),
        "hung": hung,
        "wall_s": round(wall_s, 4),
        "shed_counter": metrics["service.shed"]["value"],
    }


def test_e17_service_coalescing(benchmark):
    on = _run_mode(coalesce=True)
    off = _run_mode(coalesce=False)
    shed = _run_shed_scenario()

    speedup = on["throughput_rps"] / off["throughput_rps"]
    print_table(
        "E17 — duplicate-heavy stampede: coalescing on vs off "
        f"({ROUNDS} rounds x {DUPLICATES} duplicates)",
        ["mode", "rps", "p50 ms", "p95 ms", "coalesced", "admitted"],
        [
            ["coalesce=on", on["throughput_rps"], on["p50_ms"], on["p95_ms"],
             on["coalesced"], on["admitted"]],
            ["coalesce=off", off["throughput_rps"], off["p50_ms"],
             off["p95_ms"], off["coalesced"], off["admitted"]],
        ],
    )
    print_table(
        "E17 — overload: queue_depth=2, workers=1, 10 concurrent",
        ["requests", "completed", "shed", "hung"],
        [[shed["requests"], shed["completed"], shed["shed"], shed["hung"]]],
    )

    # Correctness: both modes returned identical counts for each round.
    assert sorted(on.pop("results")) == sorted(off.pop("results"))
    # Coalescing discipline: duplicates shared flights when enabled...
    assert on["coalesced"] >= ROUNDS * (DUPLICATES - 2)
    assert on["admitted"] + on["coalesced"] == ROUNDS * DUPLICATES
    # ...and never when disabled.
    assert off["coalesced"] == 0
    assert off["admitted"] == ROUNDS * DUPLICATES
    # The acceptance bar: >= 2x throughput on the duplicate-heavy load.
    assert speedup >= 2.0, (on, off)
    # Overload degrades to structured shedding, never to hangs.
    assert shed["hung"] == 0
    assert shed["completed"] + shed["shed"] == shed["requests"]
    assert shed["shed"] >= 1
    assert shed["shed_counter"] == shed["shed"]

    artifact = os.environ.get("BENCH_SERVICE", "benchmarks/BENCH_service.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "experiment": "E17",
                "workload": {
                    "query": str(QUERY),
                    "rounds": ROUNDS,
                    "duplicates": DUPLICATES,
                    "engine": "backtracking",
                    "per_request_cache": False,
                },
                "coalesce_on": on,
                "coalesce_off": off,
                "speedup": round(speedup, 2),
                "overload": shed,
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    # Representative latency: one warm round-trip through the service.
    with EvaluationServer(ServerConfig(workers=2)) as server:
        client = ServiceClient(server.url)
        client.evaluate(QUERY, GRAPHS[0], engine="backtracking")  # warm
        result = benchmark(
            client.evaluate, QUERY, GRAPHS[0], engine="backtracking"
        )
    from repro.homomorphism import count

    assert result == count(QUERY, GRAPHS[0], engine="backtracking")
