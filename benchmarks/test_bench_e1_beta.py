"""E1 — Lemma 5: the β gadget multiplies by (p+1)²/2p.

Regenerates the table of witness counts across arities and checks the (≤)
condition exhaustively (p = 3, all 2-element structures) and by random
sweep (larger p).  The benchmark times the exhaustive (≤) verification —
the gadget's "proof obligation" workload.
"""

from repro.core import beta_gadget
from repro.decision import enumerate_structures, random_structures

from benchmarks.conftest import print_table


def _equality_rows() -> list[list]:
    rows = []
    for p in (3, 4, 5, 6, 7):
        gadget = beta_gadget(p)
        value_s, value_b = gadget.witness_counts()
        rows.append(
            [
                p,
                str(gadget.ratio),
                value_s,
                value_b,
                (p + 1) ** 2,
                2 * p,
                gadget.verify_equality(),
            ]
        )
    return rows


def _exhaustive_check() -> bool:
    gadget = beta_gadget(3)
    stream = enumerate_structures(
        gadget.query_s.schema, 2, nontrivial_constants=True
    )
    return gadget.upper_bound_violation(stream) is None


def test_e1_beta_gadget(benchmark):
    rows = _equality_rows()
    print_table(
        "E1 / Lemma 5 — β multiplies by (p+1)²/2p",
        ["p", "ratio", "β_s(D)", "β_b(D)", "(p+1)²", "2p", "(=) verified"],
        rows,
    )
    assert all(row[-1] for row in rows)
    assert all(row[2] == row[4] and row[3] == row[5] for row in rows)

    holds = benchmark(_exhaustive_check)
    assert holds, "Lemma 5 (≤) violated on a 2-element structure!"

    gadget = beta_gadget(4)
    stream = random_structures(
        gadget.query_s.schema, 3, count=80, nontrivial_constants=True, seed=1
    )
    assert gadget.upper_bound_violation(stream) is None
