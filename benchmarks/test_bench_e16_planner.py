"""E16 — the cost-based planner: ``engine="auto"`` vs fixed backtracking.

Regenerates the planner's headline table: on the acyclic / low-treewidth
slice of the workload (paths, trees, thin cycles — the shapes the
paper's gadget families are made of), ``auto`` routes components to the
Yannakakis or tree-decomposition engine and pulls away from a fixed
backtracking choice as instances grow, while remaining bit-identical.

The run emits ``benchmarks/BENCH_planner.json`` (path overridable via the
``BENCH_PLANNER`` environment variable): one record per (shape, size)
cell with both latencies, the speedup, and the engine the planner chose —
the artifact CI uploads and the repository checks in.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.homomorphism import count
from repro.planner import PlanCache, plan
from repro.queries import parse_query
from repro.relational import Schema, Structure
from repro.workloads import path_query

from benchmarks.conftest import print_table

TREE_QUERY = parse_query("E(x, y) & E(y, z) & E(y, w) & E(w, u) & E(w, v)")

WORKLOAD = {
    "path-6": path_query(6),
    "tree-5": TREE_QUERY,
}


def _graph(n: int, seed: int = 0) -> Structure:
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)}
    return Structure(
        Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n)
    )


def _time_count(query, graph, engine: str, repeats: int = 3) -> tuple[int, float]:
    """Best-of-``repeats`` latency (ms) and the count, for one engine."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = count(query, graph, engine=engine)
        best = min(best, (time.perf_counter() - t0) * 1000)
    return value, best


def _rows() -> tuple[list[list], list[dict]]:
    rows: list[list] = []
    records: list[dict] = []
    for shape, query in WORKLOAD.items():
        for n in (16, 32, 64):
            graph = _graph(n)
            chosen = plan(query, graph, cache=PlanCache()).engines
            auto_value, auto_ms = _time_count(query, graph, "auto")
            bt_value, bt_ms = _time_count(query, graph, "backtracking")
            speedup = bt_ms / auto_ms if auto_ms > 0 else float("inf")
            rows.append(
                [
                    shape,
                    n,
                    ",".join(chosen),
                    f"{auto_ms:.1f}",
                    f"{bt_ms:.1f}",
                    f"{speedup:.1f}x",
                    auto_value == bt_value,
                ]
            )
            records.append(
                {
                    "shape": shape,
                    "domain_size": n,
                    "planned_engines": list(chosen),
                    "count": auto_value,
                    "auto_ms": round(auto_ms, 3),
                    "backtracking_ms": round(bt_ms, 3),
                    "speedup": round(speedup, 2),
                    "agree": auto_value == bt_value,
                }
            )
    return rows, records


def test_e16_planner_auto_vs_backtracking(benchmark):
    rows, records = _rows()
    print_table(
        "E16 — engine=auto vs fixed backtracking, acyclic/low-tw slice",
        ["shape", "|V(D)|", "planned", "auto ms", "backtracking ms", "speedup", "agree"],
        rows,
    )
    assert all(row[-1] for row in rows)
    # The acceptance bar: on the largest instances of the acyclic slice
    # the planner's pick beats fixed backtracking by at least 2x.
    largest = [record for record in records if record["domain_size"] == 64]
    assert largest and all(record["speedup"] >= 2.0 for record in largest), (
        largest
    )

    artifact = os.environ.get("BENCH_PLANNER", "benchmarks/BENCH_planner.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump({"experiment": "E16", "rows": records}, handle, indent=2)
        handle.write("\n")

    graph = _graph(64)
    query = WORKLOAD["path-6"]
    result = benchmark(count, query, graph, engine="auto")
    assert result == count(query, graph, engine="backtracking")
