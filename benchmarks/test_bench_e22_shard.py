"""E22 — the sharded worker tier: stampede scaling and snapshot warm-start.

Two claims, one artifact (``benchmarks/BENCH_shard.json``):

**Scaling.**  The E17 duplicate-heavy stampede (distinct random graphs,
each hit by a barrier of identical requests, ``cache=false`` so every
round pays real evaluation cost) replays against a :class:`ShardRouter`
at 1, 2, and 4 shards.  Distinct structures spread across the ring;
α-equivalent duplicates land on one shard, where single-flight keeps
coalescing them.  Worker subprocesses escape the GIL, so on a machine
with ≥2 usable CPUs the fleet must clear ≥1.6x single-shard throughput
at 2 shards and ≥2.5x at 4; on smaller machines those asserts are
recorded but not enforced (a process cannot out-run its core count —
the artifact carries ``cpus`` so readers can see which regime produced
it).  Counts must be bit-identical across every shard count and equal
to direct in-process ``count()`` — sharding must never change a number.

**Warm start.**  A server with a snapshot directory evaluates a cold
workload, snapshots, and restarts: the post-restore first pass must sit
within 2x of the warm (cache-hit) p95, while a restart *without* the
snapshot pays the full cold p95 again (≥10x warm) — the cold-start
collapse the durable tier exists for.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import threading
import time

from repro.homomorphism import count
from repro.relational import Schema, Structure
from repro.service import EvaluationServer, ServerConfig, ServiceClient
from repro.shard import RouterConfig, ShardRouter
from repro.shard.worker import http_get_json, http_post_json
from repro.workloads import cycle_query

from benchmarks.conftest import print_table

QUERY = cycle_query(6)
ROUNDS = 6  # distinct work items (fresh random graph each round)
DUPLICATES = 4  # concurrent identical requests per round — the stampede
SHARD_COUNTS = (1, 2, 4)

#: Usable CPUs bound the honest parallelism a process fleet can reach.
CPUS = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)


def _graph(n: int, seed: int) -> Structure:
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(4 * n)}
    return Structure(
        Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n)
    )


GRAPHS = [_graph(13, seed) for seed in range(ROUNDS)]
EXPECTED = [count(QUERY, graph, engine="backtracking") for graph in GRAPHS]


def _stampede(router_url: str) -> dict:
    """Fire every round's duplicate barrage concurrently across rounds."""
    latencies_ms: list[float] = []
    results: dict[int, list[int]] = {index: [] for index in range(ROUNDS)}
    lock = threading.Lock()
    barrier = threading.Barrier(ROUNDS * DUPLICATES)

    def fire(index: int) -> None:
        client = ServiceClient(router_url, retries=4, seed=index)
        barrier.wait()
        t0 = time.perf_counter()
        value = client.evaluate(
            QUERY, GRAPHS[index], engine="backtracking", cache=False
        )
        elapsed_ms = (time.perf_counter() - t0) * 1000
        with lock:
            latencies_ms.append(elapsed_ms)
            results[index].append(value)

    threads = [
        threading.Thread(target=fire, args=(index,))
        for index in range(ROUNDS)
        for _ in range(DUPLICATES)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started

    total = ROUNDS * DUPLICATES
    assert len(latencies_ms) == total, "zero hung or failed requests"
    latencies_ms.sort()
    return {
        "requests": total,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(total / wall_s, 2),
        "p50_ms": round(statistics.median(latencies_ms), 2),
        "p95_ms": round(latencies_ms[int(0.95 * (total - 1))], 2),
        "results": results,
    }


def _run_shards(shards: int) -> dict:
    config = RouterConfig(shards=shards, workers_per_shard=2)
    with ShardRouter(config) as router:
        stats = _stampede(router.url)
        merged = http_get_json(f"{router.url}/metrics")["metrics"]
        stats["shards"] = shards
        stats["coalesced"] = merged["service.coalesced"]["value"]
        stats["admitted"] = merged["service.admitted"]["value"]
        stats["routed"] = merged["shard.routed"]["value"]
        # Which shards actually served traffic (ring spread, not config).
        busy = 0
        for row in http_get_json(f"{router.url}/healthz")["workers"]:
            worker_metrics = http_get_json(f"{row['url']}/metrics")["metrics"]
            if worker_metrics["service.requests"]["value"] > 0:
                busy += 1
        stats["busy_shards"] = busy
    return stats


# -- warm start ------------------------------------------------------------

COLD_ROUNDS = 8
COLD_GRAPHS = [_graph(19, 1000 + seed) for seed in range(COLD_ROUNDS)]


def _pass_latencies(client: ServiceClient) -> list[float]:
    latencies_ms = []
    for graph in COLD_GRAPHS:
        t0 = time.perf_counter()
        value = client.evaluate(QUERY, graph, engine="backtracking")
        latencies_ms.append((time.perf_counter() - t0) * 1000)
        assert value == count(QUERY, graph, engine="backtracking")
    return latencies_ms


def _p95(latencies_ms: list[float]) -> float:
    ordered = sorted(latencies_ms)
    return round(ordered[int(0.95 * (len(ordered) - 1))], 2)


def _run_warm_start(tmp_dir: str) -> dict:
    snap_config = ServerConfig(workers=2, snapshot_dir=tmp_dir)
    with EvaluationServer(snap_config) as server:
        client = ServiceClient(server.url, seed=0)
        cold = _pass_latencies(client)  # first sight of every graph
        warm = _pass_latencies(client)  # pure cache hits
        saved = http_post_json(f"{server.url}/snapshot", {})["saved"]

    with EvaluationServer(snap_config) as restored:
        # Same directory: the caches warm-restore before the socket opens.
        post_restore = _pass_latencies(ServiceClient(restored.url, seed=1))
        loaded = ServiceClient(restored.url).metrics()["metrics"][
            "shard.snapshot.loaded"
        ]["value"]

    with EvaluationServer(ServerConfig(workers=2)) as amnesiac:
        # No snapshot directory: a restart pays the cold pass again.
        relearned = _pass_latencies(ServiceClient(amnesiac.url, seed=2))

    return {
        "rounds": COLD_ROUNDS,
        "snapshot_saved": saved,
        "snapshot_loaded": loaded,
        "cold_p95_ms": _p95(cold),
        "warm_p95_ms": _p95(warm),
        "post_restore_p95_ms": _p95(post_restore),
        "no_snapshot_restart_p95_ms": _p95(relearned),
    }


def test_e22_shard_scaling_and_warm_start(benchmark, tmp_path):
    by_shards = {shards: _run_shards(shards) for shards in SHARD_COUNTS}
    base = by_shards[1]["throughput_rps"]
    speedups = {
        shards: round(by_shards[shards]["throughput_rps"] / base, 2)
        for shards in SHARD_COUNTS
    }
    warm_start = _run_warm_start(str(tmp_path / "snapshots"))

    print_table(
        f"E22 — stampede scaling across shards ({ROUNDS} rounds x "
        f"{DUPLICATES} duplicates, {CPUS} usable CPU(s))",
        ["shards", "rps", "speedup", "p50 ms", "p95 ms", "coalesced", "busy"],
        [
            [
                shards,
                by_shards[shards]["throughput_rps"],
                f"{speedups[shards]:.2f}x",
                by_shards[shards]["p50_ms"],
                by_shards[shards]["p95_ms"],
                by_shards[shards]["coalesced"],
                by_shards[shards]["busy_shards"],
            ]
            for shards in SHARD_COUNTS
        ],
    )
    print_table(
        "E22 — snapshot warm start (p95 ms per pass)",
        ["cold", "warm", "post-restore", "restart w/o snapshot"],
        [
            [
                warm_start["cold_p95_ms"],
                warm_start["warm_p95_ms"],
                warm_start["post_restore_p95_ms"],
                warm_start["no_snapshot_restart_p95_ms"],
            ]
        ],
    )

    # Correctness first: every configuration returned bit-identical
    # counts, equal to direct in-process evaluation, for every round.
    for shards, stats in by_shards.items():
        results = stats.pop("results")
        for index in range(ROUNDS):
            assert results[index] == [EXPECTED[index]] * DUPLICATES, (
                shards,
                index,
            )

    # Coalescing survives sharding: duplicates share flights per shard.
    for stats in by_shards.values():
        assert stats["coalesced"] >= ROUNDS, stats
        assert stats["admitted"] + stats["coalesced"] == ROUNDS * DUPLICATES
        assert stats["routed"] == ROUNDS * DUPLICATES
    # The ring spreads distinct structures over multiple workers.
    assert by_shards[4]["busy_shards"] >= 2

    # The scaling bars hold wherever the hardware can express them; a
    # 1-CPU machine cannot parallelize CPU-bound work across processes,
    # so there the numbers are recorded but not enforced.
    if CPUS >= 2:
        assert speedups[2] >= 1.6, by_shards
    if CPUS >= 4:
        assert speedups[4] >= 2.5, by_shards
    # Sharding must never wreck throughput outright, even on one core
    # (proxy + subprocess overhead stays bounded).
    assert speedups[2] >= 0.5 and speedups[4] >= 0.4, speedups

    # Warm-start bars: the restore collapses the cold start...
    assert (
        warm_start["post_restore_p95_ms"]
        <= 2 * warm_start["warm_p95_ms"]
    ), warm_start
    # ...while a snapshot-less restart pays the full cold pass again.
    assert (
        warm_start["no_snapshot_restart_p95_ms"]
        >= 10 * warm_start["warm_p95_ms"]
    ), warm_start
    assert warm_start["snapshot_loaded"] >= COLD_ROUNDS

    artifact = os.environ.get("BENCH_SHARD", "benchmarks/BENCH_shard.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "experiment": "E22-shard",
                "cpus": CPUS,
                "workload": {
                    "query": str(QUERY),
                    "rounds": ROUNDS,
                    "duplicates": DUPLICATES,
                    "engine": "backtracking",
                    "per_request_cache": False,
                },
                "scaling": {
                    str(shards): by_shards[shards] for shards in SHARD_COUNTS
                },
                "speedups": {str(k): v for k, v in speedups.items()},
                "scaling_bars_enforced": {
                    "2_shards_1.6x": CPUS >= 2,
                    "4_shards_2.5x": CPUS >= 4,
                },
                "warm_start": warm_start,
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    # Representative number: one warm evaluate through a 2-shard router.
    config = RouterConfig(shards=2, workers_per_shard=2)
    with ShardRouter(config) as router:
        client = ServiceClient(router.url, seed=9)
        client.evaluate(QUERY, GRAPHS[0], engine="backtracking")  # warm
        result = benchmark(
            client.evaluate, QUERY, GRAPHS[0], engine="backtracking"
        )
    assert result == EXPECTED[0]
