"""E21 — incremental (delta) evaluation vs full recount.

Regenerates the incremental layer's headline table: on multi-component
workloads — one connected component per relation, the shape Lemma 1
factorizes perfectly — a single-fact mutation invalidates exactly one
component's fingerprint, so :class:`DeltaEvaluator` re-counts one factor
and reuses the rest from cache, while a full recount pays for every
component on every step.  The speedup target is ≥ 5× on the largest
slice (the CI gate is a conservative ≥ 2× to absorb runner variance);
counts must be bit-identical to the cold recount after **every** step.

The run emits ``benchmarks/BENCH_incremental.json`` (path overridable
via the ``BENCH_INCREMENTAL`` environment variable): one record per
(components, domain) cell with both total latencies, the speedup, and
the reused-factor ratio — the artifact CI uploads and the repository
checks in.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.homomorphism import count
from repro.homomorphism.cache import CountCache
from repro.homomorphism.delta import DeltaEvaluator
from repro.queries import parse_query
from repro.relational import Schema, Structure
from repro.relational.structure import Delta

from benchmarks.conftest import print_table

STEPS = 16


def _workload(components: int, n: int, seed: int = 0):
    """A ``components``-relation structure and its product query.

    Component ``i`` is a 4-cycle in its own relation ``R<i>`` over its
    own variables, so the query factorizes into ``components``
    independent Lemma-1 factors — and each factor is cyclic, making the
    per-component recount expensive enough that evaluation (not
    bookkeeping) dominates both paths.
    """
    rng = random.Random(seed)
    relations = [f"R{i}" for i in range(components)]
    facts = {
        name: {(rng.randrange(n), rng.randrange(n)) for _ in range(4 * n)}
        for name in relations
    }
    structure = Structure(
        Schema.from_arities({name: 2 for name in relations}),
        facts,
        domain=range(n),
    )
    text = " & ".join(
        f"{name}(a{i}, b{i}) & {name}(b{i}, c{i}) & "
        f"{name}(c{i}, d{i}) & {name}(d{i}, a{i})"
        for i, name in enumerate(relations)
    )
    return structure, parse_query(text)


def _mutations(structure: Structure, steps: int, seed: int = 1) -> list[Delta]:
    """``steps`` single-fact deltas, round-robin across the relations."""
    rng = random.Random(seed)
    relations = sorted(structure.schema.relation_names)
    n = len(structure.domain)
    deltas = []
    for step in range(steps):
        relation = relations[step % len(relations)]
        if step % 2 == 0:
            fact = (rng.randrange(n), rng.randrange(n))
            deltas.append(Delta(inserts=[(relation, fact)]))
        else:
            existing = sorted(structure.facts(relation))
            deltas.append(Delta(deletes=[(relation, rng.choice(existing))]))
    return deltas


def _run_cell(components: int, n: int) -> dict:
    structure, query = _workload(components, n)
    deltas = _mutations(structure, STEPS)

    evaluator = DeltaEvaluator(structure, engine="auto", cache=CountCache())
    evaluator.evaluate(query)  # warm: every factor cached at version 0

    full = structure
    full_values = []
    full_ms = 0.0
    for delta in deltas:
        full = full.apply_delta(delta)
        t0 = time.perf_counter()
        full_values.append(
            count(query, full, engine="auto", cache=CountCache())
        )
        full_ms += (time.perf_counter() - t0) * 1000

    incremental_values = []
    incremental_ms = 0.0
    hits0 = evaluator.cache.hits
    misses0 = evaluator.cache.misses
    for delta in deltas:
        t0 = time.perf_counter()
        evaluator.apply(delta)
        incremental_values.append(evaluator.evaluate(query))
        incremental_ms += (time.perf_counter() - t0) * 1000
    reused = evaluator.cache.hits - hits0
    recounted = evaluator.cache.misses - misses0

    assert incremental_values == full_values
    speedup = full_ms / incremental_ms if incremental_ms > 0 else float("inf")
    return {
        "components": components,
        "domain_size": n,
        "steps": STEPS,
        "incremental_ms": round(incremental_ms, 3),
        "full_ms": round(full_ms, 3),
        "speedup": round(speedup, 2),
        "reused_factors": reused,
        "recounted_components": recounted,
        "reuse_ratio": round(reused / (reused + recounted), 3)
        if reused + recounted
        else 0.0,
        "agree": incremental_values == full_values,
    }


def test_e21_incremental_vs_full_recount(benchmark):
    records = [
        _run_cell(components, n)
        for components, n in ((4, 32), (8, 36), (12, 40))
    ]
    print_table(
        "E21 — DeltaEvaluator vs full recount, single-fact mutations",
        [
            "components",
            "|V(D)|",
            "incr ms",
            "full ms",
            "speedup",
            "reuse",
            "agree",
        ],
        [
            [
                record["components"],
                record["domain_size"],
                f"{record['incremental_ms']:.1f}",
                f"{record['full_ms']:.1f}",
                f"{record['speedup']:.1f}x",
                f"{record['reuse_ratio']:.0%}",
                record["agree"],
            ]
            for record in records
        ],
    )
    assert all(record["agree"] for record in records)
    # A single-fact delta touches one of k relations: k-1 factors are
    # reused per recount, so the reuse ratio approaches (k-1)/k.
    for record in records:
        k = record["components"]
        assert record["reuse_ratio"] >= (k - 1) / k - 0.15, record
    # The acceptance bar: on the largest slice the incremental path
    # beats the full recount by at least 2x (the paper-table target is
    # 5x; CI gates conservatively to absorb runner variance).
    largest = max(records, key=lambda record: record["components"])
    assert largest["speedup"] >= 2.0, largest

    artifact = os.environ.get(
        "BENCH_INCREMENTAL", "benchmarks/BENCH_incremental.json"
    )
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(
            {"experiment": "E21", "target_speedup": 5.0, "rows": records},
            handle,
            indent=2,
        )
        handle.write("\n")

    structure, query = _workload(12, 40)
    evaluator = DeltaEvaluator(structure, engine="auto", cache=CountCache())
    evaluator.evaluate(query)
    deltas = _mutations(structure, STEPS)
    step = iter(range(10**9))

    def one_mutation():
        evaluator.apply(deltas[next(step) % len(deltas)])
        return evaluator.evaluate(query)

    benchmark(one_mutation)
