"""E18 — seeded load scenarios: throughput, tail latency, SLO gate.

Five deterministic traffic shapes (``repro.loadgen``) replay against a
live in-process server, and the per-scenario aggregates — throughput,
server-side p50/p95/p99 from the per-endpoint ``service.request_ms.*``
histogram deltas, shed rate — become the checked-in ``benchmarks/BENCH_load.json``
baseline the CI ``load-smoke`` job gates against.

What each scenario must demonstrate:

* ``zipf-duplicates`` — duplicate-heavy traffic completes fully; the
  duplicates land in the count cache / single-flight layer, so p95 stays
  within the declared SLO.
* ``multi-tenant`` — disjoint per-tenant pools interleave without
  starving anyone (every tenant's slice completes).
* ``adversarial-tail`` — the CYCLIQ/gadget tail stretches p95 away from
  p50 (that separation *is* the scenario working), yet completes.
* ``deadline-spread`` — unmeetable 1 ms deadlines produce 504s, never
  hangs or shed storms.
* ``contain`` — duplicate-heavy containment pairs complete fully; the
  verdicts land in the ContainmentCache, so p95 stays within SLO.

The artifact path is overridable via the ``BENCH_LOAD`` environment
variable.  The SLO checks run here too: the recorded run must pass both
the absolute objectives and a self-regression check, and a synthetically
degraded copy must *fail* the gate (the gate's own negative control).
"""

from __future__ import annotations

import copy
import json
import os

from repro.loadgen import (
    DEFAULT_SLOS,
    SCENARIO_NAMES,
    build_scenario,
    check_regression,
    evaluate_slo,
    run_scenario,
)
from repro.service import EvaluationServer, ServerConfig, ServiceClient

from benchmarks.conftest import print_table

SEED = 0
REQUESTS = 80
CLIENTS = 4


def _run_all(server_url: str) -> list[dict]:
    rows = []
    for name in SCENARIO_NAMES:
        scenario = build_scenario(
            name, seed=SEED, requests=REQUESTS, clients=CLIENTS
        )
        rows.append(run_scenario(scenario, server_url).to_dict())
    return rows


def test_e18_load_scenarios(benchmark):
    config = ServerConfig(workers=4, queue_depth=32)
    with EvaluationServer(config) as server:
        rows = _run_all(server.url)
        metrics = ServiceClient(server.url).metrics()["metrics"]

    print_table(
        f"E18 — seeded load scenarios (seed={SEED}, "
        f"{REQUESTS} requests x {CLIENTS} clients each)",
        ["scenario", "rps", "p50 ms", "p95 ms", "p99 ms", "shed", "504s"],
        [
            [
                row["scenario"],
                row["throughput_rps"],
                row["p50_ms"],
                row["p95_ms"],
                row["p99_ms"],
                f"{row['shed_rate']:.1%}",
                row["deadline_exceeded"],
            ]
            for row in rows
        ],
    )

    by_name = {row["scenario"]: row for row in rows}
    assert set(by_name) == set(SCENARIO_NAMES)

    # Every scenario records the full aggregate the SLO layer consumes.
    for row in rows:
        for field in ("throughput_rps", "p50_ms", "p95_ms", "shed_rate"):
            assert row[field] is not None, (row["scenario"], field)
        assert row["errors"] == 0, row

    # Duplicate-heavy and multi-tenant traffic completes fully.
    assert by_name["zipf-duplicates"]["completed"] == REQUESTS
    assert by_name["multi-tenant"]["completed"] == REQUESTS
    # The adversarial tail separates p95 from p50 — and still completes.
    tail = by_name["adversarial-tail"]
    assert tail["completed"] == REQUESTS
    assert tail["p95_ms"] >= tail["p50_ms"]
    # Unmeetable deadlines produce structured 504s, not hangs or errors.
    spread = by_name["deadline-spread"]
    assert spread["deadline_exceeded"] >= 1
    assert spread["completed"] + spread["deadline_exceeded"] == REQUESTS
    # Containment traffic completes fully and its duplicates hit the
    # verdict cache (identity pairs alone guarantee repeats).
    assert by_name["contain"]["completed"] == REQUESTS
    assert metrics["contain.cache.hits"]["value"] > 0
    # The server accounted one logical request per attempt (no retries
    # in the runner), and the request histograms saw every completion.
    assert metrics["service.requests"]["value"] >= 5 * REQUESTS

    # Absolute objectives: the recorded run passes its declared SLOs.
    violations = [
        violation
        for row in rows
        for violation in evaluate_slo(row, DEFAULT_SLOS[row["scenario"]])
    ]
    assert violations == [], violations

    document = {
        "experiment": "E18-load",
        "seed": SEED,
        "requests": REQUESTS,
        "clients": CLIENTS,
        "scenarios": rows,
    }

    # Self-regression: a run never regresses against itself...
    assert check_regression(document, document) == []
    # ...and the gate demonstrably fires on a synthetic p95 regression
    # (its negative control: a gate that cannot fail gates nothing).
    degraded = copy.deepcopy(document)
    for row in degraded["scenarios"]:
        if row["p95_ms"] is not None:
            row["p95_ms"] = row["p95_ms"] * 10 + 1000.0
        row["throughput_rps"] = row["throughput_rps"] * 0.1
    broken = check_regression(degraded, document)
    assert len(broken) >= 2 * len(SCENARIO_NAMES), broken

    artifact = os.environ.get("BENCH_LOAD", "benchmarks/BENCH_load.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Representative number: one full zipf-duplicates replay (the
    # cache-friendliest scenario — the steady-state serving shape).
    def replay():
        with EvaluationServer(ServerConfig(workers=4, queue_depth=32)) as srv:
            scenario = build_scenario(
                "zipf-duplicates", seed=SEED, requests=20, clients=2
            )
            return run_scenario(scenario, srv.url)

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert result.completed == 20
