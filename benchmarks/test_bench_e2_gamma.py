"""E2 — Lemma 10: the γ gadget multiplies by (m−1)/m without inequalities.

Regenerates the witness-count table across arities and sweeps random
non-trivial structures for (≤) violations.  The benchmark times the
randomized (≤) sweep at m = 3.
"""

from repro.core import gamma_gadget
from repro.decision import random_structures

from benchmarks.conftest import print_table


def _rows() -> list[list]:
    rows = []
    for m in (3, 4, 5, 6, 7):
        gadget = gamma_gadget(m)
        value_s, value_b = gadget.witness_counts()
        rows.append(
            [
                m,
                str(gadget.ratio),
                value_s,
                value_b,
                gadget.inequality_counts,
                gadget.verify_equality(),
            ]
        )
    return rows


def _random_sweep() -> bool:
    gadget = gamma_gadget(3)
    schema = gadget.query_s.schema.union(gadget.query_b.schema)
    stream = random_structures(
        schema, domain_size=3, count=120, nontrivial_constants=True, seed=2
    )
    return gadget.upper_bound_violation(stream) is None


def test_e2_gamma_gadget(benchmark):
    rows = _rows()
    print_table(
        "E2 / Lemma 10 — γ multiplies by (m−1)/m, zero inequalities",
        ["m", "ratio", "γ_s(D)", "γ_b(D)", "(≠ in s, ≠ in b)", "(=) verified"],
        rows,
    )
    assert all(row[-1] for row in rows)
    assert all(row[4] == (0, 0) for row in rows)
    assert all(row[2] == row[0] - 1 and row[3] == row[0] for row in rows)

    holds = benchmark(_random_sweep)
    assert holds, "Lemma 10 (≤) violated on a sampled structure!"
