"""Metamorphic properties of bag-semantics evaluation.

Each test states a semantic invariant that must hold for *every* query and
structure — no oracle needed beyond the evaluator itself:

* ``φ(D)`` is invariant under bijective variable renaming (homomorphism
  counts do not see names);
* ``φ(D)`` is invariant under atom/inequality reordering (a CQ is a set
  of atoms);
* ``(φ ∧̄ ψ)(D) = φ(D)·ψ(D)`` — Lemma 1's multiplicativity over disjoint
  unions — and ``(φ↑k)(D) = φ(D)^k`` (Definition 2);
* ``count_at_least(φ, D, b) ⟺ φ(D) ≥ b``.

Every property is checked through both the cached and the uncached
evaluation paths, so a cache bug that respects these invariants only by
accident on the differential corpus still gets caught here.
"""

from __future__ import annotations

import random

import pytest

from repro.homomorphism import CountCache, count, count_at_least, count_many
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_query
from repro.queries.product import QueryProduct
from repro.queries.terms import Variable
from repro.relational import Schema, Structure
from repro.workloads import cycle_query, path_query, random_queries, star_query

SCHEMA = Schema.from_arities({"E": 2, "U": 1})

STRUCTURES = [
    Structure(
        SCHEMA,
        {"E": [(0, 1), (1, 2), (2, 0), (2, 2)], "U": [(1,)]},
        domain=range(3),
    ),
    Structure(
        SCHEMA,
        {"E": [(0, 0), (1, 0), (1, 2)], "U": [(0,), (2,)]},
        domain=range(3),
    ),
]

QUERIES = (
    [path_query(4), star_query(3), cycle_query(3), cycle_query(5)]
    + list(random_queries(SCHEMA, count=12, variable_count=4, atom_count=4, seed=5))
    + list(
        random_queries(
            SCHEMA,
            count=8,
            variable_count=3,
            atom_count=3,
            inequality_count=1,
            seed=23,
        )
    )
)

#: Every evaluation path: plain serial, through a component cache,
#: batched, and the compiled engine (bare and cached) — the specialized
#: evaluators must satisfy the same invariants as the interpreter.
PATHS = [
    pytest.param(lambda q, d: count(q, d), id="uncached"),
    pytest.param(lambda q, d: count(q, d, cache=CountCache()), id="cached"),
    pytest.param(lambda q, d: count_many([(q, d)])[0], id="batched"),
    pytest.param(lambda q, d: count(q, d, engine="compiled"), id="compiled"),
    pytest.param(
        lambda q, d: count(q, d, engine="compiled", cache=CountCache()),
        id="compiled-cached",
    ),
]


def _random_renaming(query: ConjunctiveQuery, seed: int) -> dict:
    rng = random.Random(seed)
    names = sorted(query.variables)
    shuffled = [Variable(f"r{i}_{v.name}") for i, v in enumerate(names)]
    rng.shuffle(shuffled)
    return dict(zip(names, shuffled))


@pytest.mark.parametrize("evaluate", PATHS)
def test_invariant_under_variable_renaming(evaluate):
    for seed, query in enumerate(QUERIES):
        renamed = query.rename(_random_renaming(query, seed))
        for structure in STRUCTURES:
            assert evaluate(renamed, structure) == evaluate(query, structure), (
                f"renaming changed the count of {query}"
            )


@pytest.mark.parametrize("evaluate", PATHS)
def test_invariant_under_atom_reordering(evaluate):
    for seed, query in enumerate(QUERIES):
        rng = random.Random(1000 + seed)
        atoms = list(query.atoms)
        inequalities = list(query.inequalities)
        rng.shuffle(atoms)
        rng.shuffle(inequalities)
        reordered = ConjunctiveQuery(atoms, inequalities)
        assert reordered == query  # atom sets are order-blind by design
        for structure in STRUCTURES:
            assert evaluate(reordered, structure) == evaluate(query, structure)


@pytest.mark.parametrize("evaluate", PATHS)
def test_multiplicative_over_disjoint_unions(evaluate):
    pairs = [
        (path_query(3), star_query(2)),
        (cycle_query(3), path_query(2)),
        (QUERIES[5], QUERIES[9]),
        (QUERIES[6], QUERIES[6]),  # self-product: φ ∧̄ φ
    ]
    for left, right in pairs:
        union = left * right  # disjoint_conj renames apart (Lemma 1)
        for structure in STRUCTURES:
            assert evaluate(union, structure) == evaluate(
                left, structure
            ) * evaluate(right, structure)


@pytest.mark.parametrize("evaluate", PATHS)
def test_power_is_pointwise_power(evaluate):
    for query in (path_query(2), cycle_query(3)):
        for structure in STRUCTURES:
            base = evaluate(query, structure)
            for k in (0, 1, 2, 3):
                assert evaluate(query**k, structure) == base**k
                assert (
                    evaluate(QueryProduct.of(query, k), structure) == base**k
                )


@pytest.mark.parametrize("engine", ["backtracking", "compiled"])
@pytest.mark.parametrize("cache", [None, CountCache()], ids=["uncached", "cached"])
def test_count_at_least_agrees_with_count(cache, engine):
    for query in QUERIES[:12]:
        for structure in STRUCTURES:
            exact = count(query, structure)
            for bound in (0, 1, exact - 1, exact, exact + 1, exact * 2 + 3):
                if bound < 0:
                    continue
                assert count_at_least(
                    query, structure, bound, cache=cache, engine=engine
                ) is (exact >= bound), (query, bound, engine)


@pytest.mark.parametrize("cache", [None, CountCache()], ids=["uncached", "cached"])
def test_count_at_least_on_factorized_products(cache):
    product = QueryProduct.of(cycle_query(3), 7) * QueryProduct.of(path_query(2), 2)
    for structure in STRUCTURES:
        exact = count(product, structure)
        for bound in (0, 1, exact, exact + 1):
            assert count_at_least(
                product, structure, bound, cache=cache
            ) is (exact >= bound)
        # Astronomical exponents never materialize on the predicate path.
        huge = QueryProduct.of(cycle_query(3), 10**100)
        base = count(cycle_query(3), structure)
        if base >= 2:
            assert count_at_least(huge, structure, 2**64, cache=cache)


@pytest.mark.parametrize("engine", ["backtracking", "compiled", "auto"])
def test_count_at_least_zero_factor_two_pass(engine):
    """The PR-3 fuzzer-caught bug, re-pinned for every engine: a factor
    evaluating to zero *behind* an astronomical nonzero factor must
    annihilate the product before any bound is declared cleared."""
    structure = Structure(
        Schema.from_arities({"E": 2, "Z": 2}), {"E": [(0, 1)], "Z": []}
    )
    product = QueryProduct(
        [(path_query(2), 10**100), (parse_query("Z(u, v)"), 1)]
    )
    assert not count_at_least(product, structure, 1, engine=engine)
    assert count(product, structure, engine=engine) == 0


# -- set-semantics containment invariants -------------------------------------
#
# The Chandra–Merlin verdict is a preorder on inequality-free CQs, so it
# must be reflexive, transitive, monotone under weakening (dropping an
# atom), invariant under α-renaming and atom reordering of either side,
# and monotone under union-widening on the UCQ level.

from repro.containment_set import cq_contained, ucq_contained  # noqa: E402

#: QUERIES stripped of inequalities (the classical test refuses them).
CLEAN = [query.without_inequalities() for query in QUERIES]


def test_containment_is_reflexive():
    for query in CLEAN:
        assert cq_contained(query, query), f"{query} not contained in itself"


def test_containment_invariant_under_renaming():
    for seed, query in enumerate(CLEAN[:12]):
        renamed = query.rename(_random_renaming(query, 5000 + seed))
        partner = CLEAN[(seed + 7) % len(CLEAN)]
        assert cq_contained(query, renamed)
        assert cq_contained(renamed, query)
        # Renaming either side never flips a verdict against a partner.
        assert cq_contained(query, partner) == cq_contained(renamed, partner)
        assert cq_contained(partner, query) == cq_contained(partner, renamed)


def test_containment_invariant_under_atom_reordering():
    for seed, query in enumerate(CLEAN[:12]):
        rng = random.Random(6000 + seed)
        atoms = list(query.atoms)
        rng.shuffle(atoms)
        reordered = ConjunctiveQuery(atoms)
        partner = CLEAN[(seed + 3) % len(CLEAN)]
        assert cq_contained(query, partner) == cq_contained(reordered, partner)
        assert cq_contained(partner, query) == cq_contained(partner, reordered)


def test_weakening_chains_are_monotone_and_transitive():
    """Dropping atoms weakens: Q ⊆ Q₁ ⊆ Q₂ ⊆ …, and each prefix pair of
    the chain must also be directly contained (transitivity on a chain
    whose links are guaranteed positive)."""
    for query in CLEAN:
        if query.atom_count < 3:
            continue
        chain = [query]
        while chain[-1].atom_count > 1:
            chain.append(ConjunctiveQuery(chain[-1].atoms[:-1]))
        for i in range(len(chain) - 1):
            assert cq_contained(chain[i], chain[i + 1])
        for i in range(len(chain)):
            for j in range(i + 1, len(chain)):
                assert cq_contained(chain[i], chain[j]), (
                    f"transitivity broke between drop-{i} and drop-{j}"
                )


def test_containment_transitive_on_sampled_triples():
    rng = random.Random(424242)
    triples = [rng.sample(range(len(CLEAN)), 3) for _ in range(30)]
    for a, b, c in triples:
        if cq_contained(CLEAN[a], CLEAN[b]) and cq_contained(
            CLEAN[b], CLEAN[c]
        ):
            assert cq_contained(CLEAN[a], CLEAN[c]), (
                f"{CLEAN[a]} ⊆ {CLEAN[b]} ⊆ {CLEAN[c]} but not transitively"
            )


def test_union_widening_is_monotone():
    """Q ⊆ Q ∪ Q′ — any union containing a disjunct contains it."""
    for offset, query in enumerate(CLEAN[:10]):
        extras = [CLEAN[(offset + 5) % len(CLEAN)], path_query(2)]
        union = [query, *extras]
        assert ucq_contained([query], union)
        assert ucq_contained(union, union)
        # Widening the right side never flips a positive verdict.
        assert ucq_contained([query], union + [cycle_query(3)])
