"""Tests for Theorem 5 / Lemmas 23–24 (Section 5)."""

import pytest

from repro.core import lemma24_holds, transfer_witness
from repro.errors import ReductionError, SearchBudgetExceeded
from repro.homomorphism import count
from repro.queries import parse_query
from repro.relational import Schema, Structure, blowup


@pytest.fixture
def source():
    """D₀ with ψ'_s(D₀) > ψ_b(D₀): two loops versus one F-fact."""
    return Structure(
        Schema.from_arities({"E": 2, "F": 2}),
        {"E": [(0, 0), (1, 1), (0, 1)], "F": [(0, 0)]},
    )


class TestLemma24:
    @pytest.mark.parametrize(
        "psi_s_text",
        ["E(x, y) & x != y", "E(x, y) & E(y, z) & x != z"],
    )
    def test_bound_on_concrete_structures(self, source, psi_s_text):
        psi_s = parse_query(psi_s_text)
        assert lemma24_holds(psi_s, source)

    def test_bound_on_triangle(self):
        triangle = Structure(
            Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 2), (2, 0)]}
        )
        psi_s = parse_query("E(x, y) & x != y")
        assert lemma24_holds(psi_s, triangle)

    def test_injection_interpretation(self, source):
        """ψ_s(blowup(D,2)) ≥ ψ'_s(blowup(D,2))/2, by exact counting."""
        psi_s = parse_query("E(x, y) & x != y")
        blown = blowup(source, 2)
        assert 2 * count(psi_s, blown) >= count(
            psi_s.without_inequalities(), blown
        )


class TestTransfer:
    def test_transfers_witness(self, source):
        """ψ_s = E(x,y) ∧ x≠y, ψ_b = F(u,v): ψ'_s(D₀)=3 > 1=ψ_b(D₀)."""
        psi_s = parse_query("E(x, y) & x != y")
        psi_b = parse_query("F(u, v)")
        transfer = transfer_witness(psi_s, psi_b, source)
        assert transfer.lhs > transfer.rhs
        assert count(psi_s, transfer.witness) == transfer.lhs
        assert count(psi_b, transfer.witness) == transfer.rhs

    def test_witness_shape_recorded(self, source):
        psi_s = parse_query("E(x, y) & x != y")
        psi_b = parse_query("F(u, v)")
        transfer = transfer_witness(psi_s, psi_b, source)
        assert transfer.product_power >= 1
        assert transfer.blowup_factor >= 2

    def test_requires_ineq_free_psi_b(self, source):
        with pytest.raises(ReductionError):
            transfer_witness(
                parse_query("E(x, y)"),
                parse_query("F(u, v) & u != v"),
                source,
            )

    def test_requires_source_gap(self, source):
        """ψ'_s(D₀) ≤ ψ_b(D₀) is rejected: no Lemma 23 witness to transfer."""
        with pytest.raises(ReductionError):
            transfer_witness(
                parse_query("F(x, y) & x != y"),
                parse_query("E(u, v)"),
                source,
            )

    def test_budget_exhaustion(self, source):
        """A hopeless (actually contained) pair exhausts the power budget."""
        # ψ_s with its inequality removed equals ψ_b syntactically: after
        # blow-ups ψ_s (strictly fewer homs) never overtakes ψ_b... except
        # Lemma 23 says it must if ψ'_s(D₀) > ψ_b(D₀), which fails here —
        # the constructor refuses before searching.
        psi = parse_query("E(x, y) & x != y")
        with pytest.raises((ReductionError, SearchBudgetExceeded)):
            transfer_witness(psi, parse_query("E(x, y)"), source, max_power=2)

    def test_multiple_inequalities(self, source):
        """The closing remark of Section 5: more inequalities, wider blow-up."""
        psi_s = parse_query("E(x, y) & E(y, z) & x != y & y != z")
        psi_b = parse_query("F(u, v)")
        transfer = transfer_witness(psi_s, psi_b, source)
        assert transfer.lhs > transfer.rhs


class TestDecideViaRelaxation:
    """Theorem 5 as an operational reduction to the inequality-free case."""

    @staticmethod
    def _bounded_oracle(phi_s, phi_b):
        from repro.decision import enumerate_structures, find_counterexample

        schema = phi_s.schema.union(phi_b.schema)
        outcome = find_counterexample(
            phi_s, phi_b, enumerate_structures(schema, 2)
        )
        return outcome.counterexample

    def test_negative_case_lifts_witness(self):
        from repro.core.theorem5 import decide_via_relaxation
        from repro.homomorphism import count

        psi_s = parse_query("E(x, y) & x != y")
        psi_b = parse_query("F(u, v)")
        contained, witness = decide_via_relaxation(
            psi_s, psi_b, self._bounded_oracle
        )
        assert not contained
        assert witness is not None
        assert count(psi_s, witness) > count(psi_b, witness)

    def test_positive_case(self):
        from repro.core.theorem5 import decide_via_relaxation

        psi_s = parse_query("E(x, y) & E(y, x) & x != y")
        psi_b = parse_query("E(u, v)")
        contained, witness = decide_via_relaxation(
            psi_s, psi_b, self._bounded_oracle
        )
        assert contained and witness is None

    def test_rejects_b_inequalities(self):
        from repro.core.theorem5 import decide_via_relaxation

        with pytest.raises(ReductionError):
            decide_via_relaxation(
                parse_query("E(x, y)"),
                parse_query("E(u, v) & u != v"),
                self._bounded_oracle,
            )
