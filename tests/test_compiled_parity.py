"""The compiled engine's differential test wall (PR 7).

``engine="compiled"`` must be a *drop-in* for the interpreted engines:
bit-identical counts on every input and identical error classes on every
bad input, through every evaluation path the library offers.  This suite
drives the seeded qa case stream (the same generator the fuzzer and the
load generator share) through:

* serial ``count`` — compiled vs backtracking vs auto (vs acyclic where
  applicable);
* the cached, batched, and ``workers=2`` paths (``CountCache`` /
  ``count_many``);
* ``count_at_least`` (including the factorized :class:`QueryProduct`
  path and the PR-3 zero-factor two-pass regression) and ``count_ucq``;
* the error discipline: uninterpreted constants raise
  :class:`~repro.errors.ConstantError` (never engine-tagged), arity
  mismatches raise :class:`~repro.errors.EvaluationError` tagged
  ``[engine: compiled]`` — exactly like the default engine;
* the compiled artifacts themselves: both specializations (array
  Yannakakis / closure chain), artifact reuse across α-equivalent
  components, and the 64-bit overflow fallback to exact ``int`` columns.
"""

from __future__ import annotations

import pytest

from repro.errors import ConstantError, EvaluationError
from repro.homomorphism import (
    CountCache,
    compile_component,
    compiled_supported,
    count,
    count_at_least,
    count_homomorphisms,
    count_homomorphisms_compiled,
    count_many,
    count_ucq,
)
from repro.homomorphism.acyclic import is_acyclic
from repro.obs import observe
from repro.planner import PlanCache
from repro.qa.generators import case_at
from repro.queries import parse_query
from repro.queries.product import QueryProduct
from repro.queries.terms import Variable
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational import Schema, Structure

#: Seeded corpus slice: enough cases to cover every generator feature
#: (constants, inequalities, repeated variables, multi-component shapes)
#: while keeping the suite in tier-1 time.
CASE_COUNT = 120
SEED = 1

def _cq_cases():
    cases = []
    index = 0
    while len(cases) < CASE_COUNT:
        case = case_at(index, SEED)
        index += 1
        if case.kind == "cq" and case.query is not None:
            cases.append(case)
    return cases


def _ucq_cases(limit=12):
    cases = []
    index = 0
    while len(cases) < limit:
        case = case_at(index, SEED)
        index += 1
        if case.kind == "ucq" and case.disjuncts:
            cases.append(case)
    return cases


_CQ_CASES = _cq_cases()
_UCQ_CASES = _ucq_cases()


class TestSeededCorpusParity:
    def test_serial_counts_bit_identical(self):
        for case in _CQ_CASES:
            reference = count(case.query, case.structure, engine="backtracking")
            via_compiled = count(case.query, case.structure, engine="compiled")
            assert via_compiled == reference, case.describe()
            via_auto = count(case.query, case.structure, engine="auto")
            assert via_auto == reference, case.describe()

    def test_acyclic_agrees_where_applicable(self):
        checked = 0
        for case in _CQ_CASES:
            if case.query.has_inequalities():
                continue
            if not all(
                is_acyclic(component)
                for component in case.query.connected_components()
            ):
                continue
            reference = count(case.query, case.structure, engine="acyclic")
            assert (
                count(case.query, case.structure, engine="compiled")
                == reference
            ), case.describe()
            checked += 1
        assert checked > 10  # the slice really exercises the comparison

    def test_cached_path_bit_identical(self):
        cache = CountCache()
        for case in _CQ_CASES:
            reference = count(case.query, case.structure, engine="backtracking")
            assert (
                count(case.query, case.structure, engine="compiled", cache=cache)
                == reference
            ), case.describe()
            # Warm hit returns the same value again.
            assert (
                count(case.query, case.structure, engine="compiled", cache=cache)
                == reference
            ), case.describe()

    def test_batched_path_bit_identical(self):
        pairs = [(case.query, case.structure) for case in _CQ_CASES]
        reference = [count(query, structure) for query, structure in pairs]
        assert count_many(pairs, engine="compiled") == reference

    def test_two_worker_path_bit_identical(self):
        pairs = [(case.query, case.structure) for case in _CQ_CASES[:30]]
        reference = [count(query, structure) for query, structure in pairs]
        assert count_many(pairs, engine="compiled", workers=2) == reference

    def test_count_at_least_matches_exact_value(self):
        for case in _CQ_CASES[:40]:
            value = count(case.query, case.structure)
            for bound, expected in (
                (0, True),
                (value, True),
                (value + 1, False),
            ):
                assert (
                    count_at_least(
                        case.query, case.structure, bound, engine="compiled"
                    )
                    is expected
                ), case.describe()
            product = QueryProduct.of(case.query, 2)
            squared = value * value
            assert count_at_least(
                product, case.structure, squared, engine="compiled"
            )
            assert not count_at_least(
                product, case.structure, squared + 1, engine="compiled"
            )

    def test_count_at_least_zero_factor_regression(self):
        # The PR-3 fuzzer-caught bug: a nonzero factor must not clear the
        # bound past a zero factor *behind* it.  The two-pass fix has to
        # hold under compilation too.
        structure = Structure(
            Schema.from_arities({"E": 2, "Z": 2}), {"E": [(0, 1)], "Z": []}
        )
        nonzero = parse_query("E(x, y)")
        zero = parse_query("Z(u, v)")
        product = QueryProduct([(nonzero, 10**100), (zero, 1)])
        assert not count_at_least(product, structure, 1, engine="compiled")
        assert count(product, structure, engine="compiled") == 0

    def test_count_ucq_bit_identical(self):
        for case in _UCQ_CASES:
            ucq = UnionOfConjunctiveQueries(case.disjuncts)
            reference = count_ucq(ucq, case.structure, engine="backtracking")
            assert (
                count_ucq(ucq, case.structure, engine="compiled") == reference
            ), case.describe()
            assert (
                count_ucq(
                    ucq, case.structure, engine="compiled", cache=CountCache()
                )
                == reference
            ), case.describe()
            assert (
                count_ucq(ucq, case.structure, engine="compiled", workers=2)
                == reference
            ), case.describe()


class TestErrorClassParity:
    """Outside the envelope the compiled engine falls back to the
    interpreter, so every error class (and tag) matches the default."""

    def test_uninterpreted_constant_raises_constant_error(self, edge_schema):
        structure = Structure(edge_schema, {"E": [(0, 1)]})
        query = parse_query("E(x, #nowhere)")
        with pytest.raises(ConstantError) as compiled_error:
            count(query, structure, engine="compiled")
        with pytest.raises(ConstantError) as reference_error:
            count(query, structure, engine="backtracking")
        assert str(compiled_error.value) == str(reference_error.value)
        # ConstantError is not an EvaluationError: never engine-tagged.
        assert "[engine:" not in str(compiled_error.value)

    def test_arity_mismatch_tagged_with_compiled(self, edge_schema):
        structure = Structure(edge_schema, {"E": [(0, 1)]})
        query = parse_query("E(x, y, z)")
        with pytest.raises(EvaluationError, match=r"\[engine: compiled\]"):
            count(query, structure, engine="compiled")
        with pytest.raises(EvaluationError, match=r"\[engine: backtracking\]"):
            count(query, structure, engine="backtracking")

    def test_fallback_counts_match_on_inequality_queries(self, edge_schema):
        structure = Structure(
            edge_schema, {"E": [(0, 1), (1, 2), (2, 0), (1, 0)]}
        )
        for text in (
            "E(x, y) & x != y",
            "E(x, y) & E(y, z) & x != z",
            "E(x, y) & E(y, z) & E(z, x) & x != y & y != z",
        ):
            query = parse_query(text)
            assert not compiled_supported(query, structure)
            assert count(query, structure, engine="compiled") == count(
                query, structure, engine="backtracking"
            )

    def test_fallback_is_counted(self, edge_schema):
        structure = Structure(edge_schema, {"E": [(0, 1)]})
        query = parse_query("E(x, y) & x != y")
        with observe() as observation:
            count(query, structure, engine="compiled")
        metrics = observation.report()["metrics"]
        assert metrics["compiled.calls"]["value"] == 1
        assert metrics["compiled.fallbacks"]["value"] == 1

    def test_unknown_engine_message_lists_compiled(self, edge_schema):
        structure = Structure(edge_schema, {"E": [(0, 1)]})
        with pytest.raises(EvaluationError, match="compiled"):
            count(parse_query("E(x, y)"), structure, engine="nope")


class TestCompiledArtifacts:
    def test_acyclic_shape_compiles_to_array_semiring(self, edge_schema):
        structure = Structure(edge_schema, {"E": [(0, 1), (1, 2)]})
        artifact = compile_component(parse_query("E(x, y) & E(y, z)"), structure)
        assert artifact.mode == "acyclic"
        assert artifact.run() == 1

    def test_cyclic_shape_compiles_to_closure_chain(self, edge_schema):
        structure = Structure(
            edge_schema, {"E": [(0, 1), (1, 2), (2, 0)]}
        )
        query = parse_query("E(x, y) & E(y, z) & E(z, x)")
        artifact = compile_component(query, structure)
        assert artifact.mode == "chain"
        assert artifact.run() == 3
        assert artifact.run() == 3  # artifacts are reusable

    def test_alpha_equivalent_components_share_one_artifact(self, edge_schema):
        structure = Structure(edge_schema, {"E": [(0, 1), (1, 2), (2, 0)]})
        query = parse_query("E(x, y) & E(y, z) & E(z, x)")
        renamed = query.rename(
            {
                variable: Variable(f"zz_{position}")
                for position, variable in enumerate(sorted(query.variables))
            }
        )
        cache = PlanCache()
        _, first_hit = cache.compiled_artifact(
            query, structure, compile_component
        )
        _, second_hit = cache.compiled_artifact(
            renamed, structure, compile_component
        )
        assert not first_hit
        assert second_hit  # canonical keying: one build for the α-class
        assert cache.compiled_stats()["misses"] == 1
        assert cache.compiled_stats()["hits"] == 1

    def test_artifact_reuse_visible_in_counters(self, edge_schema):
        structure = Structure(edge_schema, {"E": [(0, 1), (1, 2)]})
        query = parse_query("E(a, b) & E(b, c)")
        count_homomorphisms_compiled(query, structure)  # prime the store
        with observe() as observation:
            count_homomorphisms_compiled(query, structure)
        metrics = observation.report()["metrics"]
        assert metrics["plan.compile.cache_hits"]["value"] == 1
        assert metrics["compiled.artifact_reuses"]["value"] == 1
        assert metrics.get("plan.compile.builds", {"value": 0})["value"] == 0

    def test_overflow_falls_back_to_exact_int_columns(self):
        # A 22-leaf star over a 10-out-degree centre counts 10^22 — past
        # 64-bit — so the array('q') pass must overflow and re-run on
        # Python ints, bit-identical to the interpreter.
        schema = Schema.from_arities({"E": 2})
        structure = Structure(
            schema, {"E": [(0, j) for j in range(10)]}, domain=range(10)
        )
        text = " & ".join(f"E(x, y{i})" for i in range(22))
        query = parse_query(text)
        reference = count_homomorphisms(query, structure)
        assert reference == 10**22
        with observe() as observation:
            assert count_homomorphisms_compiled(query, structure) == reference
        metrics = observation.report()["metrics"]
        assert metrics["compiled.overflow_fallbacks"]["value"] >= 1

    def test_supported_predicate_gates(self, edge_schema):
        structure = Structure(edge_schema, {"E": [(0, 1)]})
        assert compiled_supported(parse_query("E(x, y)"), structure)
        assert not compiled_supported(
            parse_query("E(x, y) & x != y"), structure
        )
        assert not compiled_supported(parse_query("E(x, #nowhere)"), structure)
        assert not compiled_supported(parse_query("E(x, y, z)"), structure)
        # A relation the structure does not declare is the empty relation:
        # supported, and counted as zero.
        missing = parse_query("R(x, y)")
        assert compiled_supported(missing, structure)
        assert count(missing, structure, engine="compiled") == 0
