"""Tests for the multiplication gadgets of Section 3 (Lemmas 4, 5, 10).

The (=) conditions are verified exactly on the packaged witnesses; the
(≤) conditions are probed exhaustively over all small structures for the
smallest β gadget and by randomized sweeps for the rest.
"""

from fractions import Fraction

import pytest

from repro.core import alpha_gadget, beta_gadget, compose, gamma_gadget
from repro.decision import enumerate_structures, random_structures
from repro.errors import ReductionError
from repro.homomorphism import count
from repro.naming import HEART, SPADE


class TestBeta:
    @pytest.mark.parametrize("p", [3, 4, 5, 6])
    def test_ratio(self, p):
        assert beta_gadget(p).ratio == Fraction((p + 1) ** 2, 2 * p)

    @pytest.mark.parametrize("p", [3, 4, 5, 6])
    def test_equality_witness(self, p):
        gadget = beta_gadget(p)
        value_s, value_b = gadget.witness_counts()
        assert (value_s, value_b) == ((p + 1) ** 2, 2 * p)
        assert gadget.verify_equality()

    def test_witness_is_nontrivial(self):
        assert beta_gadget(3).witness.is_nontrivial()

    def test_inequality_budget(self):
        gadget = beta_gadget(3)
        assert gadget.inequality_counts == (0, 1)

    def test_arity_below_three_rejected(self):
        with pytest.raises(ReductionError):
            beta_gadget(2)

    def test_upper_bound_exhaustive_p3(self):
        """Lemma 5 (≤) on *every* 2-element structure, exhaustively.

        The relation has arity 3 over 2 elements: 2^8 = 256 structures,
        each checked exactly.  A violation anywhere would falsify Lemma 5.
        """
        gadget = beta_gadget(3)
        schema = gadget.query_s.schema
        stream = enumerate_structures(schema, 2, nontrivial_constants=True)
        assert gadget.upper_bound_violation(stream) is None

    def test_upper_bound_random_p4(self):
        gadget = beta_gadget(4)
        schema = gadget.query_s.schema
        stream = random_structures(
            schema, domain_size=3, count=150, nontrivial_constants=True, seed=11
        )
        assert gadget.upper_bound_violation(stream) is None

    def test_trivial_structure_breaks_bound(self):
        """The 'well of positivity' (Section 1.2): with ♠ = ♥ the (≤)
        condition genuinely fails, which is why non-triviality is needed."""
        gadget = beta_gadget(3)
        well = gadget.witness.relabel(
            {gadget.witness.interpret(SPADE): gadget.witness.interpret(HEART)}
        )
        assert not well.is_nontrivial()
        value_s = count(gadget.query_s, well)
        value_b = count(gadget.query_b, well)
        assert value_s > 0 and value_b == 0  # inequality can't be satisfied


class TestGamma:
    @pytest.mark.parametrize("m", [3, 4, 5, 6])
    def test_ratio_and_witness(self, m):
        gadget = gamma_gadget(m)
        assert gadget.ratio == Fraction(m - 1, m)
        assert gadget.witness_counts() == (m - 1, m)
        assert gadget.verify_equality()

    def test_no_inequalities_at_all(self):
        assert gamma_gadget(4).inequality_counts == (0, 0)

    def test_arity_below_three_rejected(self):
        with pytest.raises(ReductionError):
            gamma_gadget(2)

    def test_upper_bound_random(self):
        gadget = gamma_gadget(3)
        schema = gadget.query_s.schema.union(gadget.query_b.schema)
        stream = random_structures(
            schema, domain_size=3, count=200, nontrivial_constants=True, seed=7
        )
        assert gadget.upper_bound_violation(stream) is None


class TestComposition:
    def test_lemma4_ratio_multiplies(self):
        beta = beta_gadget(3)
        gamma = gamma_gadget(4)
        combined = compose(beta, gamma)
        assert combined.ratio == beta.ratio * gamma.ratio
        assert combined.verify_equality()

    def test_lemma4_requires_disjoint_schemas(self):
        with pytest.raises(ReductionError):
            compose(beta_gadget(3), beta_gadget(3))

    def test_compose_distinct_relations_ok(self):
        one = beta_gadget(3, relation="R_one")
        two = beta_gadget(3, relation="R_two")
        combined = compose(one, two)
        assert combined.ratio == one.ratio**2
        assert combined.verify_equality()


class TestAlpha:
    @pytest.mark.parametrize("c", [2, 3, 4])
    def test_exact_natural_ratio(self, c):
        gadget = alpha_gadget(c)
        assert gadget.ratio == Fraction(c)
        assert gadget.verify_equality()

    def test_single_inequality(self):
        assert alpha_gadget(2).inequality_counts == (0, 1)

    def test_c_below_two_rejected(self):
        with pytest.raises(ReductionError):
            alpha_gadget(1)

    def test_upper_bound_random(self):
        gadget = alpha_gadget(2)
        schema = gadget.query_s.schema.union(gadget.query_b.schema)
        stream = random_structures(
            schema, domain_size=2, count=60, nontrivial_constants=True, seed=3
        )
        assert gadget.upper_bound_violation(stream) is None

    def test_name_suffix_disambiguates(self):
        one = alpha_gadget(2, name_suffix="_a")
        two = alpha_gadget(2, name_suffix="_b")
        schema_one = one.query_s.schema.union(one.query_b.schema)
        schema_two = two.query_s.schema.union(two.query_b.schema)
        assert schema_one.is_disjoint_from(schema_two)
