"""The sharded worker tier: durable caches, routing, aggregation.

Three layers under test:

* ``repro.shard.persist`` — the content-addressed durable tier: write
  through / warm restore for all three caches, ``/update``-mirroring
  invalidation, and the corruption discipline (truncated, garbage,
  wrong-version, or digest-mismatched snapshot files are *skipped* with
  a ``shard.snapshot.rejected`` tick, never a crash, never a wrong
  count).
* ``repro.shard.router`` routing-table pieces — the α-stable routing
  key, the consistent-hash ring, and the cross-worker metric merge —
  all pure, tested without processes.
* The live tiers — a single server with a snapshot directory
  (``/snapshot`` endpoint, warm restart) and a real two-shard router
  with subprocess workers (proxying, aggregation, crash restart).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.containment_set.cache import ContainmentCache, containment_cache_key
from repro.homomorphism.cache import CountCache, component_cache_key
from repro.io import structure_from_facts
from repro.obs.metrics import Registry
from repro.planner.analyze import PlanCache
from repro.queries.parser import parse_query
from repro.shard.persist import FORMAT_VERSION, DurableCacheStore
from repro.shard.router import (
    ConsistentHashRing,
    RouterConfig,
    ShardRouter,
    merge_metric_snapshots,
    routing_key,
)
from repro.shard.worker import http_get_json, http_post_json


def _structure():
    return structure_from_facts("E(a,b) E(b,c) E(c,a) U(a)")


def _count_key(query_text: str, engine: str = "backtracking"):
    return component_cache_key(
        parse_query(query_text), _structure(), engine
    )


# -- persistence: round trips ----------------------------------------------


class TestDurableCounts:
    def test_write_through_and_restore(self, tmp_path):
        registry = Registry()
        store = DurableCacheStore(tmp_path, registry=registry)
        cache = CountCache()
        cache.attach_durable(store)
        key = _count_key("E(x, y) & E(y, z)")
        cache.store(key, 3)
        assert store.stats()["counts"] == 1

        fresh = CountCache()
        report = DurableCacheStore(tmp_path).restore_counts(fresh)
        assert (report.loaded, report.rejected) == (1, 0)
        assert fresh.lookup(key) == 3

    def test_alpha_variant_hits_restored_entry(self, tmp_path):
        store = DurableCacheStore(tmp_path)
        cache = CountCache()
        cache.attach_durable(store)
        cache.store(_count_key("E(x, y) & E(y, z)"), 3)

        fresh = CountCache()
        DurableCacheStore(tmp_path).restore_counts(fresh)
        # The key canonicalizes the component, so a renamed variant of
        # the query reads the persisted count.
        assert fresh.lookup(_count_key("E(u, v) & E(v, w)")) == 3

    def test_save_counts_bulk(self, tmp_path):
        store = DurableCacheStore(tmp_path)
        cache = CountCache()
        cache.store(_count_key("E(x, y)"), 3)
        cache.store(_count_key("U(x)"), 1)
        assert store.save_counts(cache) == 2
        assert store.stats()["counts"] == 2

    def test_restore_is_idempotent_and_rewrites_nothing(self, tmp_path):
        store = DurableCacheStore(tmp_path)
        cache = CountCache()
        cache.attach_durable(store)
        cache.store(_count_key("E(x, y)"), 3)
        (path,) = (tmp_path / "counts").glob("*.json")
        written = path.stat().st_mtime_ns

        warmed = CountCache()
        warmed.attach_durable(store)
        store.restore_counts(warmed)
        assert path.stat().st_mtime_ns == written
        assert store.stats()["counts"] == 1

    def test_invalidation_deletes_dependent_files(self, tmp_path):
        store = DurableCacheStore(tmp_path)
        cache = CountCache()
        cache.attach_durable(store)
        cache.store(_count_key("E(x, y) & E(y, z)"), 3)
        cache.store(_count_key("U(x)"), 1)

        cache.invalidate_relations({"E"})
        assert store.stats()["counts"] == 1
        fresh = CountCache()
        DurableCacheStore(tmp_path).restore_counts(fresh)
        assert fresh.lookup(_count_key("U(x)")) == 1
        assert fresh.lookup(_count_key("E(x, y) & E(y, z)")) is None

    def test_invalidation_covers_preexisting_files(self, tmp_path):
        """A new process's /update must evict entries an *older* process
        persisted, even before any restore ran."""
        seeder = CountCache()
        seeder.attach_durable(DurableCacheStore(tmp_path))
        seeder.store(_count_key("E(x, y)"), 3)

        store = DurableCacheStore(tmp_path)  # fresh process, index scan
        assert store.invalidate_relations({"E"}) == 1
        assert store.stats()["counts"] == 0


class TestDurablePlans:
    def test_profile_round_trip(self, tmp_path):
        store = DurableCacheStore(tmp_path)
        cache = PlanCache()
        cache.attach_durable(store)
        query = parse_query("E(x, y) & E(y, z) & U(z)")
        profile, was_hit = cache.profile(query)
        assert not was_hit
        assert store.stats()["plans"] == 1

        fresh = PlanCache()
        report = DurableCacheStore(tmp_path).restore_plans(fresh)
        assert (report.loaded, report.rejected) == (1, 0)
        restored, was_hit = fresh.profile(parse_query("E(a, b) & E(b, c) & U(c)"))
        assert was_hit
        assert restored == profile


class TestDurableContainment:
    def test_verdict_round_trip(self, tmp_path):
        store = DurableCacheStore(tmp_path)
        cache = ContainmentCache()
        cache.attach_durable(store)
        key = containment_cache_key(
            parse_query("E(x, y) & E(y, z)"),
            parse_query("E(u, v)"),
            "chandra-merlin",
        )
        cache.store(key, (True, None))
        cache.store(
            containment_cache_key(
                parse_query("U(x)"), parse_query("E(x, y)"), "chandra-merlin"
            ),
            (False, 2),
        )
        assert store.stats()["containment"] == 2

        fresh = ContainmentCache()
        report = DurableCacheStore(tmp_path).restore_containment(fresh)
        assert (report.loaded, report.rejected) == (2, 0)
        assert fresh.lookup(key) == (True, None)

    def test_schema_invalidation_drops_mentioning_verdicts(self, tmp_path):
        store = DurableCacheStore(tmp_path)
        cache = ContainmentCache()
        cache.attach_durable(store)
        cache.store(
            containment_cache_key(
                parse_query("E(x, y)"), parse_query("E(u, v)"), "cm"
            ),
            (True, None),
        )
        cache.store(
            containment_cache_key(
                parse_query("U(x)"), parse_query("U(y)"), "cm"
            ),
            (True, None),
        )
        cache.invalidate_relations({"E"})
        assert store.stats()["containment"] == 1


# -- persistence: corruption (the snapshot-rejection discipline) -----------


class TestSnapshotCorruption:
    def _seed(self, tmp_path, registry=None) -> DurableCacheStore:
        store = DurableCacheStore(tmp_path, registry=registry)
        cache = CountCache()
        cache.attach_durable(store)
        cache.store(_count_key("E(x, y) & E(y, z)"), 3)
        cache.store(_count_key("U(x)"), 1)
        return store

    def test_truncated_garbage_and_wrong_version_are_skipped(self, tmp_path):
        registry = Registry()
        self._seed(tmp_path, registry=registry)
        counts_dir = tmp_path / "counts"
        valid = sorted(counts_dir.glob("*.json"))
        assert len(valid) == 2

        # Truncation: chop a valid file mid-JSON.
        truncated = counts_dir / "1111111111111111.json"
        truncated.write_text(valid[0].read_text()[: 40], encoding="utf-8")
        # Garbage: not JSON at all.
        (counts_dir / "2222222222222222.json").write_bytes(b"\x00\x01spam")
        # Wrong version: internally consistent (filename matches content
        # digest) but stamped with a future format.
        entry = json.loads(valid[0].read_text(encoding="utf-8"))
        entry["format"] = FORMAT_VERSION + 1
        from repro.shard.persist import _entry_digest

        (counts_dir / f"{_entry_digest(entry)}.json").write_text(
            json.dumps(entry, sort_keys=True), encoding="utf-8"
        )
        # Digest mismatch: valid content under the wrong filename (a
        # hand-edited or cross-copied file).
        (counts_dir / "3333333333333333.json").write_text(
            valid[1].read_text(), encoding="utf-8"
        )

        fresh = CountCache()
        report = DurableCacheStore(tmp_path, registry=registry).restore_counts(
            fresh
        )
        assert report.loaded == 2
        assert report.rejected == 4
        snapshot = registry.snapshot()
        assert snapshot["shard.snapshot.rejected"]["value"] == 4
        # The surviving entries are exactly the uncorrupted ones, with
        # their original values — corruption never poisons a count.
        assert fresh.lookup(_count_key("E(x, y) & E(y, z)")) == 3
        assert fresh.lookup(_count_key("U(x)")) == 1
        assert len(fresh) == 2

    def test_semantically_broken_entry_is_rejected_not_stored(self, tmp_path):
        """A well-formed file whose *payload* does not decode (count is a
        string) passes the digest gate but fails decode — skipped too."""
        registry = Registry()
        store = DurableCacheStore(tmp_path, registry=registry)
        from repro.shard.persist import _entry_digest

        entry = {
            "format": FORMAT_VERSION,
            "tier": "counts",
            "component": {"nonsense": True},
            "fingerprint": {"§": []},
            "engine": "backtracking",
            "value": "three",
            "relations": ["E"],
            "domain_dependent": False,
        }
        path = tmp_path / "counts" / f"{_entry_digest(entry)}.json"
        path.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")

        fresh = CountCache()
        report = store.restore_counts(fresh)
        assert (report.loaded, report.rejected) == (0, 1)
        assert len(fresh) == 0

    def test_corrupt_files_never_crash_restart_loop(self, tmp_path):
        """Restore → corrupt → restore again: the store keeps serving."""
        store = self._seed(tmp_path)
        for path in (tmp_path / "counts").glob("*.json"):
            path.write_text("{", encoding="utf-8")
        fresh = CountCache()
        report = DurableCacheStore(tmp_path).restore_counts(fresh)
        assert report.loaded == 0
        assert report.rejected == 2
        # And invalidation still works (the undecodable files are
        # conservatively treated as depending on everything).
        assert DurableCacheStore(tmp_path).invalidate_relations({"Z"}) == 2
        assert store.stats()["counts"] == 0


# -- routing keys and the ring ---------------------------------------------


class TestRoutingKey:
    def test_alpha_equivalent_queries_share_a_key(self):
        left = routing_key(
            "evaluate", {"query_text": "E(x, y) & E(y, z)", "facts": "E(a,b)"}
        )
        right = routing_key(
            "evaluate", {"query_text": "E(u, v) & E(v, w)", "facts": "E(a,b)"}
        )
        assert left == right

    def test_distinct_structures_split_keys(self):
        body = {"query_text": "E(x, y)"}
        left = routing_key("evaluate", {**body, "facts": "E(a,b)"})
        right = routing_key("evaluate", {**body, "facts": "E(c,d)"})
        assert left != right

    def test_db_traffic_pins_to_name(self):
        key = routing_key("update", {"db": "orders", "insert": "E(a,b)"})
        assert key == "db:orders"
        assert routing_key("evaluate", {"db": "orders", "query_text": "E(x, y)"}) == key
        assert routing_key("db", {"name": "orders", "facts": "E(a,b)"}) == key

    def test_contain_pairs_key_on_both_sides(self):
        base = {"phi_s_text": "E(x, y)", "phi_b_text": "E(u, v) & E(v, w)"}
        assert routing_key("contain", base) == routing_key(
            "contain",
            {"phi_s_text": "E(a, b)", "phi_b_text": "E(p, q) & E(q, r)"},
        )
        flipped = {"phi_s_text": base["phi_b_text"], "phi_b_text": base["phi_s_text"]}
        assert routing_key("contain", base) != routing_key("contain", flipped)

    def test_ucq_disjunct_order_is_canonicalized(self):
        one = routing_key(
            "evaluate",
            {
                "kind": "ucq",
                "disjuncts": [
                    {"query_text": "E(x, y)"},
                    {"query_text": "U(x)"},
                ],
            },
        )
        two = routing_key(
            "evaluate",
            {
                "kind": "ucq",
                "disjuncts": [
                    {"query_text": "U(z)"},
                    {"query_text": "E(a, b)"},
                ],
            },
        )
        assert one == two

    def test_unparseable_bodies_route_deterministically(self):
        body = {"query_text": "((("}
        assert routing_key("evaluate", body) == routing_key("evaluate", body)


class TestConsistentHashRing:
    def test_assignment_is_stable_across_instances(self):
        one, two = ConsistentHashRing(4), ConsistentHashRing(4)
        keys = [f"key-{i}" for i in range(200)]
        assert [one.route(k) for k in keys] == [two.route(k) for k in keys]

    def test_candidates_cover_all_shards(self):
        ring = ConsistentHashRing(3)
        assert sorted(ring.candidates("anything")) == [0, 1, 2]

    def test_spread_is_roughly_balanced(self):
        ring = ConsistentHashRing(4, virtual_nodes=64)
        counts = [0, 0, 0, 0]
        for i in range(8000):
            counts[ring.route(f"key-{i}")] += 1
        assert min(counts) > 8000 / 4 * 0.5

    def test_single_shard_ring(self):
        ring = ConsistentHashRing(1)
        assert ring.route("anything") == 0


class TestMetricMerge:
    def test_counters_sum_and_gauges_sum(self):
        merged = merge_metric_snapshots(
            [
                {
                    "c": {"type": "counter", "value": 2},
                    "g": {"type": "gauge", "value": 1, "max": 5},
                },
                {
                    "c": {"type": "counter", "value": 3},
                    "g": {"type": "gauge", "value": 2, "max": 3},
                },
            ]
        )
        assert merged["c"] == {"type": "counter", "value": 5}
        assert merged["g"] == {"type": "gauge", "value": 3, "max": 5}

    def test_histograms_merge_bucketwise(self):
        histogram = {
            "type": "histogram",
            "count": 2,
            "total_ms": 30.0,
            "mean_ms": 15.0,
            "min_ms": 10.0,
            "max_ms": 20.0,
            "p50_ms": 10.0,
            "p95_ms": 20.0,
            "p99_ms": 20.0,
            "buckets": {"13.3352": 1, "23.7137": 1},
        }
        merged = merge_metric_snapshots([{"h": histogram}, {"h": histogram}])
        assert merged["h"]["count"] == 4
        assert merged["h"]["total_ms"] == 60.0
        assert merged["h"]["mean_ms"] == 15.0
        assert merged["h"]["buckets"] == {"13.3352": 2, "23.7137": 2}
        assert merged["h"]["p50_ms"] is not None

    def test_mismatched_types_are_dropped(self):
        merged = merge_metric_snapshots(
            [
                {"x": {"type": "counter", "value": 1}},
                {"x": {"type": "gauge", "value": 1, "max": 1}},
            ]
        )
        assert "x" not in merged


# -- live single server: /snapshot and warm restart ------------------------


@pytest.fixture()
def service_module():
    from repro.service import EvaluationServer, ServerConfig, ServiceClient

    return EvaluationServer, ServerConfig, ServiceClient


class TestSnapshotEndpoint:
    def test_snapshot_then_warm_restart(self, tmp_path, service_module):
        EvaluationServer, ServerConfig, ServiceClient = service_module
        config = ServerConfig(workers=2, snapshot_dir=str(tmp_path))
        with EvaluationServer(config) as server:
            client = ServiceClient(server.url, seed=0)
            count = client.evaluate("E(x, y) & E(y, z)", "E(a,b) E(b,c)")
            assert count == 1
            body = http_post_json(f"{server.url}/snapshot", {})
            assert body["saved"]["counts"] >= 1
            health = http_get_json(f"{server.url}/healthz")
            assert health["snapshot"]["directory"] == str(tmp_path)
            assert health["snapshot"]["files"]["counts"] >= 1

        with EvaluationServer(config) as reborn:
            # Warm restore happened before the socket opened.
            assert len(reborn.count_cache) >= 1
            client = ServiceClient(reborn.url, seed=1)
            assert client.evaluate("E(x, y) & E(y, z)", "E(a,b) E(b,c)") == 1
            metrics = client.metrics()["metrics"]
            assert metrics["shard.snapshot.loaded"]["value"] >= 1

    def test_snapshot_without_directory_is_a_400(self, service_module):
        EvaluationServer, ServerConfig, _ = service_module
        with EvaluationServer(ServerConfig(workers=1)) as server:
            request = urllib.request.Request(
                f"{server.url}/snapshot", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400

    def test_healthz_reports_queues_and_caches(self, service_module):
        EvaluationServer, ServerConfig, _ = service_module
        with EvaluationServer(ServerConfig(workers=2)) as server:
            health = http_get_json(f"{server.url}/healthz")
            assert health["queue"]["capacity"] == 64
            assert health["queue"]["depth"] >= 0
            assert len(health["workers_detail"]) == 2
            assert all(row["alive"] for row in health["workers_detail"])
            assert set(health["caches"]) == {"count", "plan", "containment"}
            assert "entries" in health["caches"]["count"]
            assert "profiles" in health["caches"]["plan"]


# -- live router: two shards, real subprocesses ----------------------------


@pytest.mark.slow
class TestShardRouterLive:
    def test_two_shard_router_end_to_end(self, tmp_path):
        config = RouterConfig(
            shards=2, workers_per_shard=2, snapshot_dir=str(tmp_path)
        )
        with ShardRouter(config) as router:
            url = router.url
            health = http_get_json(f"{url}/healthz")
            assert health["status"] == "ok"
            assert health["shards"] == 2
            assert len(health["workers"]) == 2
            assert all(row["alive"] for row in health["workers"])
            assert all("health" in row for row in health["workers"])

            # Distinct α-classes spread; α-equivalent repeats stick.
            bodies = [
                {"query_text": "E(x, y) & E(y, z)", "facts": "E(a,b) E(b,c)"},
                {"query_text": "E(u, v) & E(v, w)", "facts": "E(a,b) E(b,c)"},
                {"query_text": "U(x)", "facts": "U(a) U(b)"},
            ]
            counts = [
                http_post_json(f"{url}/evaluate", body)["count"]
                for body in bodies
            ]
            assert counts == [1, 1, 2]

            metrics = http_get_json(f"{url}/metrics")["metrics"]
            assert metrics["shard.routed"]["value"] == 3
            # The fleet served all three; the α-equivalent repeat was a
            # cache hit on whichever shard owns that class.
            assert metrics["service.requests"]["value"] == 3
            assert metrics["cache.hits"]["value"] >= 1

            traces = http_get_json(f"{url}/traces")
            assert traces["recorded"] >= 3
            assert all("shard" in t for t in traces["traces"])

            # Snapshot fans out; per-shard directories fill.
            snap = http_post_json(f"{url}/snapshot", {})
            assert snap["saved"]["counts"] >= 1
            assert (tmp_path / "shard-00").is_dir()
            assert (tmp_path / "shard-01").is_dir()

            # Kill one worker ungracefully: the router reports degraded
            # until the supervisor respawns it, then recovers.
            victim = router.workers[0]
            victim_pid = victim.pid
            import os
            import signal

            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if victim.healthy() and victim.pid != victim_pid:
                    break
                time.sleep(0.1)
            assert victim.healthy(), "worker was not respawned"
            assert victim.restarts >= 1
            # And the fleet still answers.
            body = {"query_text": "U(x)", "facts": "U(a)"}
            assert http_post_json(f"{url}/evaluate", body)["count"] == 1

    def test_router_sheds_cleanly_when_worker_down_mid_request(self, tmp_path):
        """With a 1-shard ring and the worker held down, requests get a
        retryable 503 envelope, never a hang."""
        config = RouterConfig(shards=1, workers_per_shard=1)
        with ShardRouter(config) as router:
            worker = router.workers[0]
            worker._stopping = True  # pin it down: monitor must not respawn
            import os
            import signal

            os.kill(worker.pid, signal.SIGKILL)
            time.sleep(0.3)
            with worker._lock:
                worker._url = None
            request = urllib.request.Request(
                f"{router.url}/evaluate",
                data=json.dumps(
                    {"query_text": "U(x)", "facts": "U(a)"}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 503
            envelope = json.loads(excinfo.value.read().decode("utf-8"))
            assert envelope["error"]["kind"] == "shutting_down"
