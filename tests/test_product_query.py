"""Unit tests for factorized query products."""

import pytest

from repro.errors import MaterializationError, QueryError
from repro.homomorphism import count, count_at_least
from repro.queries import QueryProduct, parse_query
from repro.relational import Schema, Structure


@pytest.fixture
def structure():
    return Structure(
        Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 0), (0, 0)]}
    )


class TestConstruction:
    def test_of_splits_components(self):
        phi = parse_query("E(x, y) & E(u, v)")
        product = QueryProduct.of(phi)
        assert len(product.factors) == 2

    def test_zero_exponent_dropped(self):
        phi = parse_query("E(x, y)")
        assert QueryProduct([(phi, 0)]).is_empty()

    def test_negative_exponent_rejected(self):
        with pytest.raises(QueryError):
            QueryProduct([(parse_query("E(x, y)"), -1)])

    def test_equal_factors_merge(self):
        phi = parse_query("E(x, y)")
        product = QueryProduct([(phi, 2), (phi, 3)])
        assert product.exponents == (5,)


class TestAlgebra:
    def test_power_scales_exponents(self):
        phi = parse_query("E(x, y)")
        assert (QueryProduct.of(phi) ** 7).exponents == (7,)

    def test_disjoint_conj_concatenates(self):
        product = QueryProduct.of(parse_query("E(x, y)")) * parse_query("E(u, u)")
        assert len(product.factors) == 2

    def test_totals(self):
        phi = parse_query("E(x, y) & E(y, z)")
        product = QueryProduct.of(phi, 5)
        assert product.total_atom_count == 10
        assert product.total_variable_count == 15

    def test_huge_exponents_stay_symbolic(self):
        product = QueryProduct.of(parse_query("E(x, y)"), 10**100)
        assert product.total_atom_count == 10**100


class TestEvaluation:
    def test_counts_match_materialization(self, structure):
        phi = parse_query("E(x, y)")
        product = QueryProduct.of(phi, 3)
        assert count(product, structure) == count(product.materialize(), structure)

    def test_definition2_for_products(self, structure):
        phi = parse_query("E(x, y)")
        product = QueryProduct.of(phi, 20)
        assert count(product, structure) == count(phi, structure) ** 20

    def test_zero_factor_short_circuits(self, structure):
        product = QueryProduct.of(parse_query("F(x, y)"), 10**50) * parse_query(
            "E(x, y)"
        )
        extended = Structure(
            Schema.from_arities({"E": 2, "F": 2}), {"E": [(0, 1)]}
        )
        assert count(product, extended) == 0


class TestCountAtLeast:
    def test_exact_on_small(self, structure):
        phi = QueryProduct.of(parse_query("E(x, y)"), 2)  # 3^2 = 9
        assert count_at_least(phi, structure, 9)
        assert not count_at_least(phi, structure, 10)

    def test_astronomical_exponent(self, structure):
        product = QueryProduct.of(parse_query("E(x, y)"), 10**100)
        # 3^(10^100) certainly clears any human-sized bound, without being built.
        assert count_at_least(product, structure, 10**500)

    def test_zero_bound(self, structure):
        assert count_at_least(QueryProduct(), structure, 0)

    def test_zero_count(self, structure):
        product = QueryProduct.of(parse_query("E(x, x) & E(y, y) & E(x, y) & E(y, x)"), 10**9)
        # Only (0,0) satisfies all four atoms with x=y=0 → value 1, 1^n = 1 < 2
        assert not count_at_least(product, structure, 2)


class TestMaterialization:
    def test_budget_enforced(self):
        product = QueryProduct.of(parse_query("E(x, y)"), 10**9)
        with pytest.raises(MaterializationError):
            product.materialize(max_atoms=100)

    def test_small_expansion(self, structure):
        product = QueryProduct.of(parse_query("E(x, y)"), 4)
        materialized = product.materialize()
        assert materialized.atom_count == 4
        assert materialized.variable_count == 8
