"""End-to-end tests for the Theorem 1 reduction (Section 4.7)."""

import pytest

from repro.core import theorem1_reduction, reduce_polynomial
from repro.core.arena import DatabaseKind
from repro.errors import ReductionError
from repro.polynomials import (
    Lemma11Instance,
    Monomial,
    always_positive,
    parity_obstruction,
    pell,
)


@pytest.fixture
def reduction(minimal_lemma11):
    return theorem1_reduction(minimal_lemma11)


class TestAssembly:
    def test_big_c_is_c_times_c1(self, reduction, minimal_lemma11):
        assert reduction.big_c == minimal_lemma11.c * reduction.zeta.c1

    def test_minimal_constants(self, reduction):
        # m=1, d=1: j^{S_1} = 3, j^{R_1} = 1, j = 3, k = 3, C1 = 27, C = 54.
        assert reduction.zeta.j == 3
        assert reduction.zeta.k == 3
        assert reduction.zeta.c1 == 27
        assert reduction.big_c == 54

    def test_phi_s_has_no_inequalities(self, reduction):
        assert reduction.phi_s.total_inequality_count == 0

    def test_phi_b_has_no_inequalities(self, reduction):
        assert reduction.phi_b.total_inequality_count == 0

    def test_size_report(self, reduction):
        report = reduction.size_report()
        assert report["C"] == 54
        assert report["phi_b_atoms"] > report["phi_s_atoms"]


class TestCorrectDatabases:
    @pytest.mark.parametrize("value", [0, 2, 3])
    def test_inequality_holds_when_lemma11_holds(self, reduction, value):
        # 2·x1 <= x1² holds for x1 = 0 and x1 >= 2.
        structure = reduction.correct_database({1: value})
        assert reduction.holds_on(structure)

    def test_violation_at_one(self, reduction):
        structure = reduction.correct_database({1: 1})
        assert not reduction.holds_on(structure)
        assert reduction.lhs(structure) > reduction.rhs(structure)

    def test_lhs_rhs_values(self, reduction):
        structure = reduction.correct_database({1: 3})
        # lhs = 54·(1·3) = 162; rhs = (3·3)·27·1 = 243.
        assert reduction.lhs(structure) == 162
        assert reduction.rhs(structure) == 243


class TestCounterexamples:
    def test_find_counterexample_minimal(self, reduction):
        witness = reduction.find_counterexample(2)
        assert witness is not None
        assert witness.is_nontrivial()
        assert reduction.classify(witness) is DatabaseKind.CORRECT

    def test_counterexample_from_bad_valuation_rejected(self, reduction):
        with pytest.raises(ReductionError):
            reduction.counterexample_from_valuation({1: 0})

    def test_unsolvable_no_grid_counterexample(self):
        _, reduction = reduce_polynomial(always_positive().polynomial)
        assert reduction.instance.find_counterexample(3) is None

    def test_solvable_full_pipeline(self):
        """pell(2) is solvable: the reduction yields a verified witness."""
        _, reduction = reduce_polynomial(pell(2).polynomial)
        witness = reduction.find_counterexample(2)
        assert witness is not None
        assert reduction.valuation_of(witness)[1] >= 1


class TestCheatingDatabases:
    """The anti-cheating layers of Sections 4.5/4.6, end to end."""

    def test_slightly_incorrect_holds(self, reduction):
        structure = reduction.correct_database({1: 1})
        # Valuation 1 violates on the correct database...
        assert not reduction.holds_on(structure)
        # ...but any extra Σ_RS atom re-establishes the inequality (ζ_b ≥ c·C₁).
        cheating = structure.with_fact("S_1", (("junk",), ("junk",)))
        assert reduction.classify(cheating) is DatabaseKind.SLIGHTLY_INCORRECT
        assert reduction.holds_on(cheating)

    def test_seriously_incorrect_holds(self, reduction):
        structure = reduction.correct_database({1: 1})
        merged = structure.relabel(
            {structure.interpret("a_1"): structure.interpret("a")}
        )
        assert reduction.classify(merged) is DatabaseKind.SERIOUSLY_INCORRECT
        assert reduction.holds_on(merged)

    def test_not_arena_holds_trivially(self, reduction):
        """A database not modelling Arena has φ_s = 0: nothing to prove."""
        from repro.relational import Structure

        constants = {c.name: 0 for c in reduction.arena.constants}
        bare = Structure(reduction.arena.d_arena.schema, constants=constants)
        assert reduction.classify(bare) is DatabaseKind.NOT_ARENA
        assert reduction.lhs(bare) == 0


class TestRicherInstance:
    def test_two_variable_instance(self, richer_lemma11):
        reduction = theorem1_reduction(richer_lemma11)
        good = reduction.correct_database({1: 2, 2: 2})
        # c·P_s = 3(2·4+2) vs x1^2·P_b = 4(3·4+4·2) = 80: holds.
        assert reduction.holds_on(good)

    def test_lemma16_equivalence_on_grid(self, richer_lemma11):
        """Correct databases violate iff their valuation violates Lemma 11."""
        reduction = theorem1_reduction(richer_lemma11)
        for valuation in richer_lemma11.valuations(2):
            structure = reduction.correct_database(valuation)
            assert reduction.holds_on(structure) == richer_lemma11.holds_for(
                valuation
            )
