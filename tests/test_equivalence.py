"""Tests for query isomorphism, bag equivalence, and cores."""

import pytest

from repro.decision import enumerate_structures
from repro.decision.equivalence import (
    are_isomorphic,
    bag_equivalent,
    core,
    find_isomorphism,
    set_equivalent,
)
from repro.homomorphism import count
from repro.queries import parse_query
from repro.relational import Schema


class TestIsomorphism:
    def test_renaming_is_isomorphic(self):
        assert are_isomorphic(
            parse_query("E(x, y) & E(y, z)"), parse_query("E(a, b) & E(b, c)")
        )

    def test_witness_mapping(self):
        mapping = find_isomorphism(parse_query("E(x, y)"), parse_query("E(u, v)"))
        assert mapping is not None
        assert {v.name for v in mapping.values()} == {"u", "v"}

    def test_different_shapes_not_isomorphic(self):
        assert not are_isomorphic(
            parse_query("E(x, y) & E(y, x)"), parse_query("E(x, y) & E(x, z)")
        )

    def test_atom_count_mismatch(self):
        assert not are_isomorphic(
            parse_query("E(x, y)"), parse_query("E(x, y) & E(u, v)")
        )

    def test_constants_must_match_verbatim(self):
        assert not are_isomorphic(parse_query("E(#a, x)"), parse_query("E(#b, x)"))
        assert are_isomorphic(parse_query("E(#a, x)"), parse_query("E(#a, y)"))

    def test_inequalities_respected(self):
        assert are_isomorphic(
            parse_query("E(x, y) & x != y"), parse_query("E(u, v) & u != v")
        )
        assert not are_isomorphic(
            parse_query("E(x, y) & x != y"), parse_query("E(u, v)")
        )

    def test_inequality_only_variables(self):
        assert are_isomorphic(
            parse_query("E(x, x) & x != z"), parse_query("E(u, u) & u != w")
        )

    def test_cycle_automorphisms_found(self):
        triangle = parse_query("E(x, y) & E(y, z) & E(z, x)")
        rotated = parse_query("E(b, c) & E(c, a) & E(a, b)")
        assert are_isomorphic(triangle, rotated)


class TestBagEquivalence:
    def test_chaudhuri_vardi_criterion(self):
        """Set-equivalent but non-isomorphic queries are NOT bag-equivalent."""
        edge = parse_query("E(x, y)")
        double = parse_query("E(x, y) & E(u, v)")
        assert set_equivalent(edge, double)
        assert not bag_equivalent(edge, double)
        # ...and indeed a database separates the counts:
        schema = Schema.from_arities({"E": 2})
        separated = any(
            count(edge, d) != count(double, d)
            for d in enumerate_structures(schema, 2)
        )
        assert separated

    def test_isomorphic_queries_agree_everywhere(self):
        left = parse_query("E(x, y) & E(y, x)")
        right = parse_query("E(p, q) & E(q, p)")
        assert bag_equivalent(left, right)
        schema = Schema.from_arities({"E": 2})
        for d in enumerate_structures(schema, 2):
            assert count(left, d) == count(right, d)


class TestCore:
    def test_redundant_atom_folds(self):
        # E(x,y) & E(x,z): z-branch folds onto the y-branch.
        q = parse_query("E(x, y) & E(x, z)")
        result = core(q)
        assert result.atom_count == 1

    def test_triangle_is_its_own_core(self):
        triangle = parse_query("E(x, y) & E(y, z) & E(z, x)")
        assert core(triangle) == triangle

    def test_path_with_loop_collapses(self):
        q = parse_query("E(x, x) & E(x, y) & E(y, z)")
        result = core(q)
        assert result == parse_query("E(x, x)")

    def test_core_preserves_set_equivalence(self):
        q = parse_query("E(x, y) & E(x, z) & E(u, v)")
        assert set_equivalent(q, core(q))

    def test_core_breaks_bag_equivalence(self):
        """The Chaudhuri–Vardi moral: minimization is unsound for bags."""
        q = parse_query("E(x, y) & E(u, v)")
        minimized = core(q)
        assert minimized.atom_count == 1
        assert not bag_equivalent(q, minimized)

    def test_inequalities_rejected(self):
        with pytest.raises(ValueError):
            core(parse_query("E(x, y) & x != y"))

    def test_core_idempotent(self):
        q = parse_query("E(x, y) & E(y, z) & E(x, w)")
        once = core(q)
        assert core(once) == once
