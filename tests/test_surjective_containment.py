"""Tests for surjective homomorphisms and set-semantics containment."""

import pytest

from repro.decision import enumerate_structures
from repro.errors import QueryError
from repro.homomorphism import (
    bag_contained_on,
    bag_counterexample_on,
    count,
    find_surjective_homomorphism,
    has_surjective_homomorphism,
    query_homomorphisms,
    set_contained,
)
from repro.queries import Variable, parse_query
from repro.relational import Schema


class TestQueryHomomorphisms:
    def test_identity_always_present(self):
        phi = parse_query("E(x, y)")
        mappings = list(query_homomorphisms(phi, phi))
        assert {Variable("x"): Variable("x"), Variable("y"): Variable("y")} in mappings

    def test_collapse_homomorphism(self):
        path = parse_query("E(x, y) & E(y, z)")
        loop = parse_query("E(u, u)")
        mappings = list(query_homomorphisms(path, loop))
        assert len(mappings) == 1
        assert set(mappings[0].values()) == {Variable("u")}

    def test_no_homomorphism(self):
        loop = parse_query("E(u, u)")
        edge = parse_query("E(x, y) & x != y")
        # Hom from loop into canonical(edge) needs a self-loop atom: none.
        assert list(query_homomorphisms(loop, edge.without_inequalities())) == []


class TestSurjective:
    def test_lemma12_shape(self):
        """π_b-style query maps onto π_s-style query."""
        pi_b_like = parse_query("S(x, x) & S(x, r2) & S(r2, r1) & R(x, y)")
        pi_s_like = parse_query("S(x, x) & S(x, r1) & R(x, y)")
        assert has_surjective_homomorphism(pi_b_like, pi_s_like)

    def test_surjection_implies_containment_everywhere(self):
        source = parse_query("E(x, y) & E(x, y')")
        target = parse_query("E(x, y)")
        mapping = find_surjective_homomorphism(source, target)
        assert mapping is not None
        schema = Schema.from_arities({"E": 2})
        for structure in enumerate_structures(schema, 2):
            assert count(target, structure) <= count(source, structure)

    def test_no_surjection_between_incomparable(self):
        triangle = parse_query("E(x, y) & E(y, z) & E(z, x)")
        two_cycle = parse_query("E(u, v) & E(v, u)")
        assert not has_surjective_homomorphism(two_cycle, triangle)


class TestSetContainment:
    def test_classical_positive(self):
        # Every 2-cycle is an edge (set semantics).
        assert set_contained(parse_query("E(x, y) & E(y, x)"), parse_query("E(u, v)"))

    def test_classical_negative(self):
        assert not set_contained(
            parse_query("E(u, v)"), parse_query("E(x, y) & E(y, x)")
        )

    def test_rejects_inequalities(self):
        with pytest.raises(QueryError):
            set_contained(parse_query("E(x, y) & x != y"), parse_query("E(u, v)"))

    def test_chaudhuri_vardi_gap(self):
        """[1]'s observation: set containment does NOT imply bag containment.

        φ_s = one edge, φ_b = two independent edges: set-equivalent
        (homomorphisms both ways), but under bag semantics φ_b(D) = φ_s(D)²
        — so φ_b exceeds φ_s as soon as the count passes 1, while on a
        single-edge database φ_s(D) = 1 = φ_b(D).  Containment of φ_b in
        φ_s fails in bags despite holding in sets.
        """
        phi_s = parse_query("E(x, y)")
        phi_b = parse_query("E(x, y) & E(u, v)")
        assert set_contained(phi_b, phi_s)  # set semantics: equivalent
        schema = Schema.from_arities({"E": 2})
        violation = bag_counterexample_on(
            phi_b, phi_s, enumerate_structures(schema, 2)
        )
        assert violation is not None


class TestBagContainedOn:
    def test_contained_sample(self):
        schema = Schema.from_arities({"E": 2})
        assert bag_contained_on(
            parse_query("E(x, y) & E(y, x)"),
            parse_query("E(x, y)"),
            enumerate_structures(schema, 2),
        )

    def test_with_multiplier(self):
        schema = Schema.from_arities({"E": 2})
        assert not bag_contained_on(
            parse_query("E(x, y)"),
            parse_query("E(x, y)"),
            enumerate_structures(schema, 2),
            multiplier=2,
        )
