"""Unit tests for monomials and polynomials."""

import pytest

from repro.errors import PolynomialError
from repro.polynomials import Monomial, Polynomial


class TestMonomial:
    def test_degree_and_variables(self):
        t = Monomial.of(1, 2, 2)
        assert t.degree == 3
        assert t.variables == {1, 2}
        assert t.exponent_of(2) == 2

    def test_evaluate_mapping_and_sequence(self):
        t = Monomial.of(1, 2)
        assert t.evaluate({1: 3, 2: 4}) == 12
        assert t.evaluate([3, 4]) == 12

    def test_constant_monomial(self):
        assert Monomial.constant().evaluate({}) == 1
        assert Monomial.constant().degree == 0

    def test_canonical_sorts(self):
        assert Monomial.of(2, 1).canonical() == Monomial.of(1, 2)

    def test_prepend(self):
        assert Monomial.of(2).prepend_variable(1, 2) == Monomial.of(1, 1, 2)

    def test_negative_value_rejected(self):
        with pytest.raises(PolynomialError):
            Monomial.of(1).evaluate({1: -1})

    def test_missing_variable_rejected(self):
        with pytest.raises(PolynomialError):
            Monomial.of(3).evaluate({1: 1})

    def test_invalid_index_rejected(self):
        with pytest.raises(PolynomialError):
            Monomial.of(0)

    def test_str(self):
        assert str(Monomial.of(1, 2, 2)) == "x1*x2^2"
        assert str(Monomial.constant()) == "1"


class TestPolynomialArithmetic:
    def test_add_and_subtract(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        p = x + y - x
        assert p == y

    def test_multiplication(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        p = (x + y) * (x - y)
        assert p == x**2 - y**2

    def test_power(self):
        x = Polynomial.variable(1)
        assert (x + 1) ** 2 == x**2 + 2 * x + 1

    def test_integer_coercion(self):
        x = Polynomial.variable(1)
        assert 2 + x - 2 == x
        assert (3 * x).coefficient(Monomial.of(1)) == 3

    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert (Polynomial.variable(1) * 0).is_zero()

    def test_evaluate(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        q = x**2 - 2 * y**2 - 1
        assert q.evaluate({1: 3, 2: 2}) == 0
        assert q.evaluate({1: 1, 2: 0}) == 0
        assert q.evaluate({1: 2, 2: 1}) == 1

    def test_degree(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        assert (x**2 * y + x).degree == 3
        assert Polynomial.constant(5).degree == 0

    def test_variables(self):
        x, z = Polynomial.variable(1), Polynomial.variable(3)
        assert (x * z + 1).variables == {1, 3}

    def test_split_signs(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        positive, negative = (x**2 - 2 * y).split_signs()
        assert positive == x**2
        assert negative == 2 * y
        assert positive - negative == x**2 - 2 * y

    def test_natural_coefficients(self):
        x = Polynomial.variable(1)
        assert (2 * x + 1).has_natural_coefficients()
        assert not (x - 1).has_natural_coefficients()

    def test_homogeneous(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        assert (x * y + x**2).is_homogeneous()
        assert not (x * y + x).is_homogeneous()

    def test_rename_variables(self):
        x = Polynomial.variable(1)
        renamed = x.rename_variables({1: 5})
        assert renamed.variables == {5}

    def test_rename_must_be_injective(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        with pytest.raises(PolynomialError):
            (x + y).rename_variables({1: 2})

    def test_str(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        assert str(x**2 - 2 * y**2 - 1) == "-1 + x1^2 - 2*x2^2"
        assert str(Polynomial.zero()) == "0"

    def test_from_terms(self):
        p = Polynomial.from_terms((3, [1, 1]), (-1, [2]))
        assert p.coefficient(Monomial.of(1, 1)) == 3
        assert p.coefficient(Monomial.of(2)) == -1

    def test_equality_hash(self):
        x = Polynomial.variable(1)
        assert x + x == 2 * x
        assert hash(x + x) == hash(2 * x)
