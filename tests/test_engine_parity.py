"""Property test: the three engines agree, and obs sees every dispatch.

For random small acyclic queries and random structures, the
backtracking, tree-decomposition, and Yannakakis engines must return the
same exact count, and the observability report must record **exactly one
engine dispatch per connected component** of the query — the dispatch
accounting the E13 engine-comparison benchmarks build on.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.homomorphism.acyclic import is_acyclic
from repro.homomorphism.engine import count
from repro.obs import observe
from repro.queries import Atom, ConjunctiveQuery, Variable
from repro.relational import Schema, Structure

SCHEMA = Schema.from_arities({"E": 2, "U": 1})
ENGINES = ("backtracking", "treewidth", "acyclic")

elements = st.integers(min_value=0, max_value=2)


@st.composite
def structures(draw) -> Structure:
    edge_facts = draw(st.sets(st.tuples(elements, elements), max_size=6))
    unary_facts = draw(st.sets(st.tuples(elements), max_size=3))
    return Structure(
        SCHEMA, {"E": edge_facts, "U": unary_facts}, domain=range(3)
    )


@st.composite
def acyclic_queries(draw) -> ConjunctiveQuery:
    """Random inequality-free CQs, filtered to the α-acyclic class.

    Small shapes (≤ 3 atoms over ≤ 4 variables) are acyclic often enough
    that the ``assume`` filter stays cheap.
    """
    variables = [Variable(f"v{i}") for i in range(draw(st.integers(1, 4)))]
    pick = st.sampled_from(variables)
    atoms = []
    for _ in range(draw(st.integers(1, 3))):
        if draw(st.booleans()):
            atoms.append(Atom("E", (draw(pick), draw(pick))))
        else:
            atoms.append(Atom("U", (draw(pick),)))
    query = ConjunctiveQuery(atoms)
    assume(is_acyclic(query))
    return query


@settings(max_examples=80, deadline=None)
@given(acyclic_queries(), structures())
def test_three_engines_agree_and_dispatch_once_per_component(query, structure):
    components = len(query.connected_components())
    values = {}
    for engine in ENGINES:
        with observe() as observation:
            values[engine] = count(query, structure, engine=engine)
        metrics = observation.report()["metrics"]
        dispatches = metrics[f"engine.dispatch.{engine}"]["value"]
        if values[engine] > 0:
            assert dispatches == components, (
                f"{engine}: {dispatches} dispatches for {components} components"
            )
        else:
            # A zero component short-circuits the factorization; later
            # components are (correctly) never dispatched.
            assert 1 <= dispatches <= components
        # No cross-engine leakage: only the chosen engine dispatched.
        for other in ENGINES:
            if other != engine:
                assert f"engine.dispatch.{other}" not in metrics
    assert values["backtracking"] == values["treewidth"] == values["acyclic"]
