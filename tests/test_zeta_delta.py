"""Tests for the anti-cheating queries ζ_b (Lemmas 17–18) and δ_b (Lemmas 19–21)."""

import pytest

from repro.core import build_arena, build_delta, build_zeta, cycle_query
from repro.core.zeta import smallest_k
from repro.errors import ReductionError
from repro.homomorphism import count
from repro.naming import HEART
from repro.relational import Schema, Structure


@pytest.fixture
def arena(richer_lemma11):
    return build_arena(richer_lemma11)


@pytest.fixture
def zeta(arena, richer_lemma11):
    return build_zeta(arena, richer_lemma11.c)


class TestSmallestK:
    def test_examples(self):
        assert smallest_k(1, 2) == 1   # 2^1 >= 2
        assert smallest_k(3, 2) == 3   # (4/3)^3 = 64/27 >= 2
        assert smallest_k(3, 7) == 7   # (4/3)^7 ≈ 7.49

    def test_definition(self):
        for j in (1, 2, 5, 9):
            for c in (2, 3, 10):
                k = smallest_k(j, c)
                assert (j + 1) ** k >= c * j**k
                if k > 0:
                    assert (j + 1) ** (k - 1) < c * j ** (k - 1)

    def test_invalid_j(self):
        with pytest.raises(ReductionError):
            smallest_k(0, 2)


class TestZeta:
    def test_j_is_max_atom_count(self, zeta, richer_lemma11):
        assert zeta.j == richer_lemma11.m + 2

    def test_lemma17_correct_value(self, arena, zeta):
        """ζ_b(D) = C₁ on every correct database."""
        for valuation in ({}, {1: 2, 2: 1}, {1: 0, 2: 5}):
            structure = arena.correct_database(valuation)
            assert count(zeta.zeta_b, structure) == zeta.c1

    def test_lemma17_at_least_one_on_arena_models(self, arena, zeta):
        structure = arena.d_arena.with_fact("E", (("j",), ("j",)))
        assert count(zeta.zeta_b, structure) >= 1

    def test_lemma18_slightly_incorrect_punished(self, arena, zeta, richer_lemma11):
        """One extra Σ_RS atom pushes ζ_b to at least c·C₁."""
        for relation in arena.rs_relations:
            structure = arena.d_arena.with_fact(relation, (("junk",), ("junk",)))
            assert count(zeta.zeta_b, structure) >= richer_lemma11.c * zeta.c1

    def test_c1_formula(self, zeta):
        expected = 1
        for atoms in zeta.atoms_per_relation.values():
            expected *= atoms**zeta.k
        assert zeta.c1 == expected

    def test_factorized_not_materialized(self, zeta):
        assert zeta.zeta_b.total_atom_count == len(zeta.atoms_per_relation) * zeta.k

    def test_invalid_c_rejected(self, arena):
        with pytest.raises(ReductionError):
            build_zeta(arena, 1)


class TestCycleQuery:
    def test_loop(self):
        query = cycle_query(1)
        assert query.atom_count == 1

    def test_cycle_counts_homomorphic_images(self):
        # Homomorphic 3-cycles in a triangle: 3 (rotations of the one cycle).
        triangle = Structure(
            Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 2), (2, 0)]}
        )
        assert count(cycle_query(3), triangle) == 3
        # Length-6 walks closing on the triangle: each start + direction...
        assert count(cycle_query(6), triangle) == 3

    def test_loop_absorbs_all_lengths(self):
        loop = Structure(Schema.from_arities({"E": 2}), {"E": [(0, 0)]})
        for length in (1, 2, 5):
            assert count(cycle_query(length), loop) == 1

    def test_invalid_length(self):
        with pytest.raises(ReductionError):
            cycle_query(0)


class TestDelta:
    @pytest.fixture
    def delta(self, arena):
        return build_delta(arena, big_c=10)

    def test_labels_omit_exactly_l(self, delta, arena):
        labels = set(delta.labels)
        assert arena.cycle_length not in labels
        assert labels == set(range(1, arena.cycle_length + 2)) - {arena.cycle_length}

    def test_lemma20_correct_database(self, arena, delta):
        """δ_b(D) = 1 on every correct database."""
        for valuation in ({}, {1: 1, 2: 3}):
            structure = arena.correct_database(valuation)
            assert count(delta.delta_b, structure) == 1

    def test_lemma19_at_least_one(self, arena, delta):
        structure = arena.d_arena.with_fact("E", (("extra",), ("extra2",)))
        assert count(delta.delta_b, structure) >= 1

    def test_lemma21_case1_heart_identified(self, arena, delta):
        """Identifying ♥ with an arena constant creates an (𝕝+1)-cycle."""
        d = arena.d_arena
        merged = d.relabel({d.interpret(HEART): d.interpret("a")})
        assert count(delta.delta_b, merged) >= 2**delta.big_c

    def test_lemma21_case2_cycle_shortened(self, arena, delta):
        """Identifying two cycle constants creates a shorter cycle."""
        d = arena.d_arena
        merged = d.relabel({d.interpret("a_1"): d.interpret("a_2")})
        assert count(delta.delta_b, merged) >= 2**delta.big_c

    def test_delta_factorized(self, delta):
        assert all(exponent == delta.big_c for exponent in delta.delta_b.exponents)

    def test_invalid_exponent(self, arena):
        with pytest.raises(ReductionError):
            build_delta(arena, 0)
