"""Unit tests for the query parser."""

import pytest

from repro.errors import ParseError
from repro.queries import Constant, Variable, parse_query, parse_term


class TestTerms:
    def test_variable(self):
        assert parse_term("x") == Variable("x")

    def test_constant(self):
        assert parse_term("#a") == Constant("a")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("x y")


class TestQueries:
    def test_single_atom(self):
        phi = parse_query("E(x, y)")
        assert phi.atom_count == 1
        assert phi.schema.arity("E") == 2

    def test_ampersand_and_comma_separators(self):
        assert parse_query("E(x, y) & U(x)") == parse_query("E(x, y), U(x)")

    def test_unicode_conjunction(self):
        assert parse_query("E(x, y) ∧ U(x)") == parse_query("E(x, y) & U(x)")

    def test_inequality(self):
        phi = parse_query("E(x, y) & x != y")
        assert phi.inequality_count == 1

    def test_unicode_inequality(self):
        assert parse_query("x ≠ y, E(x, y)") == parse_query("x != y & E(x, y)")

    def test_constants_in_atoms(self):
        phi = parse_query("E(#a, x)")
        assert Constant("a") in phi.constants

    def test_true_literal(self):
        assert parse_query("TRUE").is_empty()

    def test_high_arity(self):
        phi = parse_query("R(a, b, c, d, e)")
        assert phi.schema.arity("R") == 5

    def test_roundtrip_through_str(self):
        phi = parse_query("E(x, y) & U(#a) & x != y")
        assert parse_query(str(phi)) == phi


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "E(x",          # unterminated atom
            "E()",          # empty atom
            "E(x,)",        # dangling comma
            "x !=",         # missing right operand
            "E(x, y) &",    # dangling conjunction
            "E(x, y) U(x)", # missing separator
            "TRUE & E(x,y)",  # TRUE cannot be combined
            "@",            # bad character
            "",             # empty input
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse_query(text)
