"""Tests for the Section 2.3 constants-to-free-variables translation."""

from collections import Counter

import pytest

from repro.core import free_constants, hard_ban, soft_ban
from repro.homomorphism import count
from repro.naming import HEART, SPADE
from repro.queries import Constant, parse_query
from repro.relational import Schema, Structure


@pytest.fixture
def structure():
    return Structure(
        Schema.from_arities({"E": 2}),
        {"E": [(0, 1), (1, 0), (0, 0)]},
        constants={"a": 0, "b": 1, SPADE: 0, HEART: 1},
    )


class TestFreeConstants:
    def test_constants_become_head_variables(self):
        query = parse_query("E(#a, x) & E(x, #b)")
        freed = free_constants(query)
        assert freed.arity == 2
        assert not freed.body.constants

    def test_selective_freeing(self):
        query = parse_query("E(#a, x) & E(x, #b)")
        freed = free_constants(query, names=("a",))
        assert freed.arity == 1
        assert Constant("b") in freed.body.constants

    def test_section_2_3_observation(self, structure):
        """Boolean count with constants = multiplicity of the pinned answer.

        Reading the constants as free variables, the boolean value of the
        original query equals the freed query's multiplicity at the tuple
        of the constants' interpretations — the precise sense in which
        'φ_b contains φ_s iff φ'_b contains φ'_s'.
        """
        query = parse_query("E(#a, x) & E(x, #b)")
        freed = free_constants(query)
        pinned_answer = (structure.interpret("a"), structure.interpret("b"))
        answers = freed.answers(structure)
        assert answers[pinned_answer] == count(query, structure)

    def test_containment_transfers(self, structure):
        """If the open queries are answer-contained, the originals are
        count-contained (and vice versa at every interpretation)."""
        phi_s = parse_query("E(#a, x) & E(x, #a)")
        phi_b = parse_query("E(#a, x)")
        freed_s = free_constants(phi_s)
        freed_b = free_constants(phi_b)
        answers_s = freed_s.answers(structure)
        answers_b = freed_b.answers(structure)
        for answer, multiplicity in answers_s.items():
            assert multiplicity <= answers_b[answer]
        assert count(phi_s, structure) <= count(phi_b, structure)


class TestBans:
    def test_soft_ban_keeps_nontriviality_pair(self):
        query = parse_query("E(#spade, #a) & E(#a, #heart)")
        freed = soft_ban(query)
        names = {c.name for c in freed.body.constants}
        assert names == {SPADE, HEART}
        assert freed.arity == 1

    def test_hard_ban_frees_everything(self):
        query = parse_query("E(#spade, #a) & E(#a, #heart)")
        freed = hard_ban(query)
        assert not freed.body.constants
        assert freed.arity == 3

    def test_hard_ban_nontriviality_inequality(self):
        query = parse_query("E(#spade, #a) & E(#a, #heart)")
        freed = hard_ban(query, add_nontriviality_inequality=True)
        assert freed.body.inequality_count == 1
        # The inequality relates the freed spade and heart variables.
        ineq = freed.body.inequalities[0]
        names = {ineq.left.name, ineq.right.name}
        assert any("spade" in name for name in names)
        assert any("heart" in name for name in names)

    def test_hard_ban_inequality_enforces_nontriviality(self, structure):
        """With the ≠, answers where ♠ and ♥ coincide are filtered out."""
        query = parse_query("E(#spade, #heart)")
        strict = hard_ban(query, add_nontriviality_inequality=True)
        loose = hard_ban(query)
        strict_answers = strict.answers(structure)
        loose_answers = loose.answers(structure)
        assert sum(strict_answers.values()) < sum(loose_answers.values())
        for (s_val, h_val), _ in strict_answers.items():
            assert s_val != h_val
