"""Tests for the ``repro.qa`` differential fuzzing subsystem.

Three properties carry the whole subsystem:

1. **Determinism** — the case stream, the verdicts, and the observability
   counters are pure functions of ``(seed, max_cases)``;
2. **Sensitivity** — an injected engine bug is *caught* by an oracle and
   *shrunk* to a 1-minimal counterexample;
3. **Persistence** — corpus entries round-trip through JSON and replay
   through the same oracles.
"""

from __future__ import annotations

import json

import pytest

from repro.homomorphism import engine as hom_engine
from repro.obs import observe
from repro.qa import (
    all_oracles,
    case_from_entry,
    entry_from_case,
    generate_cases,
    get_oracle,
    load_corpus,
    oracle_names,
    replay_corpus,
    run_fuzz,
    shrink_case,
    write_finding,
)
from repro.qa.generators import case_at
from repro.qa.shrink import _case_reductions


class TestOracleRegistry:
    def test_at_least_six_oracles_registered(self):
        assert len(all_oracles()) >= 6

    def test_expected_oracles_present(self):
        names = set(oracle_names())
        assert {
            "cross_engine",
            "batch_parity",
            "count_at_least",
            "multiplicativity",
            "invariance",
            "ucq_linearity",
            "gadget_equality",
        } <= names

    def test_unknown_oracle_rejected(self):
        with pytest.raises(KeyError, match="unknown oracle"):
            get_oracle("nope")

    def test_kind_routing(self):
        gadget_oracle = get_oracle("gadget_equality")
        cq_case = case_at(0, seed=0)
        assert cq_case.kind == "cq"
        assert not gadget_oracle.applies(cq_case)
        assert get_oracle("cross_engine").applies(cq_case)


class TestDeterminism:
    def test_same_seed_same_case_sequence(self):
        first = [case.describe() for case in generate_cases(60, seed=7)]
        second = [case.describe() for case in generate_cases(60, seed=7)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [case.describe() for case in generate_cases(30, seed=1)]
        second = [case.describe() for case in generate_cases(30, seed=2)]
        assert first != second

    def test_case_at_is_random_access(self):
        stream = list(generate_cases(40, seed=5))
        assert case_at(17, seed=5).describe() == stream[17].describe()

    def test_all_kinds_appear(self):
        kinds = {case.kind for case in generate_cases(30, seed=0)}
        assert kinds == {"cq", "ucq", "gadget", "mutation"}

    def test_run_fuzz_counters_reproducible(self):
        def counters():
            with observe() as obs:
                report = run_fuzz(max_cases=150, seed=0)
            assert report.ok, report.describe()
            return {
                name: payload["value"]
                for name, payload in obs.report()["metrics"].items()
                if payload.get("type") == "counter"
            }

        first = counters()
        second = counters()
        assert first == second
        assert first["qa.cases"] == 150
        assert first["qa.checks"] > 150

    def test_all_oracles_exercised_at_2000_cases(self):
        report = run_fuzz(max_cases=2000, seed=0)
        assert report.ok, report.describe()
        assert report.cases == 2000
        assert len(report.per_oracle) >= 6
        assert all(count > 0 for count in report.per_oracle.values()), (
            report.per_oracle
        )


def _buggy_treewidth(real):
    """An off-by-one 'prune' bug: 3-atom components count one too many."""

    def counter(component, structure):
        value = real(component, structure)
        if component.atom_count >= 3:
            return value + 1
        return value

    return counter


class TestInjectedBugDemo:
    """The acceptance demo: a mutated engine is caught and 1-minimized."""

    @pytest.fixture
    def broken_treewidth(self, monkeypatch):
        real = hom_engine._ENGINES["treewidth"]
        monkeypatch.setitem(
            hom_engine._ENGINES, "treewidth", _buggy_treewidth(real)
        )

    def test_bug_is_caught_and_shrunk_to_one_minimal(
        self, broken_treewidth, tmp_path
    ):
        report = run_fuzz(
            max_cases=60,
            seed=0,
            oracles=["cross_engine"],
            corpus_dir=tmp_path / "corpus",
        )
        assert report.findings, "injected engine bug was not caught"
        finding = report.findings[0]
        assert finding.oracle == "cross_engine"
        assert finding.shrink_steps > 0
        minimized = finding.minimized
        # The bug fires exactly on >= 3-atom components, so the 1-minimal
        # counterexample is a 3-atom query — not the 5-7 atom original.
        assert minimized.query.atom_count == 3
        assert minimized.query.atom_count <= finding.case.query.atom_count
        # 1-minimality: no single further reduction still fails.
        oracle = get_oracle("cross_engine")
        for candidate in _case_reductions(minimized):
            assert oracle.judge(candidate).ok, (
                f"not 1-minimal: {candidate.describe()} still fails"
            )
        # The minimized finding was persisted for replay.
        assert finding.corpus_path is not None
        assert finding.corpus_path.exists()

    def test_replay_fails_while_bug_present_then_passes(
        self, monkeypatch, tmp_path
    ):
        corpus = tmp_path / "corpus"
        real = hom_engine._ENGINES["treewidth"]
        monkeypatch.setitem(
            hom_engine._ENGINES, "treewidth", _buggy_treewidth(real)
        )
        report = run_fuzz(
            max_cases=60, seed=0, oracles=["cross_engine"], corpus_dir=corpus
        )
        assert report.findings
        still_failing = replay_corpus(corpus)
        assert still_failing, "minimized finding should fail while bug persists"
        # 'Fix' the bug: replay must go green — the finding is now a
        # permanent regression test.
        monkeypatch.setitem(hom_engine._ENGINES, "treewidth", real)
        assert replay_corpus(corpus) == []


class TestShrinker:
    def test_shrink_is_noop_on_gadget_cases(self):
        case = case_at(10, seed=0)
        assert case.kind == "gadget"
        minimized, steps = shrink_case(case, lambda c: True)
        assert minimized == case
        assert steps == 0

    def test_shrink_respects_predicate(self):
        case = next(c for c in generate_cases(30, seed=0) if c.kind == "cq")
        # Predicate: query still mentions relation E.
        predicate = lambda c: any(  # noqa: E731
            atom.relation == "E" for atom in c.query.atoms
        )
        assert predicate(case) or True  # some cases may lack E; find one
        cases = [
            c
            for c in generate_cases(50, seed=0)
            if c.kind == "cq" and predicate(c)
        ]
        case = cases[0]
        minimized, steps = shrink_case(case, predicate)
        assert predicate(minimized)
        assert steps > 0
        assert minimized.query.atom_count == 1
        assert minimized.structure.fact_count() == 0

    def test_shrink_step_budget_respected(self):
        case = next(c for c in generate_cases(30, seed=0) if c.kind == "cq")
        _, steps = shrink_case(case, lambda c: True, max_steps=5)
        assert steps <= 5


class TestCorpus:
    def test_entry_round_trip_all_kinds(self):
        for case in generate_cases(30, seed=0):
            entry = entry_from_case(case, oracle_name="cross_engine", note="x")
            clone = case_from_entry(json.loads(json.dumps(entry)))
            assert clone.kind == case.kind
            if case.kind == "cq":
                assert clone.query == case.query
                assert clone.structure == case.structure
            elif case.kind == "ucq":
                assert clone.disjuncts == case.disjuncts
            else:
                assert clone.gadget_c == case.gadget_c

    def test_write_finding_is_content_addressed(self, tmp_path):
        case = next(c for c in generate_cases(5, seed=0) if c.kind == "cq")
        first = write_finding(tmp_path, case, "cross_engine")
        second = write_finding(tmp_path, case, "cross_engine")
        assert first == second
        assert len(list(load_corpus(tmp_path))) == 1

    def test_load_corpus_missing_directory_is_empty(self, tmp_path):
        assert list(load_corpus(tmp_path / "nope")) == []

    def test_malformed_entry_raises(self, tmp_path):
        from repro.qa.corpus import CorpusError

        (tmp_path / "bad.json").write_text('{"kind": "wat"}')
        with pytest.raises(CorpusError):
            list(load_corpus(tmp_path))


class TestBudgets:
    def test_max_cases_budget(self):
        report = run_fuzz(max_cases=25, seed=3)
        assert report.cases == 25

    def test_time_budget_stops(self):
        report = run_fuzz(budget_seconds=0.0, seed=0)
        assert report.cases == 0

    def test_oracle_subset_selection(self):
        report = run_fuzz(max_cases=40, seed=0, oracles=["gadget_equality"])
        assert set(report.per_oracle) == {"gadget_equality"}
        assert report.checks == report.per_oracle["gadget_equality"]


class TestCompiledArm:
    """The ``cross_engine`` oracle really exercises the compiled engine."""

    def test_fuzz_run_exercises_compiled_engine(self):
        with observe() as obs:
            report = run_fuzz(max_cases=60, seed=0, oracles=["cross_engine"])
        assert report.ok, report.describe()
        metrics = obs.report()["metrics"]
        # Every cq case routes through the compiled arm (it is total), so
        # the engine's call counter must have moved — and at least some
        # cases must have actually compiled rather than fallen back.
        assert metrics["compiled.calls"]["value"] > 0
        assert (
            metrics["compiled.calls"]["value"]
            > metrics["compiled.fallbacks"]["value"]
        )

    def test_injected_compiled_bug_is_caught(self, monkeypatch):
        real = hom_engine._ENGINES["compiled"]

        def buggy(component, structure):
            value = real(component, structure)
            return value + 1 if component.atom_count >= 2 else value

        monkeypatch.setitem(hom_engine._ENGINES, "compiled", buggy)
        report = run_fuzz(
            max_cases=60, seed=0, oracles=["cross_engine"], shrink=False
        )
        assert report.findings, "injected compiled-engine bug was not caught"
        assert any(
            "compiled" in finding.result.details for finding in report.findings
        )
