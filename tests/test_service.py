"""The evaluation service: protocol, admission, coalescing, deadlines.

Covers the ``repro.service`` subsystem end to end against a real
in-process :class:`EvaluationServer` (ephemeral port, real HTTP):

* the versioned error envelope — shape, kind→status mapping, and that
  malformed bodies / unknown endpoints / wrong methods come back as
  structured JSON rather than bare tracebacks;
* admission control — a full queue sheds with 429 + ``Retry-After`` and
  never hangs a request;
* single-flight coalescing — N concurrent α-equivalent requests cost one
  evaluation and fan out bit-identical results;
* per-request deadlines — a too-slow evaluation answers 504 cleanly and
  later requests still get correct (uncorrupted) counts;
* graceful shutdown — in-flight work completes during drain;
* the retrying client — backoff on 429/connection errors, honoring
  ``Retry-After``.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.request

import pytest

from repro.errors import BagCQError
from repro.homomorphism import count
from repro.queries import parse_query
from repro.relational import Schema, Structure
from repro.service import (
    DeadlineExceeded,
    EvaluationServer,
    RemoteError,
    ServerConfig,
    ServiceClient,
    ServiceProtocolError,
    ServiceUnavailable,
    error_envelope,
    error_from_exception,
    status_for_kind,
)
from repro.service import protocol
from repro.workloads import cycle_query


def _random_graph(n: int = 13, seed: int = 0) -> Structure:
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(4 * n)}
    return Structure(Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n))


SLOW_QUERY = cycle_query(6)  # ~tens of ms under backtracking on GRAPH
GRAPH = _random_graph()


@pytest.fixture(scope="module")
def server():
    with EvaluationServer(ServerConfig(workers=2, queue_depth=16)) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, seed=0)


class TestProtocol:
    def test_envelope_shape(self):
        envelope = error_envelope("overloaded", "queue full", retry_after=0.5)
        assert envelope == {
            "protocol_version": 1,
            "error": {
                "kind": "overloaded",
                "message": "queue full",
                "retry_after": 0.5,
            },
        }

    def test_status_mapping(self):
        assert status_for_kind("overloaded") == 429
        assert status_for_kind("deadline_exceeded") == 504
        assert status_for_kind("bad_request") == 400
        assert status_for_kind("not_found") == 404
        assert status_for_kind("method_not_allowed") == 405
        assert status_for_kind("shutting_down") == 503
        assert status_for_kind("internal") == 500
        # Library errors (any other kind) are the request's fault.
        assert status_for_kind("EvaluationError") == 422

    def test_library_error_travels_by_class_name(self):
        class SomeLibError(BagCQError):
            pass

        envelope = error_from_exception(SomeLibError("boom"))
        assert envelope["error"]["kind"] == "SomeLibError"
        assert envelope["error"]["message"] == "boom"

    def test_bad_request_error_maps_to_bad_request_kind(self):
        envelope = error_from_exception(protocol.BadRequestError("missing"))
        assert envelope["error"]["kind"] == "bad_request"

    def test_non_library_error_is_internal(self):
        envelope = error_from_exception(RuntimeError("oops"))
        assert envelope["error"]["kind"] == "internal"

    def test_parse_envelope_tolerates_garbage(self):
        kind, message, retry_after = protocol.parse_error_envelope("<html>")
        assert kind == "internal"
        assert retry_after is None

    def test_request_key_alpha_equivalence(self):
        left = parse_query("E(x, y) & E(y, z)")
        right = parse_query("E(a, b) & E(b, c)")
        other = parse_query("E(x, y) & E(y, x)")
        key = lambda q: protocol.request_key(  # noqa: E731
            "evaluate", engine="auto", query=q, structure=GRAPH
        )
        assert key(left) == key(right)
        assert key(left) != key(other)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["coalesce"] is True
        assert "count_cache" in health

    def test_metrics_stable_json(self, server, client):
        payload = client.metrics()
        assert payload["schema_version"] == 1
        metrics = payload["metrics"]
        for name in (
            "service.requests",
            "service.admitted",
            "service.coalesced",
            "service.shed",
            "service.deadline_exceeded",
        ):
            assert metrics[name]["type"] == "counter"
        # Stable: the endpoint's body is key-sorted JSON.
        raw = urllib.request.urlopen(f"{server.url}/metrics").read().decode()
        assert raw == json.dumps(json.loads(raw), indent=2, sort_keys=True)

    def test_evaluate_matches_local(self, client):
        query = parse_query("E(x, y) & E(y, x)")
        assert client.evaluate(query, GRAPH) == count(query, GRAPH)

    def test_evaluate_text_shorthand(self, client):
        assert (
            client.evaluate("E(x,y) & E(y,x)", "E(a,b) E(b,a) E(a,a)") == 3
        )

    def test_evaluate_ucq(self, client):
        assert (
            client.evaluate_ucq(
                [("E(x,y)", 2), ("E(x,x)", 1)], "E(a,b) E(a,a)"
            )
            == 5
        )

    def test_explain_is_plan_to_dict(self, client):
        from repro.planner import PlanCache, plan

        query = parse_query("E(x, y) & E(y, z)")
        remote = client.explain(query)["plan"]
        local = plan(query, query.canonical_structure(), cache=PlanCache())
        assert remote == json.loads(json.dumps(local.to_dict()))

    def test_decide_runs(self, client):
        verdict = client.decide(
            "E(x,y) & E(y,x)", "E(x,y)", count=10, seed=3
        )
        assert verdict["verdict"] in ("counterexample", "exhausted")
        assert verdict["checked"] <= 10

    def test_warm_cache_shared_across_requests(self, server):
        fresh = ServiceClient(server.url)
        query = parse_query("E(u, v) & E(v, w) & E(w, u)")
        before = server.count_cache.stats()["hits"]
        first = fresh.evaluate(query, GRAPH, engine="backtracking")
        second = fresh.evaluate(query, GRAPH, engine="backtracking")
        assert first == second
        assert server.count_cache.stats()["hits"] > before


class TestErrorEnvelope:
    def test_unknown_endpoint_is_enveloped(self, server):
        request = urllib.request.Request(
            f"{server.url}/nonsense", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["error"]["kind"] == "not_found"
        assert body["protocol_version"] == 1

    def test_malformed_body_is_enveloped(self, server):
        request = urllib.request.Request(
            f"{server.url}/evaluate",
            data=b"{not json",
            method="POST",
            headers={"Content-Length": "9"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["kind"] == "bad_request"

    def test_wrong_method_is_enveloped(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/evaluate")
        assert excinfo.value.code == 405
        body = json.loads(excinfo.value.read())
        assert body["error"]["kind"] == "method_not_allowed"

    def test_missing_fields_raise_protocol_error(self, client):
        with pytest.raises(ServiceProtocolError) as excinfo:
            client._post("evaluate", {"kind": "cq"})
        assert excinfo.value.kind == "bad_request"
        assert excinfo.value.status == 400

    def test_library_error_kind_is_class_name(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.evaluate("E(x,y)", "E(a,b)", engine="warpdrive")
        assert excinfo.value.kind == "EvaluationError"
        assert excinfo.value.status == 422

    def test_unknown_evaluate_kind(self, client):
        with pytest.raises(ServiceProtocolError) as excinfo:
            client._post(
                "evaluate",
                {"kind": "sql", "query_text": "E(x,y)", "facts": "E(a,b)"},
            )
        assert excinfo.value.kind == "bad_request"


class TestCoalescing:
    def test_identical_requests_single_flight(self):
        config = ServerConfig(workers=2, queue_depth=32)
        with EvaluationServer(config) as server:
            results: list[int] = []
            barrier = threading.Barrier(8)

            def fire():
                barrier.wait()
                results.append(
                    ServiceClient(server.url).evaluate(
                        SLOW_QUERY, GRAPH, engine="backtracking", cache=False
                    )
                )

            threads = [threading.Thread(target=fire) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = ServiceClient(server.url).metrics()["metrics"]
            assert len(set(results)) == 1
            assert results[0] == count(SLOW_QUERY, GRAPH)
            coalesced = metrics["service.coalesced"]["value"]
            admitted = metrics["service.admitted"]["value"]
            assert coalesced >= 1
            assert admitted + coalesced == 8

    def test_alpha_equivalent_requests_coalesce(self):
        """Renamed copies of a query share a flight — the cache-key discipline."""
        with EvaluationServer(ServerConfig(workers=1, queue_depth=32)) as server:
            renamed = [
                cycle_query(6, prefix=f"v{index}_") for index in range(6)
            ]
            results: list[int] = []
            barrier = threading.Barrier(6)

            def fire(query):
                barrier.wait()
                results.append(
                    ServiceClient(server.url).evaluate(
                        query, GRAPH, engine="backtracking", cache=False
                    )
                )

            threads = [
                threading.Thread(target=fire, args=(query,)) for query in renamed
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(results)) == 1
            metrics = ServiceClient(server.url).metrics()["metrics"]
            assert metrics["service.coalesced"]["value"] >= 1

    def test_coalescing_can_be_disabled(self):
        config = ServerConfig(workers=2, queue_depth=32, coalesce=False)
        with EvaluationServer(config) as server:
            barrier = threading.Barrier(4)
            results: list[int] = []

            def fire():
                barrier.wait()
                results.append(
                    ServiceClient(server.url).evaluate(
                        SLOW_QUERY, GRAPH, engine="backtracking", cache=False
                    )
                )

            threads = [threading.Thread(target=fire) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = ServiceClient(server.url).metrics()["metrics"]
            assert metrics["service.coalesced"]["value"] == 0
            assert metrics["service.admitted"]["value"] == 4
            assert len(set(results)) == 1


class TestAdmissionControl:
    def test_full_queue_sheds_structured_429(self):
        config = ServerConfig(workers=1, queue_depth=2, coalesce=False)
        with EvaluationServer(config) as server:
            outcomes: list[tuple[str, object]] = []
            barrier = threading.Barrier(10)

            def fire():
                client = ServiceClient(server.url, retries=0)
                barrier.wait()
                try:
                    value = client.evaluate(
                        SLOW_QUERY, GRAPH, engine="backtracking", cache=False
                    )
                    outcomes.append(("ok", value))
                except ServiceUnavailable as error:
                    outcomes.append(("shed", error))

            threads = [threading.Thread(target=fire) for _ in range(10)]
            for thread in threads:
                thread.start()
            for thread in threads:
                # Bounded join: a hung request would trip the assert below.
                thread.join(timeout=60)
            assert len(outcomes) == 10, "no request may hang"
            shed = [error for tag, error in outcomes if tag == "shed"]
            completed = [value for tag, value in outcomes if tag == "ok"]
            assert shed, "queue depth 2 with 10 concurrent requests must shed"
            assert completed, "admitted requests must still complete"
            expected = count(SLOW_QUERY, GRAPH)
            assert all(value == expected for value in completed)
            for error in shed:
                assert error.kind == "overloaded"
                assert error.status == 429
                assert error.retry_after is not None
            metrics = ServiceClient(server.url).metrics()["metrics"]
            assert metrics["service.shed"]["value"] == len(shed)

    def test_retrying_client_eventually_succeeds_after_shed(self):
        config = ServerConfig(
            workers=1, queue_depth=1, coalesce=False, retry_after_s=0.01
        )
        with EvaluationServer(config) as server:
            barrier = threading.Barrier(6)
            values: list[int] = []

            def fire():
                client = ServiceClient(server.url, retries=8, seed=7)
                barrier.wait()
                values.append(
                    client.evaluate(
                        SLOW_QUERY, GRAPH, engine="backtracking", cache=False
                    )
                )

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert values == [count(SLOW_QUERY, GRAPH)] * 6


class TestDeadlines:
    def test_deadline_returns_504_and_does_not_poison_cache(self):
        with EvaluationServer(ServerConfig(workers=1, queue_depth=8)) as server:
            client = ServiceClient(server.url)
            heavy = cycle_query(7)
            with pytest.raises(DeadlineExceeded) as excinfo:
                client.evaluate(
                    heavy, GRAPH, engine="backtracking", deadline_ms=1
                )
            assert excinfo.value.kind == "deadline_exceeded"
            assert excinfo.value.status == 504
            # The shared cache still serves *correct* counts afterwards.
            value = client.evaluate(heavy, GRAPH, engine="backtracking")
            assert value == count(heavy, GRAPH)
            metrics = client.metrics()["metrics"]
            assert metrics["service.deadline_exceeded"]["value"] >= 1

    def test_expired_queued_work_is_skipped(self):
        config = ServerConfig(workers=1, queue_depth=8, coalesce=False)
        with EvaluationServer(config) as server:
            barrier = threading.Barrier(4)
            failures = 0

            def fire():
                nonlocal failures
                client = ServiceClient(server.url, retries=0)
                barrier.wait()
                try:
                    client.evaluate(
                        cycle_query(7),
                        GRAPH,
                        engine="backtracking",
                        deadline_ms=25,
                        cache=False,
                    )
                except DeadlineExceeded:
                    pass

            threads = [threading.Thread(target=fire) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                metrics = ServiceClient(server.url).metrics()["metrics"]
                if (
                    metrics["service.deadline_exceeded"]["value"] >= 1
                    and metrics["service.inflight"]["value"] == 0
                ):
                    break
                time.sleep(0.05)
            assert metrics["service.deadline_exceeded"]["value"] >= 1


class TestGracefulShutdown:
    def test_inflight_work_completes_during_drain(self):
        server = EvaluationServer(
            ServerConfig(workers=1, queue_depth=8)
        ).start()
        result: list[int] = []

        def fire():
            result.append(
                ServiceClient(server.url).evaluate(
                    SLOW_QUERY, GRAPH, engine="backtracking", cache=False
                )
            )

        thread = threading.Thread(target=fire)
        thread.start()
        time.sleep(0.005)  # let the request reach the queue
        server.close()  # drains: the in-flight evaluation must finish
        thread.join(timeout=60)
        assert result == [count(SLOW_QUERY, GRAPH)]

    def test_new_requests_rejected_while_draining(self):
        server = EvaluationServer(ServerConfig(workers=1)).start()
        server._draining = True
        with pytest.raises(ServiceUnavailable) as excinfo:
            ServiceClient(server.url, retries=0).evaluate(
                "E(x,y)", "E(a,b)"
            )
        assert excinfo.value.kind == "shutting_down"
        assert excinfo.value.status == 503
        server._draining = False
        server.close()

    def test_close_is_idempotent(self):
        server = EvaluationServer(ServerConfig(workers=1)).start()
        server.close()
        server.close()


class TestClientRetry:
    def test_retries_honor_retry_after_hint(self):
        """A stub server 429s twice with Retry-After, then succeeds."""
        from http.server import BaseHTTPRequestHandler, HTTPServer

        attempts: list[float] = []

        class Stub(BaseHTTPRequestHandler):
            def do_POST(self):
                attempts.append(time.monotonic())
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                if len(attempts) <= 2:
                    body = json.dumps(
                        error_envelope("overloaded", "busy", retry_after=0.05)
                    ).encode()
                    self.send_response(429)
                    self.send_header("Retry-After", "0.05")
                else:
                    body = json.dumps({"count": 41}).encode()
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Stub)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}", retries=4, seed=0)
            assert client.evaluate("E(x,y)", "E(a,b)") == 41
            assert len(attempts) == 3
            # Backoff respected the server's 50 ms hint on both retries.
            assert attempts[1] - attempts[0] >= 0.04
            assert attempts[2] - attempts[1] >= 0.04
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_unreachable_raises_service_unavailable(self):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=1, backoff_s=0.001, seed=0
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.healthz()
        assert excinfo.value.kind == "unreachable"

    def test_zero_retries_fail_fast(self):
        client = ServiceClient("http://127.0.0.1:1", retries=0, seed=0)
        start = time.monotonic()
        with pytest.raises(ServiceUnavailable):
            client.healthz()
        assert time.monotonic() - start < 5.0
