"""Tests for π_s/π_b (Section 4.3), Lemma 12, and Lemma 15 (Appendix A)."""

import pytest

from repro.core import (
    build_arena,
    build_pi_b,
    build_pi_s,
    lemma12_homomorphism,
)
from repro.core.pi import CENTER
from repro.decision import random_structures
from repro.homomorphism import count, is_homomorphism
from repro.polynomials import Lemma11Instance, Monomial
from repro.queries import Variable


class TestShape:
    def test_pi_s_atom_count(self, richer_lemma11):
        pi_s = build_pi_s(richer_lemma11)
        # Per monomial: 1 loop + (c_s,m − 1) ray edges; plus 2 atoms per degree.
        expected = sum(
            1 + (c - 1) for c in richer_lemma11.s_coefficients
        ) + 2 * richer_lemma11.d
        assert pi_s.atom_count == expected

    def test_pi_b_has_extra_r1_rays(self, richer_lemma11):
        pi_b = build_pi_b(richer_lemma11)
        r1_atoms = [atom for atom in pi_b.atoms if atom.relation == "R_1"]
        # d valuation rays via R_1 plus d extra primed rays... R_1 appears
        # once among the valuation rays (d=2: R_1, R_2) and twice primed.
        assert len(r1_atoms) == 1 + richer_lemma11.d

    def test_coefficient_one_ray_is_just_loop(self, minimal_lemma11):
        pi_s = build_pi_s(minimal_lemma11)
        s_atoms = [atom for atom in pi_s.atoms if atom.relation == "S_1"]
        assert len(s_atoms) == 1
        assert s_atoms[0].terms == (CENTER, CENTER)

    def test_pi_queries_are_connected(self, richer_lemma11):
        assert build_pi_s(richer_lemma11).is_connected()
        assert build_pi_b(richer_lemma11).is_connected()

    def test_no_inequalities(self, richer_lemma11):
        assert build_pi_s(richer_lemma11).inequality_count == 0
        assert build_pi_b(richer_lemma11).inequality_count == 0


class TestLemma12:
    def test_mapping_is_onto_homomorphism(self, richer_lemma11):
        """The explicit h: Var(π_b) → Var(π_s) is a hom and is onto."""
        pi_s = build_pi_s(richer_lemma11)
        pi_b = build_pi_b(richer_lemma11)
        mapping = lemma12_homomorphism(richer_lemma11)
        canonical = pi_s.canonical_structure()
        assert is_homomorphism(dict(mapping), pi_b, canonical)
        image = {term for term in mapping.values() if isinstance(term, Variable)}
        assert pi_s.variables <= image

    @pytest.mark.parametrize("seed", range(8))
    def test_pi_s_below_pi_b_on_random_structures(self, richer_lemma11, seed):
        """Lemma 12's conclusion, checked by exact counting."""
        pi_s = build_pi_s(richer_lemma11)
        pi_b = build_pi_b(richer_lemma11)
        schema = pi_b.schema
        for structure in random_structures(
            schema, domain_size=3, count=6, density=0.4, seed=seed
        ):
            assert count(pi_s, structure) <= count(pi_b, structure)


class TestLemma15:
    @pytest.mark.parametrize(
        "valuation",
        [{1: 0, 2: 0}, {1: 1, 2: 0}, {1: 1, 2: 2}, {1: 3, 2: 1}, {1: 2, 2: 3}],
        ids=str,
    )
    def test_exact_identities_on_correct_databases(self, richer_lemma11, valuation):
        """π_s(D) = P_s(Ξ_D) and π_b(D) = Ξ_D(x₁)^d · P_b(Ξ_D)."""
        arena = build_arena(richer_lemma11)
        structure = arena.correct_database(valuation)
        pi_s = build_pi_s(richer_lemma11)
        pi_b = build_pi_b(richer_lemma11)
        assert count(pi_s, structure) == richer_lemma11.p_s.evaluate(valuation)
        expected_b = valuation[1] ** richer_lemma11.d * richer_lemma11.p_b.evaluate(
            valuation
        )
        assert count(pi_b, structure) == expected_b

    def test_identity_with_unit_coefficients(self, minimal_lemma11):
        arena = build_arena(minimal_lemma11)
        structure = arena.correct_database({1: 5})
        assert count(build_pi_s(minimal_lemma11), structure) == 5
        assert count(build_pi_b(minimal_lemma11), structure) == 25

    def test_large_coefficients(self):
        instance = Lemma11Instance(
            c=2,
            monomials=(Monomial.of(1),),
            s_coefficients=(7,),
            b_coefficients=(30,),
        )
        arena = build_arena(instance)
        structure = arena.correct_database({1: 4})
        assert count(build_pi_s(instance), structure) == 7 * 4
        assert count(build_pi_b(instance), structure) == 4 * 30 * 4
