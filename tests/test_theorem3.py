"""End-to-end tests for the Theorem 3 reduction (Section 3).

These materialize the α gadget for the minimal instance's ℂ = 54, i.e. a
relation of arity 107 — the counting engine's high-arity path is exercised
for real.  Marked slow-ish but kept in the default suite: the whole class
runs in well under a minute.
"""

import pytest

from repro.core import theorem3_reduction
from repro.errors import ReductionError
from repro.relational import disjoint_union


@pytest.fixture(scope="module")
def reduction(request):
    from repro.polynomials import Lemma11Instance, Monomial

    instance = Lemma11Instance(
        c=2,
        monomials=(Monomial.of(1),),
        s_coefficients=(1,),
        b_coefficients=(1,),
    )
    return theorem3_reduction(instance)


class TestShape:
    def test_inequality_budget_is_zero_one(self, reduction):
        """The paper's headline: ψ_s none, ψ_b exactly one inequality."""
        assert reduction.inequality_counts == (0, 1)

    def test_gadget_multiplies_by_big_c(self, reduction):
        assert reduction.gadget.ratio == reduction.theorem1.big_c

    def test_gadget_equality_witness(self, reduction):
        assert reduction.gadget.verify_equality()

    def test_arity_budget_enforced(self, richer_lemma11):
        with pytest.raises(ReductionError):
            theorem3_reduction(richer_lemma11, arity_budget=10)


class TestEquivalence:
    def test_counterexample_transfers(self, reduction):
        """(i) ⇒ (ii): a Theorem 1 violation becomes a ψ_s > ψ_b violation."""
        witness = reduction.find_counterexample(1)
        assert witness is not None
        assert witness.is_nontrivial()
        assert reduction.lhs(witness) > reduction.rhs(witness)

    def test_no_violation_on_good_databases(self, reduction):
        """¬(i) ⇒ ¬(ii) on a database where the Lemma 11 inequality holds."""
        good = disjoint_union(
            reduction.theorem1.correct_database({1: 3}),
            reduction.gadget.witness,
        )
        assert reduction.holds_on(good)

    def test_gadget_witness_alone_satisfies(self, reduction):
        """On the gadget witness (arena constants pinned but Arena not
        modelled) ψ_s counts zero: the φ_s factor vanishes."""
        witness = reduction.gadget.witness.with_schema(
            reduction.gadget.witness.schema.union(
                reduction.theorem1.arena.d_arena.schema
            )
        )
        for constant in reduction.theorem1.arena.constants:
            if not witness.interprets(constant.name):
                witness = witness.with_constant(constant.name, constant.name)
        assert reduction.lhs(witness) == 0
