"""Tests for the decision package: search, bounded verification, certificates."""

import pytest

from repro.decision import (
    Verdict,
    amplified,
    decide_bag_containment,
    enumerate_structures,
    find_counterexample,
    random_structures,
    verify_bounded,
)
from repro.errors import SearchBudgetExceeded
from repro.naming import HEART, SPADE
from repro.queries import parse_query
from repro.relational import Schema, Structure


@pytest.fixture
def edge_schema():
    return Schema.from_arities({"E": 2})


class TestEnumeration:
    def test_counts_all_structures(self, edge_schema):
        # 1 element, binary relation: 2^1 = 2 structures.
        assert sum(1 for _ in enumerate_structures(edge_schema, 1)) == 2
        # 2 elements: 2^4 = 16 structures.
        assert sum(1 for _ in enumerate_structures(edge_schema, 2)) == 16

    def test_nontrivial_constants(self, edge_schema):
        stream = enumerate_structures(edge_schema, 2, nontrivial_constants=True)
        assert all(s.is_nontrivial() for s in stream)

    def test_nontrivial_needs_two_elements(self, edge_schema):
        with pytest.raises(ValueError):
            next(enumerate_structures(edge_schema, 1, nontrivial_constants=True))

    def test_max_facts_cap(self, edge_schema):
        capped = sum(
            1 for _ in enumerate_structures(edge_schema, 2, max_facts_per_relation=1)
        )
        assert capped == 1 + 4  # empty + four singletons

    def test_pinned_constants(self, edge_schema):
        stream = enumerate_structures(edge_schema, 2, constants={"a": 1})
        assert all(s.interpret("a") == 1 for s in stream)


class TestRandomStructures:
    def test_reproducible(self, edge_schema):
        one = list(random_structures(edge_schema, 3, count=5, seed=42))
        two = list(random_structures(edge_schema, 3, count=5, seed=42))
        assert one == two

    def test_different_seeds_differ(self, edge_schema):
        one = list(random_structures(edge_schema, 3, count=5, seed=1))
        two = list(random_structures(edge_schema, 3, count=5, seed=2))
        assert one != two

    def test_density_extremes(self, edge_schema):
        empty = next(iter(random_structures(edge_schema, 2, density=0.0, count=1)))
        full = next(iter(random_structures(edge_schema, 2, density=1.0, count=1)))
        assert empty.fact_count("E") == 0
        assert full.fact_count("E") == 4


class TestAmplified:
    def test_yields_all_combinations(self, edge_schema):
        base = Structure(edge_schema, {"E": [(0, 1)]})
        family = list(amplified([base], powers=(1, 2), blowups=(1, 2)))
        assert len(family) == 4
        sizes = sorted(len(s.domain) for s in family)
        assert sizes == [2, 4, 4, 8]


class TestFindCounterexample:
    def test_finds_violation(self, edge_schema):
        phi_s = parse_query("E(x, y)")
        phi_b = parse_query("E(x, x)")
        outcome = find_counterexample(
            phi_s, phi_b, enumerate_structures(edge_schema, 2)
        )
        assert outcome.found
        assert outcome.lhs > outcome.rhs

    def test_none_when_contained(self, edge_schema):
        phi_s = parse_query("E(x, y) & E(y, x)")
        phi_b = parse_query("E(x, y)")
        outcome = find_counterexample(
            phi_s, phi_b, enumerate_structures(edge_schema, 2)
        )
        assert not outcome.found
        assert outcome.checked == 16

    def test_budget(self, edge_schema):
        with pytest.raises(SearchBudgetExceeded):
            find_counterexample(
                parse_query("E(x, y) & E(y, x)"),
                parse_query("E(x, y)"),
                enumerate_structures(edge_schema, 2),
                max_candidates=3,
            )

    def test_predicate_filter(self, edge_schema):
        outcome = find_counterexample(
            parse_query("E(x, y)"),
            parse_query("E(x, x)"),
            enumerate_structures(edge_schema, 2),
            predicate=lambda s: False,
        )
        assert outcome.checked == 0


class TestVerifyBounded:
    def test_contained_pair_passes(self):
        verdict = verify_bounded(
            parse_query("E(x, y) & E(y, x)"),
            parse_query("E(x, y)"),
            Schema.from_arities({"E": 2}),
            domain_size=2,
        )
        assert verdict.holds_on_sample
        assert verdict.counterexample is None
        assert "no violation" in str(verdict)

    def test_violated_pair_caught(self):
        verdict = verify_bounded(
            parse_query("E(x, y)"),
            parse_query("E(x, x)"),
            Schema.from_arities({"E": 2}),
            domain_size=2,
        )
        assert not verdict.holds_on_sample
        assert verdict.counterexample is not None

    def test_multiplier_and_additive(self):
        # 3·E(x,y) <= E(x,y) + 4 fails once E(x,y) > 2 (a 2-element domain
        # admits up to 4 edges).
        verdict = verify_bounded(
            parse_query("E(x, y)"),
            parse_query("E(x, y)"),
            Schema.from_arities({"E": 2}),
            domain_size=2,
            multiplier=3,
            additive=4,
            require_nontrivial=False,
        )
        assert not verdict.holds_on_sample

    def test_isomorphism_pruning_agrees(self):
        """Iso-pruned sweeps reach the same verdict with fewer candidates."""
        schema = Schema.from_arities({"E": 2})
        for s_text, b_text in (
            ("E(x, y) & E(y, x)", "E(x, y)"),
            ("E(x, y)", "E(x, x)"),
        ):
            full = verify_bounded(
                parse_query(s_text),
                parse_query(b_text),
                schema,
                domain_size=2,
                require_nontrivial=False,
            )
            pruned = verify_bounded(
                parse_query(s_text),
                parse_query(b_text),
                schema,
                domain_size=2,
                require_nontrivial=False,
                up_to_isomorphism=True,
            )
            assert full.holds_on_sample == pruned.holds_on_sample
            assert pruned.checked <= full.checked

    def test_additive_slack_absorbs_small_gaps(self):
        # 1·E(x,y) <= E(x,x) + 4: at most 4 edges on 2 elements, so the
        # additive constant alone closes every gap.
        verdict = verify_bounded(
            parse_query("E(x, y)"),
            parse_query("E(x, x)"),
            Schema.from_arities({"E": 2}),
            domain_size=2,
            additive=4,
            require_nontrivial=False,
        )
        assert verdict.holds_on_sample


class TestCertificates:
    def test_surjection_certificate(self):
        """π_s ≤ π_b shape: an onto hom certifies containment everywhere."""
        phi_s = parse_query("E(x, y)")
        phi_b = parse_query("E(x, y) & E(x, y')")
        certificate = decide_bag_containment(phi_s, phi_b)
        assert certificate.verdict is Verdict.CONTAINED
        assert "Lemma 12" in certificate.reason

    def test_chandra_merlin_refutation(self):
        phi_s = parse_query("E(x, x)")
        phi_b = parse_query("F(u, v)")
        certificate = decide_bag_containment(phi_s, phi_b)
        assert certificate.verdict is Verdict.NOT_CONTAINED
        assert "Chandra-Merlin" in certificate.reason

    def test_blowup_asymptotics_refutation(self):
        # phi_s = two independent edges grows like k^4; phi_b = one edge like k^2;
        # set-containment holds (hom exists), but bag containment fails.
        phi_s = parse_query("E(x, y) & E(u, v)")
        phi_b = parse_query("E(x, y)")
        certificate = decide_bag_containment(phi_s, phi_b)
        assert certificate.verdict is Verdict.NOT_CONTAINED
        assert "blow-up" in certificate.reason

    def test_search_refutation(self, edge_schema):
        # An inequality in phi_s disables every static certificate, so the
        # counterexample search is the only live path.
        phi_s = parse_query("E(x, y) & x != y")
        phi_b = parse_query("E(u, u)")
        certificate = decide_bag_containment(
            phi_s, phi_b, enumerate_structures(edge_schema, 2)
        )
        assert certificate.verdict is Verdict.NOT_CONTAINED
        assert "counterexample" in certificate.reason

    def test_unknown_for_uncertified_containment(self, edge_schema):
        # E(x,y) ∧ x≠y is genuinely contained in E(u,v), but the static
        # certificates skip inequality queries and search finds nothing:
        # the honest answer for an open problem is UNKNOWN.
        phi_s = parse_query("E(x, y) & x != y")
        phi_b = parse_query("E(u, v)")
        certificate = decide_bag_containment(
            phi_s,
            phi_b,
            enumerate_structures(edge_schema, 2),
        )
        assert certificate.verdict is Verdict.UNKNOWN
        assert "open problem" in certificate.reason
