"""Cost-constant fitting and the round trip through plan selection.

What calibration promises: the *visit* sides of the samples are a pure
function of the seed (only the measured seconds vary by machine), the
fitted constants are normalized so backtracking's scale is exactly 1.0,
a fit survives ``to_dict -> JSON -> from_dict`` bit-for-bit, and —  the
property ``bagcq calibrate`` exists for — plan selection under the
reloaded constants is *identical* to selection under the fitted ones.
"""

from __future__ import annotations

import json

import pytest

from repro.loadgen.calibrate import calibrate, collect_samples
from repro.planner import (
    CostConstants,
    analyze_component,
    fit_constants,
    get_constants,
    select_engine,
    use_constants,
)
from repro.qa.generators import case_at


class TestCollectSamples:
    def test_visit_sides_are_seed_deterministic(self):
        first = collect_samples(case_count=6, seed=3, repeat=1)
        second = collect_samples(case_count=6, seed=3, repeat=1)
        assert [(engine, visits) for engine, visits, _ in first] == [
            (engine, visits) for engine, visits, _ in second
        ]
        assert all(seconds > 0 for _, _, seconds in first)

    def test_every_sample_names_a_known_engine(self):
        samples = collect_samples(case_count=6, seed=0, repeat=1)
        assert samples
        engines = {engine for engine, _, _ in samples}
        assert engines <= {"backtracking", "acyclic", "treewidth", "compiled"}
        # Backtracking is always safe, so it appears for every case.
        assert "backtracking" in engines

    def test_validation(self):
        with pytest.raises(ValueError):
            collect_samples(case_count=0)
        with pytest.raises(ValueError):
            collect_samples(repeat=0)


class TestFitConstants:
    def test_backtracking_scale_is_the_normalizer(self):
        samples = [
            ("backtracking", 100.0, 0.010),
            ("acyclic", 100.0, 0.002),
            ("treewidth", 100.0, 0.004),
        ]
        fitted = fit_constants(samples)
        assert fitted.backtracking_scale == 1.0
        # Engines measured faster per visit get proportionally smaller
        # scales: 0.002s/0.010s = 0.2 of backtracking's per-visit cost.
        assert fitted.acyclic_scale == pytest.approx(0.2)
        assert fitted.treewidth_scale == pytest.approx(0.4)

    def test_shape_constants_are_preserved(self):
        base = CostConstants(acyclic_base=99.0)
        fitted = fit_constants(
            [("backtracking", 10.0, 0.01), ("acyclic", 10.0, 0.01)], base
        )
        assert fitted.acyclic_base == 99.0
        assert fitted.acyclic_scale == pytest.approx(1.0)

    def test_no_backtracking_reference_returns_base(self):
        base = CostConstants()
        assert fit_constants([("acyclic", 10.0, 0.01)], base) is base
        assert fit_constants([], base) is base


class TestRoundTrip:
    def test_to_dict_json_from_dict_is_identity(self):
        fitted = calibrate(case_count=5, seed=0, repeat=1)
        reloaded = CostConstants.from_dict(
            json.loads(json.dumps(fitted.to_dict()))
        )
        assert reloaded == fitted  # bit-for-bit: floats survive JSON

    def test_plan_selection_identical_under_reloaded_constants(self):
        fitted = calibrate(case_count=8, seed=1, repeat=1)
        reloaded = CostConstants.from_dict(
            json.loads(json.dumps(fitted.to_dict()))
        )
        cases = [case_at(index, seed=2) for index in range(30)]
        compared = 0
        for case in cases:
            if case.kind != "cq" or case.query is None:
                continue
            for component in case.query.connected_components():
                profile = analyze_component(component)
                with use_constants(fitted):
                    chosen = select_engine(component, profile, case.structure)
                with use_constants(reloaded):
                    rechosen = select_engine(
                        component, profile, case.structure
                    )
                assert chosen == rechosen
                compared += 1
        assert compared >= 10

    def test_use_constants_is_scoped(self):
        fitted = CostConstants(acyclic_scale=0.125)
        before = get_constants()
        with use_constants(fitted):
            assert get_constants() is fitted
        assert get_constants() is before

    def test_from_dict_rejects_unknown_keys(self):
        payload = CostConstants().to_dict()
        payload["warp_factor"] = 9.0
        with pytest.raises(ValueError):
            CostConstants.from_dict(payload)

    def test_from_dict_rejects_nonpositive_values(self):
        payload = CostConstants().to_dict()
        payload["acyclic_scale"] = 0.0
        with pytest.raises(ValueError):
            CostConstants.from_dict(payload)

    def test_missing_keys_fall_back_to_defaults(self):
        partial = CostConstants.from_dict({"treewidth_scale": 0.5})
        assert partial.treewidth_scale == 0.5
        assert partial.backtracking_scale == 1.0
        assert partial.acyclic_base == CostConstants().acyclic_base
