"""The set-semantics containment tier: ``repro.containment_set``.

Chandra–Merlin units on the shapes the paper leans on (paths, cycles,
CYCLIQ rotations, the Definition-3 gadget queries), the Sagiv–Yannakakis
all/any matrix for unions, engine parity — every engine must return the
*bit-identical* verdict, witness, and certificate — the α-equivalence
keyed :class:`ContainmentCache`, error-class parity with direct
evaluation, the ``find_counterexample`` prescreen, and the ``/contain``
service endpoint.
"""

from __future__ import annotations

import pytest

from repro.containment_set import (
    AbsenceCertificate,
    ContainmentCache,
    containment_cache_key,
    cq_contained,
    cq_containment,
    default_containment_cache,
    ucq_contained,
    ucq_containment,
)
from repro.core import alpha_gadget, cycliq, gamma_gadget
from repro.decision.search import find_counterexample
from repro.errors import ConstantError, EvaluationError, QueryError
from repro.homomorphism import CountCache, count, is_homomorphism
from repro.obs import observe
from repro.queries import parse_query, variables
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.workloads import cycle_query, path_query, random_queries, star_query

PARITY_ENGINES = ["auto", "backtracking", "treewidth", "compiled"]


def _witness_is_hom(verdict, phi_s, phi_b) -> bool:
    """The reported witness really is a hom ``φ_b → canonical(φ_s)``."""
    return is_homomorphism(
        dict(verdict.witness), phi_b, phi_s.canonical_structure()
    )


class TestChandraMerlin:
    """CQ ⊆ CQ on the canonical shapes."""

    def test_reflexive_on_paths(self):
        for length in (1, 2, 4):
            query = path_query(length)
            verdict = cq_containment(query, query)
            assert verdict.contained
            assert _witness_is_hom(verdict, query, query)

    def test_longer_path_contained_in_shorter(self):
        # A 2-path maps into the canonical 4-path, not vice versa.
        assert cq_contained(path_query(4), path_query(2))
        assert not cq_contained(path_query(2), path_query(4))

    def test_cycle_divisibility(self):
        # C6 wraps twice around canonical(C3); the triangle cannot map
        # into the bipartite-free... into the directed 6-cycle.
        assert cq_contained(cycle_query(3), cycle_query(6))
        assert not cq_contained(cycle_query(6), cycle_query(3))

    def test_cycle_contained_in_path(self):
        assert cq_contained(cycle_query(3), path_query(2))
        assert not cq_contained(path_query(2), cycle_query(3))

    def test_negative_certificate_prices_the_separation(self):
        verdict = cq_containment(cycle_query(6), cycle_query(3))
        certificate = verdict.certificate
        assert isinstance(certificate, AbsenceCertificate)
        # canonical(C6) admits the six rotations of C6 and no triangle.
        assert certificate.lhs == 6
        assert certificate.rhs == 0
        assert count(cycle_query(6), certificate.structure) == 6
        assert count(cycle_query(3), certificate.structure) == 0

    def test_positive_verdict_has_no_certificate_and_vice_versa(self):
        positive = cq_containment(cycle_query(3), cycle_query(6))
        assert positive.certificate is None and positive.witness is not None
        negative = cq_containment(cycle_query(6), cycle_query(3))
        assert negative.witness is None and negative.certificate is not None

    def test_want_witness_false_skips_enumeration(self):
        verdict = cq_containment(path_query(3), path_query(2), want_witness=False)
        assert verdict.contained and verdict.witness is None

    def test_cycliq_rotation_equivalence(self):
        # CYCLIQ is rotation-closed by construction, so rotating the
        # tuple yields a set-equivalent query.
        original = cycliq("R", variables("a", "b", "c"))
        rotated = cycliq("R", variables("b", "c", "a"))
        assert cq_contained(original, rotated)
        assert cq_contained(rotated, original)

    def test_definition3_gadget_queries(self):
        # γ_s / γ_b (Lemma 10) are inequality-free: the classical test
        # applies, the verdict must match a direct hom-existence count,
        # and positive witnesses must check out.
        gadget = gamma_gadget(3)
        for phi_s, phi_b in (
            (gadget.query_s, gadget.query_b),
            (gadget.query_b, gadget.query_s),
        ):
            if not phi_b.constants <= phi_s.constants:
                # canonical(φ_s) cannot interpret φ_b's extra constant —
                # the same ConstantError direct evaluation raises.
                with pytest.raises(ConstantError):
                    cq_containment(phi_s, phi_b)
                continue
            verdict = cq_containment(phi_s, phi_b)
            expected = count(phi_b, phi_s.canonical_structure()) > 0
            assert verdict.contained is expected
            if verdict.contained:
                assert _witness_is_hom(verdict, phi_s, phi_b)
            else:
                assert count(phi_b, verdict.certificate.structure) == 0

    def test_definition3_inequality_side_is_rejected(self):
        # α_b carries one inequality (Definition 3's bag gadget); the
        # Chandra-Merlin test refuses it on either side.
        gadget = alpha_gadget(2)
        with pytest.raises(QueryError):
            cq_containment(gadget.query_s, gadget.query_b)
        with pytest.raises(QueryError):
            cq_containment(gadget.query_b, gadget.query_s)
        # Stripped of the inequality it participates normally.
        stripped = gadget.query_b.without_inequalities()
        assert cq_contained(stripped, stripped)

    def test_constants_flow_through(self):
        phi_s = parse_query("E(x,#heart) & E(#heart,x)")
        phi_b = parse_query("E(y,#heart)")
        verdict = cq_containment(phi_s, phi_b)
        assert verdict.contained
        assert _witness_is_hom(verdict, phi_s, phi_b)


class TestUCQ:
    """The all/any reduction over the coverage matrix."""

    def test_union_contained_in_superset_union(self):
        left = [path_query(2), cycle_query(3)]
        right = [path_query(2), cycle_query(3), cycle_query(6)]
        verdict = ucq_containment(left, right)
        assert verdict.contained
        assert len(verdict.coverage) == 2
        assert all(entry.covered for entry in verdict.coverage)
        assert verdict.certificate is None

    def test_uncovered_disjunct_supplies_certificate(self):
        # path4 has no hom target for C3: not covered.
        left = [path_query(4), cycle_query(3)]
        right = [cycle_query(3)]
        verdict = ucq_containment(left, right)
        assert not verdict.contained
        uncovered = [e for e in verdict.coverage if not e.covered]
        assert [e.disjunct for e in uncovered] == [0]
        certificate = verdict.certificate
        # The certificate satisfies the left union but no right disjunct.
        assert count(path_query(4), certificate.structure) >= 1
        assert count(cycle_query(3), certificate.structure) == 0

    def test_coverage_matrix_is_complete_even_on_failure(self):
        # The outer loop never short-circuits: every left disjunct gets
        # a coverage row even after the verdict is already negative.
        left = [path_query(4), cycle_query(3), cycle_query(6)]
        right = [cycle_query(3)]
        verdict = ucq_containment(left, right)
        assert [entry.disjunct for entry in verdict.coverage] == [0, 1, 2]
        assert [entry.covered for entry in verdict.coverage] == [
            False,
            True,
            False,
        ]

    def test_witnesses_map_each_disjunct(self):
        left = [cycle_query(3), path_query(3)]
        right = [path_query(1), cycle_query(6)]
        verdict = ucq_containment(left, right)
        assert verdict.contained
        for entry in verdict.coverage:
            container = right[entry.container]
            containee = left[entry.disjunct]
            assert is_homomorphism(
                dict(entry.witness), container, containee.canonical_structure()
            )

    def test_accepts_cq_and_ucq_inputs(self):
        union = UnionOfConjunctiveQueries(
            [(path_query(2), 2), (cycle_query(3), 0)]
        )
        # Zero-multiplicity disjuncts are dropped: the union is just
        # {path2}, which a bare CQ on the other side matches.
        verdict = ucq_containment(union, path_query(2))
        assert verdict.contained and len(verdict.coverage) == 1
        assert ucq_contained(path_query(3), union)

    def test_empty_right_side_priced_directly(self):
        verdict = ucq_containment([cycle_query(3)], [])
        assert not verdict.contained
        assert verdict.certificate.lhs >= 1
        assert verdict.certificate.rhs == 0

    def test_rejects_non_query_input(self):
        with pytest.raises(QueryError):
            ucq_containment("E(x,y)", [path_query(2)])
        with pytest.raises(QueryError):
            ucq_containment([path_query(2)], [path_query(2), "junk"])

    def test_short_circuit_counters(self):
        with observe() as observation:
            ucq_containment([cycle_query(3)], [path_query(1), cycle_query(6)])
            metrics = observation.report()["metrics"]
        # One covered disjunct out of two containers: at most two pairs
        # tested, and skipped candidates are accounted as short-circuits.
        tested = metrics["contain.ucq.pairs_tested"]["value"]
        skipped = metrics.get("contain.ucq.short_circuits", {}).get("value", 0)
        assert tested + skipped == 2
        assert tested >= 1

    def test_container_with_alien_constant_is_skipped_not_fatal(self):
        # canonical(path2) does not interpret #heart: that pair alone
        # raises ConstantError at the CQ level, but the union-level
        # answer survives via the other container.
        alien = parse_query("E(x,#heart)")
        with pytest.raises(ConstantError):
            cq_containment(path_query(2), alien)
        with observe() as observation:
            assert ucq_contained([path_query(2)], [alien, path_query(2)])
            metrics = observation.report()["metrics"]
        assert metrics["contain.ucq.constant_skips"]["value"] >= 1


PARITY_PAIRS = [
    ("paths", path_query(4), path_query(2)),
    ("paths-neg", path_query(2), path_query(4)),
    ("cycles", cycle_query(3), cycle_query(6)),
    ("cycles-neg", cycle_query(6), cycle_query(3)),
    ("star-vs-path", star_query(3), path_query(1)),
    ("gamma", gamma_gadget(3).query_s, gamma_gadget(3).query_b),
    (
        "cycliq",
        cycliq("R", variables("a", "b", "c")),
        cycliq("R", variables("b", "c", "a")),
    ),
]
_RANDOM = list(
    random_queries(
        path_query(2).schema, count=6, variable_count=3, atom_count=3, seed=77
    )
)
PARITY_PAIRS += [
    (f"random-{index}", _RANDOM[index], _RANDOM[index + 1])
    for index in range(0, len(_RANDOM) - 1, 2)
]


class TestEngineParity:
    """All engines return the same verdict, witness, and certificate."""

    @pytest.mark.parametrize(
        "name,phi_s,phi_b", PARITY_PAIRS, ids=[n for n, _, _ in PARITY_PAIRS]
    )
    def test_cq_verdicts_bit_identical(self, name, phi_s, phi_b):
        reference = cq_containment(phi_s, phi_b, engine="backtracking")
        for engine in PARITY_ENGINES:
            other = cq_containment(phi_s, phi_b, engine=engine)
            assert other.contained is reference.contained
            assert other.witness == reference.witness
            if reference.certificate is None:
                assert other.certificate is None
            else:
                assert (
                    other.certificate.to_dict()
                    == reference.certificate.to_dict()
                )

    @pytest.mark.parametrize("engine", PARITY_ENGINES)
    def test_cached_run_identical_to_cold(self, engine):
        cache = ContainmentCache()
        count_cache = CountCache()
        pairs = [(p, q) for _, p, q in PARITY_PAIRS]
        cold = [
            cq_containment(p, q, engine=engine).to_dict() for p, q in pairs
        ]
        warm_once = [
            cq_containment(
                p, q, engine=engine, cache=cache, count_cache=count_cache
            ).to_dict()
            for p, q in pairs
        ]
        warm_twice = [
            cq_containment(
                p, q, engine=engine, cache=cache, count_cache=count_cache
            ).to_dict()
            for p, q in pairs
        ]
        assert cold == warm_once == warm_twice
        assert cache.hits >= len(pairs)

    def test_acyclic_engine_on_acyclic_instances(self):
        # The acyclic engine only accepts α-acyclic queries; on those it
        # must agree too.
        reference = cq_containment(path_query(4), path_query(2))
        other = cq_containment(path_query(4), path_query(2), engine="acyclic")
        assert other.contained is reference.contained
        assert other.witness == reference.witness

    @pytest.mark.parametrize("engine", PARITY_ENGINES)
    def test_ucq_parity(self, engine):
        left = [path_query(4), cycle_query(6)]
        right = [cycle_query(3), path_query(2)]
        reference = ucq_containment(left, right, engine="backtracking")
        other = ucq_containment(left, right, engine=engine)
        assert other.to_dict() == {
            **reference.to_dict(),
            "engine": engine,
        }


class TestContainmentCache:
    def test_alpha_equivalent_pairs_share_an_entry(self):
        cache = ContainmentCache()
        phi_s = parse_query("E(x,y) & E(y,z)")
        phi_b = parse_query("E(a,b)")
        renamed_s = phi_s.rename(
            {v: Variable(f"r{i}") for i, v in enumerate(sorted(phi_s.variables))}
        )
        renamed_b = phi_b.rename({next(iter(phi_b.variables)): Variable("zz")})
        first = cq_containment(phi_s, phi_b, cache=cache)
        second = cq_containment(renamed_s, renamed_b, cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert second.contained is first.contained

    def test_engine_is_part_of_the_key(self):
        key_a = containment_cache_key(path_query(2), path_query(1), "auto")
        key_b = containment_cache_key(path_query(2), path_query(1), "compiled")
        assert key_a != key_b
        cache = ContainmentCache()
        cq_containment(path_query(2), path_query(1), engine="auto", cache=cache)
        cq_containment(
            path_query(2), path_query(1), engine="compiled", cache=cache
        )
        assert cache.hits == 0 and cache.misses == 2

    def test_lru_eviction(self):
        cache = ContainmentCache(max_entries=2)
        queries = [path_query(1), path_query(2), path_query(3)]
        for query in queries:
            cq_containment(query, path_query(1), cache=cache)
        assert len(cache) == 2
        assert cache.evictions == 1
        # The first pair was evicted: asking again misses and re-evicts.
        before = cache.misses
        cq_containment(queries[0], path_query(1), cache=cache)
        assert cache.misses == before + 1

    def test_lookup_refreshes_recency(self):
        cache = ContainmentCache(max_entries=2)
        cache.store("a", (True, None))
        cache.store("b", (False, 3))
        assert cache.lookup("a") == (True, None)
        cache.store("c", (True, None))  # evicts "b", not the refreshed "a"
        assert cache.lookup("b") is None
        assert cache.lookup("a") == (True, None)

    def test_cached_negative_keeps_certificate_price(self):
        cache = ContainmentCache()
        first = cq_containment(cycle_query(6), cycle_query(3), cache=cache)
        second = cq_containment(cycle_query(6), cycle_query(3), cache=cache)
        assert cache.hits == 1
        assert second.certificate.lhs == first.certificate.lhs == 6

    def test_stats_snapshot(self):
        cache = ContainmentCache(max_entries=7)
        cache.store("k", (True, None))
        cache.lookup("k")
        cache.lookup("absent")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 7
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ContainmentCache(max_entries=0)

    def test_default_cache_is_a_singleton(self):
        assert default_containment_cache() is default_containment_cache()

    def test_clear(self):
        cache = ContainmentCache()
        cache.store("k", (True, None))
        cache.clear()
        assert len(cache) == 0


class TestErrorParity:
    """The containment API fails exactly like direct evaluation."""

    def test_inequalities_raise_query_error(self):
        dirty = parse_query("E(x,y) & x != y")
        with pytest.raises(QueryError):
            cq_containment(dirty, path_query(1))
        with pytest.raises(QueryError):
            cq_containment(path_query(1), dirty)
        with pytest.raises(QueryError):
            ucq_containment([dirty], [path_query(1)])

    def test_unknown_engine_fails_fast(self):
        # Before any evaluation: even a pair that would raise QueryError
        # reports the engine problem first, exactly like count().
        with pytest.raises(EvaluationError):
            cq_containment(path_query(2), path_query(1), engine="warpdrive")
        dirty = parse_query("E(x,y) & x != y")
        with pytest.raises(EvaluationError):
            cq_containment(dirty, dirty, engine="warpdrive")

    def test_uninterpreted_constant_raises_constant_error(self):
        # φ_b names #spade; canonical(φ_s) does not interpret it — the
        # same ConstantError count() raises on such a structure.
        phi_s = path_query(2)
        phi_b = parse_query("E(x,#spade)")
        with pytest.raises(ConstantError):
            cq_containment(phi_s, phi_b)

    def test_non_cq_rejected(self):
        with pytest.raises(QueryError):
            cq_containment("E(x,y)", path_query(1))


class TestPrescreen:
    """find_counterexample refutes set-refuted pairs with zero candidates."""

    def test_refuted_pair_needs_no_candidates(self):
        with observe() as observation:
            outcome = find_counterexample(cycle_query(6), cycle_query(3), [])
            metrics = observation.report()["metrics"]
        assert outcome.found
        assert outcome.checked == 0
        assert outcome.lhs > outcome.rhs
        assert count(cycle_query(6), outcome.counterexample) == outcome.lhs
        assert count(cycle_query(3), outcome.counterexample) == 0
        assert metrics["contain.prescreen.hits"]["value"] == 1

    def test_certificate_scales_with_multiplier_and_additive(self):
        outcome = find_counterexample(
            cycle_query(6), cycle_query(3), [], multiplier=3, additive=-2
        )
        assert outcome.found
        assert outcome.lhs == 3 * 6
        assert outcome.rhs == -2

    def test_contained_pair_still_searches(self):
        with observe() as observation:
            outcome = find_counterexample(cycle_query(3), cycle_query(6), [])
            metrics = observation.report()["metrics"]
        assert not outcome.found
        assert metrics["contain.prescreen.misses"]["value"] == 1

    def test_opt_out_restores_stream_semantics(self):
        outcome = find_counterexample(
            cycle_query(6), cycle_query(3), [], set_prescreen=False
        )
        assert not outcome.found and outcome.checked == 0

    def test_predicate_disables_prescreen(self):
        # A predicate constrains which counterexamples are acceptable;
        # the canonical database has not passed it, so it may not be
        # returned.
        outcome = find_counterexample(
            cycle_query(6),
            cycle_query(3),
            [],
            predicate=lambda structure: True,
        )
        assert not outcome.found

    def test_positive_additive_disables_prescreen(self):
        # lhs ≥ 1, rhs = 0 only refutes additive ≤ 0.
        outcome = find_counterexample(
            cycle_query(6), cycle_query(3), [], additive=10
        )
        assert not outcome.found

    def test_inequalities_fall_through_to_the_stream(self):
        dirty = parse_query("E(x,y) & x != y")
        outcome = find_counterexample(dirty, path_query(4), [])
        assert not outcome.found and outcome.checked == 0


class TestContainEndpoint:
    """/contain speaks the envelope and matches local verdicts."""

    @pytest.fixture(scope="class")
    def client(self):
        from repro.service import EvaluationServer, ServerConfig, ServiceClient

        with EvaluationServer(ServerConfig(workers=2, queue_depth=16)) as server:
            yield ServiceClient(server.url, seed=0)

    def test_cq_positive_parity(self, client):
        local = cq_containment(cycle_query(3), cycle_query(6))
        remote = client.contain(cycle_query(3), cycle_query(6))
        assert remote["contained"] is True
        assert remote["kind"] == "cq"
        assert remote["witness"] == local.to_dict()["witness"]
        assert remote["certificate"] is None

    def test_cq_negative_parity(self, client):
        local = cq_containment(cycle_query(6), cycle_query(3))
        remote = client.contain(cycle_query(6), cycle_query(3))
        assert remote["contained"] is False
        assert remote["certificate"] == local.to_dict()["certificate"]

    def test_ucq_parity(self, client):
        left = [path_query(4), cycle_query(6)]
        right = [cycle_query(3), path_query(2)]
        local = ucq_containment(left, right)
        remote = client.contain(left, right)
        assert remote["kind"] == "ucq"
        assert remote["contained"] is local.contained
        assert remote["coverage"] == local.to_dict()["coverage"]

    def test_no_witness_flag(self, client):
        remote = client.contain(
            cycle_query(3), cycle_query(6), witness=False
        )
        assert remote["contained"] is True and remote["witness"] is None

    def test_error_kinds_match_local_classes(self, client):
        from repro.service import RemoteError

        probes = [
            (parse_query("E(x,y) & x != y"), path_query(1), QueryError),
            (path_query(2), parse_query("E(x,#spade)"), ConstantError),
        ]
        for phi_s, phi_b, expected in probes:
            with pytest.raises(RemoteError) as excinfo:
                client.contain(phi_s, phi_b)
            assert excinfo.value.kind == expected.__name__
        with pytest.raises(RemoteError) as excinfo:
            client.contain(path_query(2), path_query(1), engine="warpdrive")
        assert excinfo.value.kind == EvaluationError.__name__

    def test_contain_counters_reach_metrics(self, client):
        client.contain(path_query(3), path_query(2))
        metrics = client.metrics()["metrics"]
        assert metrics["contain.cq_tests"]["value"] >= 1
        # The per-endpoint latency histogram is pre-registered for every
        # endpoint, /contain included.
        assert any(
            name.startswith("service.request_ms.contain") for name in metrics
        )
