"""Tests for the ``repro.obs`` observability layer.

Covers the metric primitives, context-var scoping (nested scopes must be
isolated), span-tree shape, report rendering / JSON round-trips, and the
engine instrumentation contract the benchmarks rely on — in particular
that backtracking memo counters are a deterministic function of the
(query, structure) pair, not of ambient state.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import EvaluationError
from repro.homomorphism.engine import count, count_at_least, count_ucq
from repro.obs import (
    Observation,
    Registry,
    active_registry,
    active_trace,
    observe,
    span,
)
from repro.queries import parse_query
from repro.queries.product import QueryProduct
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational import Schema, Structure


@pytest.fixture
def two_cycle() -> Structure:
    return Structure(Schema.from_arities({"E": 2}), {"E": [(1, 2), (2, 1)]})


class TestMetrics:
    def test_counter(self):
        registry = Registry()
        counter = registry.counter("x.n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("x.n") is counter

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Registry().counter("x").inc(-1)

    def test_gauge_tracks_last_and_max(self):
        gauge = Registry().gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max == 7
        gauge.set_max(2)
        assert gauge.max == 7
        gauge.set_max(11)
        assert gauge.max == 11

    def test_timer_aggregates(self):
        timer = Registry().timer("t")
        timer.observe(0.5)
        timer.observe(1.5)
        assert timer.count == 2
        assert timer.total == pytest.approx(2.0)
        assert timer.mean == pytest.approx(1.0)
        snapshot = timer.snapshot()
        assert snapshot["min_ms"] == pytest.approx(500.0)
        assert snapshot["max_ms"] == pytest.approx(1500.0)

    def test_timer_context_manager(self):
        timer = Registry().timer("t")
        with timer.time():
            time.sleep(0.005)
        assert timer.count == 1
        assert timer.total >= 0.005

    def test_kind_conflict_rejected(self):
        registry = Registry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")

    def test_thread_safe_increments(self):
        registry = Registry()

        def work():
            for _ in range(1000):
                registry.counter("shared").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("shared").value == 4000


class TestScoping:
    def test_disabled_by_default(self):
        assert active_registry() is None
        assert active_trace() is None

    def test_observe_installs_and_removes(self):
        with observe() as observation:
            assert active_registry() is observation.registry
            assert active_trace() is observation.trace
        assert active_registry() is None

    def test_nested_scopes_are_isolated(self):
        with observe() as outer:
            active_registry().counter("n").inc()
            with observe() as inner:
                active_registry().counter("n").inc(10)
            # Inner scope did not leak into (or read from) the outer one.
            assert inner.registry.counter("n").value == 10
            assert active_registry() is outer.registry
            active_registry().counter("n").inc()
        assert outer.registry.counter("n").value == 2

    def test_span_noop_when_disabled(self):
        with span("nothing", k=1) as current:
            current.set(more=2)  # absorbed silently
        assert active_trace() is None


class TestSpans:
    def test_tree_shape(self):
        with observe() as observation:
            with span("root", kind="demo"):
                with span("child-a"):
                    with span("grandchild"):
                        pass
                with span("child-b") as b:
                    b.set(verdict="ok")
        roots = observation.trace.roots
        assert [root.name for root in roots] == ["root"]
        root = roots[0]
        assert [child.name for child in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.children[1].attrs == {"verdict": "ok"}
        assert root.duration is not None and root.duration >= 0

    def test_sibling_roots(self):
        with observe() as observation:
            with span("first"):
                pass
            with span("second"):
                pass
        assert [root.name for root in observation.trace.roots] == [
            "first",
            "second",
        ]

    def test_find(self):
        with observe() as observation:
            with span("a"):
                with span("b"):
                    pass
        assert observation.trace.find("b").name == "b"
        assert observation.trace.find("missing") is None


class TestReports:
    def test_json_round_trip(self):
        with observe() as observation:
            with span("step", size=3):
                active_registry().counter("c").inc(2)
                active_registry().gauge("g").set(1.5)
                active_registry().timer("t").observe(0.25)
        rendered = observation.render_json()
        decoded = json.loads(rendered)
        assert decoded == json.loads(json.dumps(observation.report()))
        assert decoded["metrics"]["c"] == {"type": "counter", "value": 2}
        assert decoded["trace"][0]["name"] == "step"
        assert decoded["trace"][0]["attrs"] == {"size": 3}

    def test_json_is_stable_across_insertion_order(self):
        first, second = Observation(), Observation()
        first.registry.counter("a").inc()
        first.registry.counter("b").inc()
        second.registry.counter("b").inc()
        second.registry.counter("a").inc()
        assert first.render_json() == second.render_json()

    def test_text_report_mentions_everything(self):
        with observe() as observation:
            with span("outer"):
                active_registry().counter("bt.nodes").inc(7)
        text = observation.render_text()
        assert "outer" in text
        assert "bt.nodes" in text
        assert "7" in text

    def test_empty_report(self):
        with observe() as observation:
            pass
        assert "(nothing recorded)" in observation.render_text()


class TestEngineInstrumentation:
    def test_backtracking_counters_nonzero(self, two_cycle):
        query = parse_query("E(x, y) & E(y, x)")
        with observe() as observation:
            assert count(query, two_cycle) == 2
        metrics = observation.report()["metrics"]
        assert metrics["bt.calls"]["value"] == 1
        assert metrics["bt.nodes"]["value"] > 0
        assert metrics["bt.facts_scanned"]["value"] > 0
        assert metrics["engine.dispatch.backtracking"]["value"] == 1

    def test_memo_counters_match_across_runs(self, two_cycle):
        """Regression: memo behaviour is per-problem, so evaluating the
        same query twice yields identical hit/miss/node counters."""
        query = parse_query("E(x, y) & E(y, z) & E(z, w)")
        runs = []
        for _ in range(2):
            with observe() as observation:
                count(query, two_cycle)
            metrics = observation.report()["metrics"]
            runs.append(
                {
                    name: metrics[name]["value"]
                    for name in (
                        "bt.nodes",
                        "bt.memo_hits",
                        "bt.memo_misses",
                        "bt.memo_entries",
                        "bt.facts_scanned",
                    )
                }
            )
        assert runs[0] == runs[1]
        assert runs[0]["bt.memo_misses"] > 0

    def test_treewidth_counters(self, two_cycle):
        query = parse_query("E(x, y) & E(y, x)")
        with observe() as observation:
            count(query, two_cycle, engine="treewidth")
        metrics = observation.report()["metrics"]
        assert metrics["td.calls"]["value"] == 1
        assert metrics["td.bags"]["value"] >= 1
        assert metrics["td.table_entries"]["value"] >= 1
        assert "engine.dispatch.treewidth" in metrics

    def test_acyclic_counters(self, two_cycle):
        query = parse_query("E(x, y) & E(y, z)")
        with observe() as observation:
            count(query, two_cycle, engine="acyclic")
        metrics = observation.report()["metrics"]
        assert metrics["ac.calls"]["value"] == 1
        assert metrics["ac.join_passes"]["value"] == 1
        assert metrics["ac.facts_matched"]["value"] == 4

    def test_inclusion_exclusion_terms(self, two_cycle):
        query = parse_query("E(x, y) & x != y")
        with observe() as observation:
            count(query, two_cycle, use_inclusion_exclusion=True)
        metrics = observation.report()["metrics"]
        assert metrics["engine.ie_calls"]["value"] == 1
        # One inequality: the empty subset and the singleton.
        assert metrics["engine.ie_terms"]["value"] == 2

    def test_product_factor_counter(self, two_cycle):
        query = QueryProduct.of(parse_query("E(x, y)")) ** 5
        with observe() as observation:
            assert count(query, two_cycle) == 32
        metrics = observation.report()["metrics"]
        assert metrics["engine.product_factors"]["value"] == 1


class TestEngineErrorPaths:
    def test_unknown_engine_plain_query(self, two_cycle):
        with pytest.raises(EvaluationError, match="unknown engine"):
            count(parse_query("E(x, y)"), two_cycle, engine="nope")

    def test_unknown_engine_empty_product(self, two_cycle):
        """Validated before any work, even when no factor is evaluated."""
        with pytest.raises(EvaluationError, match="unknown engine"):
            count(QueryProduct(), two_cycle, engine="nope")

    def test_unknown_engine_trivial_bound(self, two_cycle):
        with pytest.raises(EvaluationError, match="unknown engine"):
            count_at_least(QueryProduct(), two_cycle, 0, engine="nope")

    def test_unknown_engine_empty_ucq(self, two_cycle):
        with pytest.raises(EvaluationError, match="unknown engine"):
            count_ucq(
                UnionOfConjunctiveQueries(()), two_cycle, engine="nope"
            )

    def test_mid_evaluation_error_names_engine(self, two_cycle):
        cyclic = parse_query("E(x, y) & E(y, z) & E(z, x)")
        with pytest.raises(EvaluationError, match=r"\[engine: acyclic\]"):
            count(cyclic, two_cycle, engine="acyclic")

    def test_engine_tag_not_duplicated(self, two_cycle):
        cyclic = parse_query("E(x, y) & E(y, z) & E(z, x)")
        product = QueryProduct.of(cyclic)
        with pytest.raises(EvaluationError) as excinfo:
            count(product, two_cycle, engine="acyclic")
        assert str(excinfo.value).count("[engine:") == 1
