"""Tests for the naming utilities and the error hierarchy."""

import pytest

from repro import errors
from repro.naming import HEART, SPADE, NameSupply


class TestNameSupply:
    def test_fresh_unreserved_name_is_itself(self):
        supply = NameSupply()
        assert supply.fresh("x") == "x"

    def test_collision_gets_suffix(self):
        supply = NameSupply({"x"})
        assert supply.fresh("x") == "x_1"
        assert supply.fresh("x") == "x_2"

    def test_suffixes_skip_reserved(self):
        supply = NameSupply({"x", "x_1", "x_2"})
        assert supply.fresh("x") == "x_3"

    def test_fresh_names_are_reserved(self):
        supply = NameSupply()
        first = supply.fresh("y")
        second = supply.fresh("y")
        assert first != second

    def test_reserve(self):
        supply = NameSupply()
        supply.reserve("z")
        assert supply.fresh("z") == "z_1"

    def test_independent_bases(self):
        supply = NameSupply({"a", "b"})
        assert supply.fresh("a") == "a_1"
        assert supply.fresh("b") == "b_1"


class TestSpecialConstants:
    def test_distinct(self):
        assert SPADE != HEART

    def test_stable_names(self):
        # The gadgets and the Arena hard-code these; changing them would
        # silently invalidate serialized artifacts.
        assert SPADE == "spade"
        assert HEART == "heart"


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        leaves = [
            errors.SchemaError,
            errors.ArityError,
            errors.ConstantError,
            errors.QueryError,
            errors.ParseError,
            errors.PolynomialError,
            errors.Lemma11ViolationError,
            errors.ReductionError,
            errors.EvaluationError,
            errors.MaterializationError,
            errors.SearchBudgetExceeded,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.BagCQError)

    def test_specializations(self):
        assert issubclass(errors.ArityError, errors.SchemaError)
        assert issubclass(errors.ParseError, errors.QueryError)
        assert issubclass(errors.Lemma11ViolationError, errors.PolynomialError)

    def test_single_catch_at_api_boundary(self):
        from repro.queries import parse_query

        with pytest.raises(errors.BagCQError):
            parse_query("not ( valid")
