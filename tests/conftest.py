"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.homomorphism import is_homomorphism
from repro.polynomials import Lemma11Instance, Monomial
from repro.relational import Schema, Structure


@pytest.fixture
def edge_schema() -> Schema:
    return Schema.from_arities({"E": 2})


@pytest.fixture
def mixed_schema() -> Schema:
    return Schema.from_arities({"E": 2, "U": 1, "T": 3})


@pytest.fixture
def triangle(edge_schema: Schema) -> Structure:
    """A directed 3-cycle."""
    return Structure(edge_schema, {"E": [(0, 1), (1, 2), (2, 0)]})


@pytest.fixture
def loop_and_edge(edge_schema: Schema) -> Structure:
    """A self-loop plus one extra edge — the smallest interesting mix."""
    return Structure(edge_schema, {"E": [(0, 0), (0, 1)]})


@pytest.fixture
def minimal_lemma11() -> Lemma11Instance:
    """The smallest legal Lemma 11 instance: c = 2, P_s = P_b = x₁."""
    return Lemma11Instance(
        c=2,
        monomials=(Monomial.of(1),),
        s_coefficients=(1,),
        b_coefficients=(1,),
    )


@pytest.fixture
def richer_lemma11() -> Lemma11Instance:
    """Two monomials, two variables, non-trivial coefficients."""
    return Lemma11Instance(
        c=3,
        monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
        s_coefficients=(2, 1),
        b_coefficients=(3, 4),
    )


def brute_force_count(query, structure) -> int:
    """Reference counter: try every assignment (exponential, tests only)."""
    variables = sorted(query.variables)
    domain = sorted(structure.domain, key=repr)
    total = 0
    for combo in itertools.product(domain, repeat=len(variables)):
        if is_homomorphism(dict(zip(variables, combo)), query, structure):
            total += 1
    return total
