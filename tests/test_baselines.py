"""Tests for the baselines: UCQ encoding [14] and the JKV comparison [15]."""

import pytest

from repro.baselines import (
    JKV_INEQUALITY_COUNT,
    comparison_row,
    format_comparison_table,
    monomial_to_cq,
    polynomial_to_ucq,
    ucq_containment_instance,
    valuation_structure,
)
from repro.errors import PolynomialError
from repro.homomorphism import count, count_ucq
from repro.polynomials import Monomial, Polynomial, linear, parity_obstruction


class TestMonomialEncoding:
    def test_monomial_count_is_product(self):
        cq = monomial_to_cq(Monomial.of(1, 2))
        structure = valuation_structure({1: 3, 2: 4})
        assert count(cq, structure) == 12

    def test_repeated_variable(self):
        cq = monomial_to_cq(Monomial.of(1, 1))
        structure = valuation_structure({1: 5})
        assert count(cq, structure) == 25

    def test_constant_monomial_counts_one(self):
        cq = monomial_to_cq(Monomial.constant())
        structure = valuation_structure({1: 7})
        assert count(cq, structure) == 1

    def test_zero_valuation(self):
        cq = monomial_to_cq(Monomial.of(1))
        structure = valuation_structure({1: 0})
        assert count(cq, structure) == 0


class TestPolynomialEncoding:
    @pytest.mark.parametrize(
        "valuation", [{1: 0, 2: 0}, {1: 1, 2: 2}, {1: 3, 2: 1}], ids=str
    )
    def test_ucq_value_equals_polynomial(self, valuation):
        """The heart of [14]: UCQ bag-count = polynomial value."""
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        p = 3 * x**2 + 2 * x * y + 1
        ucq = polynomial_to_ucq(p)
        structure = valuation_structure(valuation)
        assert count_ucq(ucq, structure) == p.evaluate(valuation)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(PolynomialError):
            polynomial_to_ucq(Polynomial.variable(1) - 1)

    def test_coefficients_become_multiplicities(self):
        p = 5 * Polynomial.variable(1)
        ucq = polynomial_to_ucq(p)
        assert len(ucq) == 5
        assert len(ucq.disjuncts) == 1


class TestContainmentInstance:
    def test_solvable_instance_violates_containment(self):
        instance = ucq_containment_instance(linear(2, 3, 7).polynomial)
        witness = linear(2, 3, 7).witness
        assert witness is not None
        renamed = {index + 1: value for index, value in witness.items()}
        structure = valuation_structure(renamed)
        lhs = count_ucq(instance.ucq_s, structure)
        rhs = count_ucq(instance.ucq_b, structure)
        assert lhs > rhs

    def test_unsolvable_instance_contained_on_grid(self):
        import itertools

        instance = ucq_containment_instance(parity_obstruction().polynomial)
        variables = sorted(instance.p1.variables | instance.p2.variables)
        for values in itertools.product(range(4), repeat=len(variables)):
            valuation = dict(zip(variables, values))
            structure = valuation_structure(valuation)
            assert count_ucq(instance.ucq_s, structure) <= count_ucq(
                instance.ucq_b, structure
            )


class TestJKVComparison:
    def test_constant(self):
        assert JKV_INEQUALITY_COUNT == 59**10

    def test_row_and_table(self, minimal_lemma11):
        from repro.core import theorem3_reduction

        row = comparison_row("minimal", theorem3_reduction(minimal_lemma11))
        assert row.psi_s_inequalities == 0
        assert row.psi_b_inequalities == 1
        assert row.improvement_factor == 59**10
        table = format_comparison_table([row])
        assert "minimal" in table and str(59**10) in table
