"""Tests for the Theorem 2/4 problem shapes and the well of positivity."""

import pytest

from repro.core import (
    Theorem2Instance,
    Theorem4Instance,
    verify_instance_bounded,
    well_of_positivity,
)
from repro.errors import ReductionError
from repro.homomorphism import count
from repro.naming import HEART, SPADE
from repro.queries import parse_query
from repro.relational import Schema


@pytest.fixture
def schema():
    return Schema.from_arities({"E": 2, "U": 1})


class TestWellOfPositivity:
    def test_every_query_counts_one(self, schema):
        """Section 1.2: on the well, any inequality-free CQ counts exactly 1."""
        well = well_of_positivity(schema)
        for text in ("E(x, y)", "E(x, y) & E(y, z) & U(x)", "E(x, x) & U(y)"):
            assert count(parse_query(text), well) == 1

    def test_well_is_trivial(self, schema):
        well = well_of_positivity(schema, constants=(SPADE, HEART))
        assert not well.is_nontrivial()
        assert well.interpret(SPADE) == well.interpret(HEART)

    def test_inequality_queries_count_zero(self, schema):
        """The 'well of positivity' argument: x ≠ x' can never fire."""
        well = well_of_positivity(schema)
        assert count(parse_query("E(x, y) & x != y"), well) == 0

    def test_theorem1_needs_nontriviality(self, schema):
        """c·φ_s ≤ φ_b fails on the well for ANY c > 1 (footnote argument)."""
        well = well_of_positivity(schema)
        phi_s = parse_query("E(x, y)")
        phi_b = parse_query("E(x, y) & E(y, z)")
        assert 2 * count(phi_s, well) > count(phi_b, well)


class TestTheorem2Instance:
    def test_additive_constant_absorbs_the_well(self, schema):
        """Theorem 2's c' is exactly what survives trivial databases."""
        instance = Theorem2Instance(
            phi_s=parse_query("E(x, y)"),
            phi_b=parse_query("E(x, y) & E(u, v)"),
            c=3,
            c_prime=2,
        )
        well = well_of_positivity(schema)
        # On the well: 3·1 ≤ 1 + 2 — the constant saves the day exactly.
        assert instance.holds_on(well)
        tighter = Theorem2Instance(
            phi_s=instance.phi_s, phi_b=instance.phi_b, c=3, c_prime=1
        )
        assert not tighter.holds_on(well)

    def test_minimal_c_prime(self, schema):
        instance = Theorem2Instance(
            phi_s=parse_query("E(x, y)"),
            phi_b=parse_query("E(x, y) & E(u, v)"),
            c=3,
            c_prime=0,
        )
        assert instance.minimal_c_prime_on([well_of_positivity(schema)]) == 2

    def test_bounded_verification(self, schema):
        # E(x,y) <= E(x,y)^2 + 1 holds: n <= n² + 1 for all n >= 0.
        instance = Theorem2Instance(
            phi_s=parse_query("E(x, y)"),
            phi_b=parse_query("E(x, y) & E(u, v)"),
            c=1,
            c_prime=1,
        )
        assert verify_instance_bounded(instance, Schema.from_arities({"E": 2})) is None

    def test_bounded_verification_finds_violation(self):
        # 2·E(x,y) <= E(x,x) + 1 fails on a 2-edge loopless database.
        instance = Theorem2Instance(
            phi_s=parse_query("E(x, y)"),
            phi_b=parse_query("E(x, x)"),
            c=2,
            c_prime=1,
        )
        violation = verify_instance_bounded(instance, Schema.from_arities({"E": 2}))
        assert violation is not None
        assert not instance.holds_on(violation)

    def test_inequalities_rejected(self):
        with pytest.raises(ReductionError):
            Theorem2Instance(
                phi_s=parse_query("E(x, y) & x != y"),
                phi_b=parse_query("E(x, y)"),
                c=2,
                c_prime=0,
            )


class TestTheorem4Instance:
    def test_max_guard_on_the_well(self, schema):
        """ρ_b ∧ (x≠x') never contains ρ_s without the guard (Section 1.2)."""
        instance = Theorem4Instance(
            rho_s=parse_query("E(x, y)"),
            rho_b=parse_query("E(u, v) & u != v"),
        )
        well = well_of_positivity(schema)
        # ρ_b(well) = 0, ρ_s(well) = 1: only max(1, ·) keeps this alive.
        assert instance.max_guard_fires_on(well)
        assert instance.holds_on(well)

    def test_violation_without_guard_effect(self):
        instance = Theorem4Instance(
            rho_s=parse_query("E(x, y) & E(u, v)"),
            rho_b=parse_query("E(x, y)"),
        )
        from repro.relational import Structure

        two_edges = Structure(
            Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 0)]}
        )
        assert not instance.holds_on(two_edges)  # 4 > max(1, 2)

    def test_b_query_inequality_budget(self):
        with pytest.raises(ReductionError):
            Theorem4Instance(
                rho_s=parse_query("E(x, y)"),
                rho_b=parse_query("E(u, v) & u != v & v != w"),
            )
        with pytest.raises(ReductionError):
            Theorem4Instance(
                rho_s=parse_query("E(x, y) & x != y"),
                rho_b=parse_query("E(u, v)"),
            )

    def test_bounded_verification(self):
        instance = Theorem4Instance(
            rho_s=parse_query("E(x, y) & E(y, x)"),
            rho_b=parse_query("E(u, v)"),
        )
        assert verify_instance_bounded(instance, Schema.from_arities({"E": 2})) is None
