"""Differential suite: batched/cached counting ≡ serial counting.

The batch evaluator and the canonicalization-keyed count cache must never
change any number — every configuration (workers ∈ {1, 2, 4}, cache on /
off / shared, every engine, the inclusion-exclusion path) is checked for
bit-identical agreement with plain serial :func:`repro.homomorphism.count`
on a seeded corpus of ~200 random / path / star / cycle queries.

The corpus is deterministic (fixed seeds), so a disagreement here is a
reproducible counterexample, not a flake.
"""

from __future__ import annotations

import pickle

import pytest

from repro.homomorphism import (
    CountCache,
    canonical_component,
    count,
    count_many,
    count_ucq,
    is_acyclic,
)
from repro.queries.product import QueryProduct
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational import Schema, Structure
from repro.workloads import (
    cycle_query,
    path_query,
    random_queries,
    star_query,
)

SCHEMA = Schema.from_arities({"E": 2, "U": 1})

STRUCTURES = [
    Structure(
        SCHEMA,
        {"E": [(0, 1), (1, 2), (2, 0), (1, 1)], "U": [(0,), (2,)]},
        domain=range(3),
    ),
    Structure(
        SCHEMA,
        {"E": [(0, 0), (0, 1), (1, 0), (2, 1), (2, 2)], "U": [(1,)]},
        domain=range(3),
    ),
]


def _corpus() -> list[tuple]:
    """~200 deterministic (query, structure) pairs of the promised shapes."""
    pairs = []
    shaped = (
        [path_query(length) for length in range(1, 9)]
        + [star_query(rays) for rays in range(1, 9)]
        + [cycle_query(length) for length in range(1, 9)]
    )
    randoms = list(
        random_queries(SCHEMA, count=50, variable_count=4, atom_count=5, seed=11)
    )
    randoms += list(
        random_queries(
            SCHEMA,
            count=25,
            variable_count=3,
            atom_count=4,
            inequality_count=2,
            seed=97,
        )
    )
    # Disconnected / factorized shapes exercise the component cache.
    randoms.append(path_query(3) * star_query(3))
    randoms.append(QueryProduct.of(cycle_query(3), 4) * QueryProduct.of(path_query(2), 3))
    for structure in STRUCTURES:
        for query in shaped + randoms:
            pairs.append((query, structure))
    return pairs


CORPUS = _corpus()


def _supports(query, engine: str) -> bool:
    if engine != "acyclic":
        return True
    if isinstance(query, QueryProduct):
        return not query.has_inequalities() and all(
            is_acyclic(factor) for factor, _ in query
        )
    return not query.has_inequalities() and is_acyclic(query)


def test_corpus_size():
    assert len(CORPUS) >= 200


@pytest.mark.parametrize("engine", ["backtracking", "treewidth", "acyclic"])
def test_count_many_matches_serial_per_engine(engine):
    pairs = [(q, d) for q, d in CORPUS if _supports(q, engine)]
    assert pairs, engine
    serial = [count(q, d, engine=engine) for q, d in pairs]
    for cache in (None, False):
        assert count_many(pairs, engine=engine, cache=cache) == serial


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_count_many_workers_bit_identical(workers):
    serial = [count(q, d) for q, d in CORPUS]
    for cache in (None, False, CountCache(max_entries=64)):
        got = count_many(CORPUS, workers=workers, cache=cache)
        assert got == serial, f"workers={workers}, cache={cache!r}"


def test_shared_cache_across_batches_stays_exact():
    shared = CountCache()
    serial = [count(q, d) for q, d in CORPUS]
    first = count_many(CORPUS, cache=shared)
    second = count_many(CORPUS, cache=shared)  # all hits the second time
    assert first == serial
    assert second == serial
    assert shared.hits > 0
    assert shared.hit_rate > 0.5


def test_inclusion_exclusion_path_matches_serial():
    pairs = [
        (q, d)
        for q, d in CORPUS
        if not isinstance(q, QueryProduct) and q.has_inequalities()
    ]
    assert pairs
    serial = [count(q, d) for q, d in pairs]
    via_ie = [
        count(q, d, use_inclusion_exclusion=True) for q, d in pairs
    ]
    assert via_ie == serial
    for cache in (None, False):
        for workers in (1, 2):
            got = count_many(
                pairs, workers=workers, cache=cache, use_inclusion_exclusion=True
            )
            assert got == serial, f"workers={workers}, cache={cache!r}"


def test_engine_cache_parameter_is_invisible():
    cache = CountCache()
    for query, structure in CORPUS:
        assert count(query, structure, cache=cache) == count(query, structure)
    assert cache.hits > 0  # the corpus repeats components


def test_count_ucq_batched_matches_serial():
    disjuncts = [
        (path_query(3), 2),
        (star_query(2), 1),
        (cycle_query(3), 3),
        (path_query(3, prefix="q"), 1),  # α-equivalent to the first disjunct
    ]
    ucq = UnionOfConjunctiveQueries(disjuncts)
    for structure in STRUCTURES:
        serial = count_ucq(ucq, structure)
        assert count_ucq(ucq, structure, cache=CountCache()) == serial
        assert count_ucq(ucq, structure, workers=2) == serial


def test_canonical_component_identifies_alpha_equivalent_queries():
    renamed = path_query(4, prefix="left")
    other = path_query(4, prefix="right")
    assert renamed != other
    assert canonical_component(renamed) == canonical_component(other)
    # Non-isomorphic components must never collide.
    assert canonical_component(path_query(4)) != canonical_component(cycle_query(4))
    assert canonical_component(star_query(3)) != canonical_component(path_query(3))


def test_canonical_component_preserves_counts():
    for query, structure in CORPUS:
        if isinstance(query, QueryProduct):
            continue
        for component in query.connected_components():
            assert count(canonical_component(component), structure) == count(
                component, structure
            )


def test_query_objects_pickle_for_the_process_pool():
    for query, structure in CORPUS[:20]:
        assert pickle.loads(pickle.dumps(query)) == query
        assert pickle.loads(pickle.dumps(structure)) == structure


def test_lru_eviction_keeps_counts_exact():
    tiny = CountCache(max_entries=2)
    serial = [count(q, d) for q, d in CORPUS]
    assert count_many(CORPUS, cache=tiny) == serial
    assert tiny.evictions > 0
    assert len(tiny) <= 2


def test_lru_evicted_entry_recomputed_under_workers_matches():
    """An evicted component re-counted by a pool worker gives the same value.

    A 2-entry cache thrashes on this corpus, so most components are
    evicted and recomputed — possibly in a different worker process than
    the one that first counted them.  Both passes must still be
    bit-identical to the serial baseline.
    """
    serial = [count(q, d) for q, d in CORPUS]
    tiny = CountCache(max_entries=2)
    assert count_many(CORPUS, workers=2, cache=tiny) == serial
    assert tiny.evictions > 0
    # Second sweep: everything evicted the first time is recomputed.
    assert count_many(CORPUS, workers=2, cache=tiny) == serial
    assert len(tiny) <= 2


class TestNamedPickling:
    """``_Named.__reduce__`` must round-trip terms through the process pool."""

    def test_reduce_reconstructs_by_name(self):
        from repro.queries.terms import Constant, Variable

        assert Variable("x").__reduce__() == (Variable, ("x",))
        assert Constant("s").__reduce__() == (Constant, ("s",))

    def test_round_trip_preserves_equality_and_hash(self):
        from repro.queries.terms import Constant, Variable

        for term in (Variable("x"), Constant("s")):
            clone = pickle.loads(pickle.dumps(term))
            assert clone == term
            assert hash(clone) == hash(term)
        # The subclass distinction survives: same name, different kind.
        assert pickle.loads(pickle.dumps(Constant("x"))) != Variable("x")

    def test_every_workloads_query_shape_round_trips(self):
        from repro.queries.terms import Constant, Variable
        from repro.workloads import random_query

        with_constants = path_query(3).rename(
            {Variable("p0"): Constant("s"), Variable("p3"): Constant("h")}
        )
        shapes = [
            path_query(4),
            cycle_query(5),
            star_query(3),
            random_query(SCHEMA, variable_count=4, atom_count=5, seed=3),
            random_query(
                SCHEMA,
                variable_count=3,
                atom_count=4,
                inequality_count=2,
                seed=7,
            ),
            with_constants,
            path_query(2) * star_query(2),
            QueryProduct.of(cycle_query(3), 5),
        ]
        for query in shapes:
            clone = pickle.loads(pickle.dumps(query))
            assert clone == query
            assert hash(clone) == hash(query)
            if not isinstance(query, QueryProduct):
                assert clone.variables == query.variables
                assert clone.constants == query.constants


def test_count_many_rejects_bad_arguments():
    from repro.errors import EvaluationError

    with pytest.raises(EvaluationError):
        count_many([(path_query(2), STRUCTURES[0])], engine="nope")
    with pytest.raises(ValueError):
        count_many([(path_query(2), STRUCTURES[0])], workers=0)
    with pytest.raises(TypeError):
        count_many([(path_query(2), STRUCTURES[0])], cache=42)
    with pytest.raises(EvaluationError):
        count_many([("not a query", STRUCTURES[0])])


def test_count_many_empty_batch():
    assert count_many([]) == []


class TestBatchedSearchParity:
    """Batched candidate checking must reproduce the serial verdicts."""

    def _stream(self, count_=40, seed=3):
        from repro.decision.search import random_structures

        return list(
            random_structures(SCHEMA, domain_size=3, count=count_, seed=seed)
        )

    @pytest.mark.parametrize("batch_size", [1, 3, 16])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_counterexample_identical(self, workers, batch_size):
        from repro.decision.search import find_counterexample

        phi_s = cycle_query(3)
        phi_b = path_query(5)
        stream = self._stream()
        serial = find_counterexample(phi_s, phi_b, stream, multiplier=2)
        batched = find_counterexample(
            phi_s,
            phi_b,
            stream,
            multiplier=2,
            workers=workers,
            batch_size=batch_size,
        )
        assert batched.found == serial.found
        assert batched.counterexample == serial.counterexample
        assert batched.checked == serial.checked
        assert (batched.lhs, batched.rhs) == (serial.lhs, serial.rhs)

    def test_exhausted_identical(self):
        from repro.decision.search import find_counterexample

        phi_s = path_query(2)
        phi_b = path_query(1)
        stream = self._stream(count_=12, seed=8)
        # paths of length 2 never outnumber paths of length 1 by 1000x here
        serial = find_counterexample(
            phi_s, phi_b, stream, multiplier=1, additive=10**6
        )
        batched = find_counterexample(
            phi_s,
            phi_b,
            stream,
            multiplier=1,
            additive=10**6,
            workers=2,
            batch_size=5,
        )
        assert not serial.found and not batched.found
        assert batched.checked == serial.checked

    @pytest.mark.parametrize("batch_size", [1, 4, 64])
    def test_budget_semantics_identical(self, batch_size):
        from repro.decision.search import find_counterexample
        from repro.errors import SearchBudgetExceeded

        phi_s = path_query(2)
        phi_b = path_query(1)
        stream = self._stream(count_=20, seed=8)
        with pytest.raises(SearchBudgetExceeded):
            find_counterexample(
                phi_s, phi_b, stream, additive=10**6, max_candidates=7
            )
        with pytest.raises(SearchBudgetExceeded):
            find_counterexample(
                phi_s,
                phi_b,
                stream,
                additive=10**6,
                max_candidates=7,
                batch_size=batch_size,
            )

    def test_predicate_filter_identical(self):
        from repro.decision.search import find_counterexample

        stream = self._stream(count_=30, seed=5)
        predicate = lambda s: s.fact_count() % 2 == 0  # noqa: E731
        serial = find_counterexample(
            cycle_query(3), path_query(5), stream, multiplier=2, predicate=predicate
        )
        batched = find_counterexample(
            cycle_query(3),
            path_query(5),
            stream,
            multiplier=2,
            predicate=predicate,
            workers=2,
            batch_size=4,
        )
        assert batched.counterexample == serial.counterexample
        assert batched.checked == serial.checked

    def test_verify_bounded_batched_verdict(self):
        from repro.decision.bounded import verify_bounded

        # E(x,y) ≤ E(x,y)·|walks| fails, E(x,y) ≤ E(x,y) holds — use a
        # true containment so both paths sweep the whole space.
        phi = path_query(1)
        serial = verify_bounded(
            phi, phi, Schema.from_arities({"E": 2}), domain_size=2,
            require_nontrivial=False, max_facts_per_relation=2,
        )
        batched = verify_bounded(
            phi, phi, Schema.from_arities({"E": 2}), domain_size=2,
            require_nontrivial=False, max_facts_per_relation=2,
            workers=2, cache=CountCache(),
        )
        assert serial.holds_on_sample and batched.holds_on_sample
        assert batched.checked == serial.checked

    def test_search_cache_reuse_across_generations(self):
        from repro.decision.search import find_counterexample
        from repro.obs import observe

        stream = self._stream(count_=20, seed=13)
        shared = CountCache()
        with observe() as obs:
            find_counterexample(
                path_query(3),
                star_query(3),
                stream,
                additive=10**6,
                batch_size=4,
                cache=shared,
            )
        metrics = obs.report()["metrics"]
        # phi_s and phi_b components are re-keyed per structure, but the
        # batch layer still reuses within each flush and the counters flow.
        assert metrics["batch.tasks"]["value"] > 0
        assert metrics["search.batches"]["value"] == 5
        assert shared.misses > 0
