"""Tests for JSON serialization of queries and structures."""

import pytest

from repro.io import (
    SerializationError,
    dumps,
    loads,
    open_query_from_dict,
    open_query_to_dict,
    product_from_dict,
    product_to_dict,
    query_from_dict,
    query_to_dict,
    schema_from_dict,
    schema_to_dict,
    structure_from_dict,
    structure_to_dict,
)
from repro.queries import OpenQuery, QueryProduct, parse_query
from repro.relational import Schema, Structure


class TestRoundTrips:
    def test_schema(self):
        schema = Schema.from_arities({"E": 2, "R": 7})
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_structure_with_mixed_elements(self):
        schema = Schema.from_arities({"E": 2})
        structure = Structure(
            schema,
            {"E": [(1, "a"), (("t", 1), 2)]},
            constants={"spade": 1, "heart": ("t", 1)},
            domain=[99],
        )
        assert structure_from_dict(structure_to_dict(structure)) == structure

    def test_query_with_inequalities_and_constants(self):
        query = parse_query("E(x, #a) & E(x, y) & x != y & y != #a")
        assert query_from_dict(query_to_dict(query)) == query

    def test_open_query(self):
        query = OpenQuery(parse_query("E(x, y) & E(y, z)"), ("x", "z"))
        assert open_query_from_dict(open_query_to_dict(query)) == query

    def test_query_product_with_big_exponent(self):
        product = QueryProduct.of(parse_query("E(x, y)"), 10**60)
        assert product_from_dict(product_to_dict(product)) == product

    def test_dumps_loads_every_type(self):
        objects = [
            Schema.from_arities({"E": 2}),
            Structure(Schema.from_arities({"E": 2}), {"E": [(0, 1)]}),
            parse_query("E(x, y) & x != y"),
            OpenQuery(parse_query("E(x, y)"), ("x",)),
            QueryProduct.of(parse_query("E(x, y)"), 3),
        ]
        for obj in objects:
            assert loads(dumps(obj)) == obj

    def test_counterexample_database_roundtrip(self, minimal_lemma11):
        """A Theorem 1 counterexample survives serialization with its counts."""
        from repro.core import theorem1_reduction
        from repro.homomorphism import count

        reduction = theorem1_reduction(minimal_lemma11)
        witness = reduction.find_counterexample(2)
        assert witness is not None
        restored = loads(dumps(witness))
        assert restored == witness
        assert count(reduction.pi_s, restored) == count(reduction.pi_s, witness)


class TestErrors:
    def test_unsupported_element(self):
        schema = Schema.from_arities({"E": 2})
        structure = Structure(schema, {"E": [(object(), 1)]})
        with pytest.raises(SerializationError):
            structure_to_dict(structure)

    def test_unsupported_object(self):
        with pytest.raises(SerializationError):
            dumps(42)

    def test_malformed_envelope(self):
        with pytest.raises(SerializationError):
            loads("not json at all {")
        with pytest.raises(SerializationError):
            loads('{"type": "nonsense", "payload": {}}')

    def test_malformed_term(self):
        with pytest.raises(SerializationError):
            query_from_dict({"atoms": [{"relation": "E", "terms": [{"x": 1}]}]})

    def test_malformed_element(self):
        with pytest.raises(SerializationError):
            structure_from_dict(
                {
                    "schema": {"relations": {"E": 2}},
                    "facts": {"E": [[{"bad": 1}, 2]]},
                }
            )
