"""Tests for the homomorphism engines: counting, enumeration, existence.

Includes the differential tests that pin the two engines (backtracking and
tree-decomposition DP) against the brute-force reference counter.
"""

import pytest

from repro.errors import ConstantError, EvaluationError
from repro.homomorphism import (
    count,
    count_homomorphisms,
    count_homomorphisms_td,
    enumerate_homomorphisms,
    exists_homomorphism,
    is_homomorphism,
    query_treewidth,
)
from repro.queries import Atom, ConjunctiveQuery, Constant, Inequality, Variable, parse_query
from repro.relational import Schema, Structure

from tests.conftest import brute_force_count


@pytest.fixture
def structure():
    return Structure(
        Schema.from_arities({"E": 2, "U": 1}),
        {"E": [(0, 1), (1, 2), (2, 0), (0, 0)], "U": [(0,), (2,)]},
    )


class TestCounting:
    def test_single_edge(self, structure):
        assert count(parse_query("E(x, y)"), structure) == 4

    def test_loop(self, structure):
        assert count(parse_query("E(x, x)"), structure) == 1

    def test_triangle(self, structure):
        assert count(parse_query("E(x, y) & E(y, z) & E(z, x)"), structure) == 4

    def test_with_unary(self, structure):
        assert count(parse_query("E(x, y) & U(x)"), structure) == 3

    def test_with_constant(self):
        d = Structure(
            Schema.from_arities({"E": 2}),
            {"E": [(0, 1), (0, 2)]},
            constants={"a": 0},
        )
        assert count(parse_query("E(#a, z)"), d) == 2

    def test_missing_constant_raises(self, structure):
        with pytest.raises(ConstantError):
            count(parse_query("E(#nope, x)"), structure)

    def test_acyclic_engine_dispatch(self, structure):
        query = parse_query("E(x, y) & E(y, z)")
        assert count(query, structure, engine="acyclic") == count(query, structure)

    def test_unknown_relation_is_empty(self, structure):
        """A relation the structure does not declare is interpreted as empty."""
        assert count(parse_query("F(x, y)"), structure) == 0
        assert count(parse_query("F(x, y)"), structure, engine="treewidth") == 0

    def test_arity_mismatch_raises(self, structure):
        query = ConjunctiveQuery([Atom("E", (Variable("x"),))])
        with pytest.raises(EvaluationError):
            count(query, structure)

    def test_empty_query_counts_one(self, structure):
        assert count(parse_query("TRUE"), structure) == 1

    def test_inequality_only_query(self, structure):
        # Three elements: ordered pairs with distinct members = 3*2 = 6.
        assert count(parse_query("x != y"), structure) == 6

    def test_unconstrained_variable(self, structure):
        # z ranges over the whole domain.
        assert count(parse_query("E(x, x), z != x"), structure) == 2

    def test_duplicate_variable_in_atom(self, structure):
        query = parse_query("E(x, x) & E(x, y)")
        assert count(query, structure) == 2  # x=0, y in {0,1}


class TestInequalities:
    def test_simple(self, structure):
        with_ineq = count(parse_query("E(x, y) & x != y"), structure)
        without = count(parse_query("E(x, y)"), structure)
        assert with_ineq == without - 1  # only the loop is excluded

    def test_constant_inequality(self):
        d = Structure(
            Schema.from_arities({"E": 2}),
            {"E": [(0, 1), (0, 0)]},
            constants={"a": 0},
        )
        assert count(parse_query("E(#a, y) & y != #a"), d) == 1

    def test_trivially_false(self, structure):
        query = ConjunctiveQuery(
            [Atom("E", (Variable("x"), Variable("y")))],
            [Inequality(Variable("x"), Variable("x"))],
        )
        assert count(query, structure) == 0

    def test_ground_inequality_between_constants(self):
        d = Structure(
            Schema.from_arities({"E": 2}),
            {"E": [(0, 1)]},
            constants={"a": 0, "b": 0},
        )
        assert count(parse_query("E(x, y) & #a != #b"), d) == 0

    def test_many_inequalities_fall_back(self, structure):
        # 13 inequalities exceed the inclusion-exclusion limit; the direct
        # engine must still agree with brute force.
        variables = [Variable(f"v{i}") for i in range(5)]
        atoms = [Atom("E", (variables[i], variables[(i + 1) % 5])) for i in range(5)]
        inequalities = [
            Inequality(variables[i], variables[j])
            for i in range(5)
            for j in range(i + 1, 5)
        ][:13]
        query = ConjunctiveQuery(atoms, inequalities)
        assert count(query, structure) == brute_force_count(query, structure)


class TestEnumeration:
    def test_enumeration_matches_count(self, structure):
        query = parse_query("E(x, y) & U(y) & x != y")
        homs = list(enumerate_homomorphisms(query, structure))
        assert len(homs) == count(query, structure)
        assert all(is_homomorphism(h, query, structure) for h in homs)

    def test_enumeration_distinct(self, structure):
        query = parse_query("E(x, y)")
        homs = [tuple(sorted(h.items())) for h in enumerate_homomorphisms(query, structure)]
        assert len(homs) == len(set(homs))

    def test_exists(self, structure):
        assert exists_homomorphism(parse_query("E(x, x)"), structure)
        assert not exists_homomorphism(parse_query("U(x) & E(x, x) & U(y) & E(y, y) & x != y"), structure)


class TestTreewidthEngine:
    def test_agrees_on_cycles(self, structure):
        for length in (2, 3, 4, 6):
            variables = [Variable(f"c{i}") for i in range(length)]
            query = ConjunctiveQuery(
                Atom("E", (variables[i], variables[(i + 1) % length]))
                for i in range(length)
            )
            assert count_homomorphisms_td(query, structure) == count_homomorphisms(
                query, structure
            )

    def test_treewidth_of_path_is_one(self):
        assert query_treewidth(parse_query("E(x, y) & E(y, z) & E(z, w)")) == 1

    def test_treewidth_of_triangle_is_two(self):
        assert query_treewidth(parse_query("E(x, y) & E(y, z) & E(z, x)")) == 2

    def test_empty_query(self, structure):
        assert count_homomorphisms_td(parse_query("TRUE"), structure) == 1


class TestDifferential:
    """Randomized cross-validation of all engines against brute force."""

    @pytest.mark.parametrize("seed", range(40))
    def test_engines_agree(self, seed):
        import random

        rng = random.Random(seed)
        schema = Schema.from_arities({"E": 2, "U": 1})
        n = rng.randint(1, 4)
        d = Structure(
            schema,
            {
                "E": {(rng.randint(0, n), rng.randint(0, n)) for _ in range(6)},
                "U": {(rng.randint(0, n),) for _ in range(3)},
            },
            domain=range(n + 1),
        )
        variables = [Variable(f"v{i}") for i in range(rng.randint(1, 4))]
        atoms = [
            Atom("E", (rng.choice(variables), rng.choice(variables)))
            for _ in range(rng.randint(0, 4))
        ]
        atoms += [Atom("U", (rng.choice(variables),)) for _ in range(rng.randint(0, 2))]
        inequalities = [
            Inequality(rng.choice(variables), rng.choice(variables))
            for _ in range(rng.randint(0, 2))
        ]
        query = ConjunctiveQuery(atoms, inequalities)
        expected = brute_force_count(query, d)
        assert count(query, d) == expected
        assert count(query, d, engine="treewidth") == expected
        assert count(query, d, use_inclusion_exclusion=True) == expected
        assert sum(1 for _ in enumerate_homomorphisms(query, d)) == expected
        for flags in (
            dict(subtree_memo=False),
            dict(component_split=False),
            dict(private_counting=False),
            dict(subtree_memo=False, component_split=False, private_counting=False),
        ):
            assert count_homomorphisms(query, d, **flags) == expected
