"""Tests for structure operations: union, product, power, blow-up.

The quantitative facts pinned here are Lemma 22 of the paper:
``φ(blowup(D,k)) = k^j·φ(D)`` (``j`` = number of variables) and
``φ(D^{×k}) = φ(D)^k``, for CQs without inequality.
"""

import pytest

from repro.errors import ConstantError
from repro.homomorphism import count
from repro.naming import HEART, SPADE
from repro.queries import parse_query
from repro.relational import (
    Schema,
    Structure,
    blowup,
    disjoint_union,
    power,
    product,
)


@pytest.fixture
def schema():
    return Schema.from_arities({"E": 2})


@pytest.fixture
def two_cycle(schema):
    return Structure(schema, {"E": [(0, 1), (1, 0)]})


class TestDisjointUnion:
    def test_merges_schemas_and_facts(self, schema):
        left = Structure(schema, {"E": [(0, 1)]})
        right = Structure(Schema.from_arities({"U": 1}), {"U": [(0,)]})
        union = disjoint_union(left, right)
        assert union.fact_count("E") == 1
        assert union.fact_count("U") == 1
        assert len(union.domain) == 3  # elements are kept apart

    def test_shared_constants_identified(self, schema):
        left = Structure(schema, {"E": [(0, 1)]}, constants={SPADE: 0, HEART: 1})
        right = Structure(
            Schema.from_arities({"U": 1}), {"U": [(5,)]}, constants={SPADE: 5}
        )
        union = disjoint_union(left, right)
        assert union.is_nontrivial()
        # The spade elements of both sides became one element.
        assert union.has_fact("U", (union.interpret(SPADE),))
        assert union.has_fact("E", (union.interpret(SPADE), union.interpret(HEART)))

    def test_ambiguous_constant_grouping_rejected(self, schema):
        left = Structure(schema, constants={"a": 0})
        right = Structure(schema, constants={"a": 0, "b": 0})
        with pytest.raises(ConstantError):
            disjoint_union(left, right)

    def test_count_multiplies_across_disjoint_schemas(self, schema):
        left = Structure(schema, {"E": [(0, 1), (1, 0)]})
        right = Structure(Schema.from_arities({"F": 2}), {"F": [(0, 1)]})
        union = disjoint_union(left, right)
        phi = parse_query("E(x, y)")
        psi = parse_query("F(u, v)")
        assert count(phi, union) == 2
        assert count(psi, union) == 1
        assert count(phi & psi, union) == 2


class TestProduct:
    def test_product_facts(self, two_cycle):
        squared = product(two_cycle, two_cycle)
        assert squared.fact_count("E") == 4
        assert ((0, 0), (1, 1)) in squared.facts("E")

    def test_count_multiplies(self, two_cycle):
        phi = parse_query("E(x, y) & E(y, x)")
        assert count(phi, product(two_cycle, two_cycle)) == count(phi, two_cycle) ** 2

    def test_constants_componentwise(self, schema):
        d = Structure(schema, {"E": [(0, 1)]}, constants={"a": 0})
        squared = product(d, d)
        assert squared.interpret("a") == (0, 0)

    def test_constant_dropped_when_one_side_lacks_it(self, schema):
        left = Structure(schema, {"E": [(0, 1)]}, constants={"a": 0})
        right = Structure(schema, {"E": [(0, 1)]})
        assert not product(left, right).interprets("a")


class TestPower:
    def test_power_one_matches_base_counts(self, two_cycle):
        phi = parse_query("E(x, y)")
        assert count(phi, power(two_cycle, 1)) == count(phi, two_cycle)

    @pytest.mark.parametrize("k", [2, 3])
    def test_lemma22_ii(self, two_cycle, k):
        phi = parse_query("E(x, y) & E(y, x)")
        assert count(phi, power(two_cycle, k)) == count(phi, two_cycle) ** k

    def test_power_constants(self, schema):
        d = Structure(schema, {"E": [(0, 0)]}, constants={"a": 0})
        assert power(d, 3).interpret("a") == (0, 0, 0)

    def test_power_requires_positive(self, two_cycle):
        with pytest.raises(ValueError):
            power(two_cycle, 0)


class TestBlowup:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_lemma22_i(self, two_cycle, k):
        phi = parse_query("E(x, y) & E(y, x)")
        expected = k ** phi.variable_count * count(phi, two_cycle)
        assert count(phi, blowup(two_cycle, k)) == expected

    def test_blowup_with_constants_scales_by_variables_only(self, schema):
        d = Structure(schema, {"E": [(0, 1)]}, constants={"a": 0})
        phi = parse_query("E(#a, y)")
        # One variable: blowing up by 3 triples the count (the constant is pinned).
        assert count(phi, blowup(d, 3)) == 3 * count(phi, d)

    def test_domain_size(self, two_cycle):
        assert len(blowup(two_cycle, 4).domain) == 4 * len(two_cycle.domain)

    def test_blowup_requires_positive(self, two_cycle):
        with pytest.raises(ValueError):
            blowup(two_cycle, 0)
