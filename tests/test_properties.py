"""Property-based tests (hypothesis) for the core algebraic laws.

Each property is one of the paper's counting identities quantified over
random queries and structures:

* Lemma 1 — disjoint conjunction multiplies counts;
* Definition 2 — query powers exponentiate counts;
* Lemma 22 — blow-up and product identities;
* engine agreement — backtracking = tree-decomposition DP = brute force;
* monotonicity — adding facts never decreases a count;
* parser round-trips and polynomial evaluation being a ring homomorphism.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.homomorphism import count, count_homomorphisms_td
from repro.polynomials import Monomial, Polynomial
from repro.queries import Atom, ConjunctiveQuery, Inequality, Variable, parse_query
from repro.relational import Schema, Structure, blowup, power

from tests.conftest import brute_force_count

SCHEMA = Schema.from_arities({"E": 2, "U": 1})

elements = st.integers(min_value=0, max_value=3)


@st.composite
def structures(draw) -> Structure:
    edge_facts = draw(
        st.sets(st.tuples(elements, elements), min_size=0, max_size=7)
    )
    unary_facts = draw(st.sets(st.tuples(elements), min_size=0, max_size=3))
    return Structure(
        SCHEMA, {"E": edge_facts, "U": unary_facts}, domain=range(4)
    )


@st.composite
def queries(draw, max_variables: int = 4, max_inequalities: int = 2) -> ConjunctiveQuery:
    variable_count = draw(st.integers(1, max_variables))
    variables = [Variable(f"v{i}") for i in range(variable_count)]
    pick = st.sampled_from(variables)
    atom_count = draw(st.integers(1, 4))
    atoms = []
    for _ in range(atom_count):
        if draw(st.booleans()):
            atoms.append(Atom("E", (draw(pick), draw(pick))))
        else:
            atoms.append(Atom("U", (draw(pick),)))
    inequality_count = draw(st.integers(0, max_inequalities))
    inequalities = [
        Inequality(draw(pick), draw(pick)) for _ in range(inequality_count)
    ]
    return ConjunctiveQuery(atoms, inequalities)


@settings(max_examples=60, deadline=None)
@given(queries(max_inequalities=0), queries(max_inequalities=0), structures())
def test_lemma1_disjoint_conjunction_multiplies(rho, rho_prime, structure):
    assert count(rho * rho_prime, structure) == count(rho, structure) * count(
        rho_prime, structure
    )


@settings(max_examples=40, deadline=None)
@given(queries(), structures(), st.integers(0, 3))
def test_definition2_power(theta, structure, k):
    assert count(theta**k, structure) == count(theta, structure) ** k


@settings(max_examples=40, deadline=None)
@given(queries(max_inequalities=0), structures(), st.integers(1, 3))
def test_lemma22_blowup(phi, structure, k):
    expected = k**phi.variable_count * count(phi, structure)
    assert count(phi, blowup(structure, k)) == expected


@settings(max_examples=25, deadline=None)
@given(queries(max_inequalities=0), structures(), st.integers(1, 2))
def test_lemma22_product_power(phi, structure, k):
    assert count(phi, power(structure, k)) == count(phi, structure) ** k


@settings(max_examples=60, deadline=None)
@given(queries(), structures())
def test_engines_agree_with_brute_force(query, structure):
    expected = brute_force_count(query, structure)
    assert count(query, structure) == expected
    assert count_homomorphisms_td(query, structure) == expected
    assert count(query, structure, engine="compiled") == expected
    assert count(query, structure, use_inclusion_exclusion=True) == expected


@settings(max_examples=60, deadline=None)
@given(queries(max_inequalities=0), structures())
def test_compiled_engine_agrees_without_fallback(query, structure):
    """Inequality-free instances hit the actual specializer (no
    interpreter fallback), both chain and array modes, and must still
    match brute force exactly."""
    from repro.homomorphism import compiled_supported

    assert compiled_supported(query, structure)
    assert count(query, structure, engine="compiled") == brute_force_count(
        query, structure
    )


@settings(max_examples=40, deadline=None)
@given(queries(max_inequalities=0), queries(max_inequalities=0), structures())
def test_lemma1_multiplicativity_under_compilation(rho, rho_prime, structure):
    assert count(rho * rho_prime, structure, engine="compiled") == count(
        rho, structure, engine="compiled"
    ) * count(rho_prime, structure, engine="compiled")


@settings(max_examples=40, deadline=None)
@given(queries(), structures(), st.integers(0, 3))
def test_definition2_power_under_compilation(theta, structure, k):
    assert (
        count(theta**k, structure, engine="compiled")
        == count(theta, structure, engine="compiled") ** k
    )


@settings(max_examples=40, deadline=None)
@given(queries(max_inequalities=0), structures(), st.tuples(elements, elements))
def test_monotone_in_facts(query, structure, extra_edge):
    richer = structure.with_fact("E", extra_edge)
    assert count(query, structure) <= count(query, richer)


@settings(max_examples=60, deadline=None)
@given(queries())
def test_parser_roundtrip(query):
    assert parse_query(str(query)) == query


@settings(max_examples=40, deadline=None)
@given(queries(), structures())
def test_component_factorization(query, structure):
    total = 1
    for component in query.connected_components():
        total *= count(component, structure)
    assert count(query, structure) == total


# -- polynomial laws ---------------------------------------------------------

coefficients = st.integers(min_value=-4, max_value=4)


@st.composite
def polynomials(draw) -> Polynomial:
    term_count = draw(st.integers(0, 4))
    terms = []
    for _ in range(term_count):
        indices = draw(st.lists(st.integers(1, 3), min_size=0, max_size=3))
        terms.append((Monomial(tuple(sorted(indices))), draw(coefficients)))
    return Polynomial(terms)


@st.composite
def valuations(draw) -> dict[int, int]:
    return {index: draw(st.integers(0, 4)) for index in (1, 2, 3)}


@settings(max_examples=60, deadline=None)
@given(polynomials(), polynomials(), valuations())
def test_evaluation_is_ring_homomorphism(p, q, valuation):
    assert (p + q).evaluate(valuation) == p.evaluate(valuation) + q.evaluate(valuation)
    assert (p * q).evaluate(valuation) == p.evaluate(valuation) * q.evaluate(valuation)
    assert (-p).evaluate(valuation) == -p.evaluate(valuation)


@settings(max_examples=60, deadline=None)
@given(polynomials(), valuations())
def test_sign_split_reassembles(p, valuation):
    positive, negative = p.split_signs()
    assert positive.has_natural_coefficients() or positive.is_zero()
    assert negative.has_natural_coefficients() or negative.is_zero()
    assert positive - negative == p


@settings(max_examples=30, deadline=None)
@given(polynomials(), valuations())
def test_lemma25_on_random_polynomials(q, valuation):
    """Q(Ξ)=0 ⟺ P₁(Ξ) > P₂(Ξ) for the Appendix B split of Q² ."""
    from repro.polynomials import hilbert_to_lemma11

    reduction = hilbert_to_lemma11(q)
    renamed = {
        reduction.variable_renaming.get(index, index): value
        for index, value in valuation.items()
    }
    renamed.setdefault(1, 1)
    has_root = reduction.q.evaluate(renamed) == 0
    dominates = reduction.p1.evaluate(renamed) > reduction.p2.evaluate(renamed)
    assert has_root == dominates


# -- cyclique combinatorics ----------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=3, max_size=8), st.integers(0, 10))
def test_cyclique_classification_shift_invariant(values, k):
    from repro.core import classify_cyclique, cyclass, cyclic_shift

    tup = tuple(values)
    shifted = cyclic_shift(tup, k)
    assert classify_cyclique(tup) == classify_cyclique(shifted)
    assert cyclass(tup) == cyclass(shifted)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=3, max_size=9))
def test_cyclass_size_divides_length(values):
    from repro.core import cyclass

    tup = tuple(values)
    assert len(tup) % len(cyclass(tup)) == 0


# -- answer multisets -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(queries(max_inequalities=1), structures())
def test_answer_multiset_sums_to_boolean_count(query, structure):
    """Σ over answers of Ψ(D) equals the boolean count of the body."""
    from repro.queries import OpenQuery

    head = tuple(sorted(query.variables))[:2]
    open_query = OpenQuery(query, head)
    answers = open_query.answers(structure)
    assert sum(answers.values()) == count(query, structure)


@settings(max_examples=40, deadline=None)
@given(queries(max_inequalities=0), structures())
def test_grounded_answer_multiplicity(query, structure):
    """Grounding the head at an answer reproduces its multiplicity."""
    from repro.queries import OpenQuery

    head = tuple(sorted(query.variables))[:1]
    open_query = OpenQuery(query, head)
    answers = open_query.answers(structure)
    for answer, multiplicity in list(answers.items())[:3]:
        grounded, fragment = open_query.ground(answer)
        enriched = structure
        for name, element in fragment.constants.items():
            enriched = enriched.with_constant(name, element)
        assert count(grounded, enriched) == multiplicity


# -- serialization and equivalence ---------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(queries())
def test_serialization_roundtrip(query):
    from repro.io import dumps, loads

    assert loads(dumps(query)) == query


@settings(max_examples=40, deadline=None)
@given(structures())
def test_structure_serialization_roundtrip(structure):
    from repro.io import dumps, loads

    assert loads(dumps(structure)) == structure


@settings(max_examples=30, deadline=None)
@given(queries(max_inequalities=0), structures())
def test_renamed_queries_are_bag_equivalent(query, structure):
    """Alpha-renaming is an isomorphism, so counts agree (Chaudhuri–Vardi)."""
    from repro.decision import bag_equivalent
    from repro.naming import NameSupply

    renamed = query.rename_apart(NameSupply({v.name for v in query.variables}))
    assert bag_equivalent(query, renamed)
    assert count(query, structure) == count(renamed, structure)


@settings(max_examples=25, deadline=None)
@given(queries(max_inequalities=0))
def test_core_is_set_equivalent_retract(query):
    from repro.decision import core, set_equivalent

    minimized = core(query)
    assert minimized.atom_count <= query.atom_count
    assert set_equivalent(query, minimized)
    assert core(minimized) == minimized
