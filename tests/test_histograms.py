"""The streaming latency histogram: boundaries, quantiles, merge.

The histogram's contract is *determinism under aggregation*: fixed
log-spaced boundaries shared by every instance, quantiles read as bucket
upper edges, and an element-wise merge — so two histograms recorded on
different threads (or scraped at different times) combine into exactly
the histogram of the combined stream, and a quantile computed from a
bucket-count *delta* (the load generator's trick) is as trustworthy as
one computed live.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import observe
from repro.obs.metrics import (
    HISTOGRAM_BOUNDARIES_S,
    Histogram,
    Registry,
    quantile_from_bucket_counts,
)


class TestBoundaries:
    def test_boundary_ladder_shape(self):
        # 8 buckets per decade across 100 µs .. 100 s: 6 decades + 1.
        assert len(HISTOGRAM_BOUNDARIES_S) == 49
        assert HISTOGRAM_BOUNDARIES_S[0] == pytest.approx(1e-4)
        assert HISTOGRAM_BOUNDARIES_S[-1] == pytest.approx(100.0)

    def test_boundaries_strictly_increasing(self):
        assert all(
            a < b
            for a, b in zip(HISTOGRAM_BOUNDARIES_S, HISTOGRAM_BOUNDARIES_S[1:])
        )

    def test_exact_decades_are_boundaries(self):
        for decade in (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0):
            assert any(
                boundary == pytest.approx(decade, rel=1e-9)
                for boundary in HISTOGRAM_BOUNDARIES_S
            ), decade


class TestHistogram:
    def test_observe_lands_in_le_bucket(self):
        histogram = Histogram("h")
        histogram.observe(0.0005)  # 0.5 ms
        buckets = histogram.bucket_counts()
        assert sum(buckets.values()) == 1
        [(key, count)] = buckets.items()
        assert count == 1
        # le-semantics: the bucket's boundary is >= the observation.
        assert float(key) >= 0.5

    def test_observation_beyond_ladder_overflows(self):
        histogram = Histogram("h")
        histogram.observe(250.0)  # beyond the 100 s top boundary
        assert histogram.bucket_counts() == {"inf": 1}

    def test_snapshot_carries_quantiles_and_type(self):
        histogram = Histogram("h")
        for ms in range(1, 101):
            histogram.observe(ms / 1000.0)
        snapshot = histogram.snapshot()
        assert snapshot["type"] == "histogram"
        assert snapshot["count"] == 100
        assert snapshot["p50_ms"] <= snapshot["p95_ms"] <= snapshot["p99_ms"]
        # Bucket-edge quantiles overestimate by at most one bucket (33%).
        assert 50.0 <= snapshot["p50_ms"] <= 50.0 * 1.34
        assert 95.0 <= snapshot["p95_ms"] <= 95.0 * 1.34

    def test_merge_equals_combined_stream(self):
        combined = Histogram("c")
        left, right = Histogram("l"), Histogram("r")
        for index in range(200):
            value = (index % 37 + 1) / 1000.0
            combined.observe(value)
            (left if index % 2 else right).observe(value)
        left.merge(right)
        assert left.bucket_counts() == combined.bucket_counts()
        assert left.snapshot()["p95_ms"] == combined.snapshot()["p95_ms"]
        assert left.snapshot()["count"] == 200

    def test_merge_order_independent(self):
        streams = [[0.001, 0.004], [0.05, 0.0001], [1.2, 0.9, 0.3]]

        def merged(order):
            histograms = []
            for stream in order:
                histogram = Histogram("h")
                for value in stream:
                    histogram.observe(value)
                histograms.append(histogram)
            target = histograms[0]
            for other in histograms[1:]:
                target.merge(other)
            return target.bucket_counts()

        assert merged(streams) == merged(list(reversed(streams)))

    def test_concurrent_observe_loses_nothing(self):
        histogram = Histogram("h")

        def record():
            for index in range(500):
                histogram.observe((index % 23 + 1) / 1000.0)

        threads = [threading.Thread(target=record) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.snapshot()["count"] == 2000
        assert sum(histogram.bucket_counts().values()) == 2000


class TestQuantileFromBucketCounts:
    def test_delta_quantile_matches_live_quantile(self):
        # The loadgen attribution path: subtracting a before-scrape from
        # an after-scrape yields the same quantiles as the run alone.
        before, run = Histogram("before"), Histogram("run")
        for ms in (1, 2, 3, 1000):
            before.observe(ms / 1000.0)
        after = Histogram("after")
        after.merge(before)
        for ms in (5, 10, 20, 40, 80):
            run.observe(ms / 1000.0)
            after.observe(ms / 1000.0)
        delta = {
            key: after.bucket_counts()[key] - before.bucket_counts().get(key, 0)
            for key in after.bucket_counts()
        }
        delta = {key: count for key, count in delta.items() if count > 0}
        assert quantile_from_bucket_counts(
            delta, 0.5
        ) == run.snapshot()["p50_ms"]
        assert quantile_from_bucket_counts(
            delta, 0.95
        ) == run.snapshot()["p95_ms"]

    def test_empty_buckets_yield_none(self):
        assert quantile_from_bucket_counts({}, 0.5) is None

    def test_overflow_reports_observed_max(self):
        assert quantile_from_bucket_counts({"inf": 3}, 0.5, 2500.0) == 2500.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            quantile_from_bucket_counts({"inf": 1}, 0.0)
        with pytest.raises(ValueError):
            quantile_from_bucket_counts({"inf": 1}, 1.5)


class TestRegistryIntegration:
    def test_histogram_is_a_timer_drop_in(self):
        registry = Registry()
        histogram = registry.histogram("service.time.evaluate")
        # Existing timer-path code may re-request the same name as a
        # timer; it must get the histogram back, not a clash.
        assert registry.timer("service.time.evaluate") is histogram
        with histogram.time():
            pass
        assert histogram.snapshot()["count"] == 1

    def test_plain_timer_cannot_become_histogram(self):
        registry = Registry()
        registry.timer("t")
        with pytest.raises(ValueError):
            registry.histogram("t")

    def test_observe_report_renders_histograms(self):
        with observe() as observation:
            observation.registry.histogram("h").observe(0.01)
        text = observation.render_text()
        assert "p95" in text
        assert "h" in text
