"""Tests for the ``repro.planner`` cost-based query planner.

Two properties carry the subsystem:

1. **Parity** — ``engine="auto"`` is bit-identical to every explicit
   engine on the seeded differential corpus, through the serial, cached,
   batched, and multi-worker paths alike (the planner may only ever
   change *where* a component is counted, never the count).
2. **Sanity of the structural analysis** — GYO acyclicity and the greedy
   treewidth bound are exact on the classic shapes (paths, cycles,
   CYCLIQ) that the paper's gadget families are built from.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.cycliq import cycliq
from repro.homomorphism.batch import count_many
from repro.homomorphism.cache import CountCache
from repro.homomorphism.engine import count, count_ucq
from repro.obs import observe
from repro.planner import (
    Plan,
    PlanCache,
    analyze_component,
    eligible_engines,
    estimate_cost,
    get_constants,
    greedy_treewidth_bound,
    plan,
    select_engine,
    select_for,
    use_constants,
)
from repro.qa.generators import case_at
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_query
from repro.queries.product import QueryProduct
from repro.queries.terms import Variable
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.schema import Schema
from repro.relational.structure import Structure
from repro.workloads.random_queries import cycle_query, path_query


@pytest.fixture
def edge_path(edge_schema: Schema) -> Structure:
    """A directed path on 6 elements — big enough to separate the engines."""
    return Structure(edge_schema, {"E": [(i, i + 1) for i in range(5)]})


@pytest.fixture
def dense(edge_schema: Schema) -> Structure:
    """A dense 5-element digraph: joins explode, DP tables stay small."""
    edges = [(i, j) for i in range(5) for j in range(5)]
    return Structure(edge_schema, {"E": edges})


class TestTreewidthBound:
    def test_path_is_width_one(self):
        assert greedy_treewidth_bound(path_query(5)) == 1

    def test_cycle_is_width_two(self):
        assert greedy_treewidth_bound(cycle_query(6)) == 2

    def test_cycliq_primal_clique(self):
        # CYCLIQ's rotations all share one variable set, so the primal
        # graph is K_p and min-degree elimination reports p - 1.
        variables = tuple(Variable(f"x{i}") for i in range(4))
        assert greedy_treewidth_bound(cycliq("R", variables)) == 3

    def test_single_atom(self):
        assert greedy_treewidth_bound(parse_query("E(x, y)")) == 1

    def test_empty_query(self):
        assert greedy_treewidth_bound(ConjunctiveQuery(())) == 0


class TestAnalyzeComponent:
    def test_path_profile(self):
        profile = analyze_component(path_query(3))
        assert profile.atom_count == 3
        assert profile.variable_count == 4
        assert profile.inequality_count == 0
        assert profile.acyclic
        assert profile.treewidth_bound == 1
        assert profile.relations == (("E", 2),) * 3

    def test_cycle_is_gyo_cyclic(self):
        profile = analyze_component(cycle_query(3))
        assert not profile.acyclic
        assert profile.treewidth_bound == 2

    def test_cycliq_is_alpha_acyclic(self):
        # The classic α-acyclicity quirk: all CYCLIQ atoms cover the same
        # variable set, so GYO reduces it even though the primal graph is
        # a clique.  The planner must see it as Yannakakis-able.
        variables = tuple(Variable(f"x{i}") for i in range(3))
        profile = analyze_component(cycliq("R", variables))
        assert profile.acyclic
        assert profile.treewidth_bound == 2

    def test_relations_keep_duplicates(self):
        profile = analyze_component(parse_query("E(x, y) & E(y, x)"))
        assert profile.relations == (("E", 2), ("E", 2))


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache()
        query = path_query(3)
        _, was_hit = cache.profile(query)
        assert not was_hit
        _, was_hit = cache.profile(query)
        assert was_hit
        assert cache.hits == 1 and cache.misses == 1

    def test_alpha_equivalent_components_share_one_entry(self):
        cache = PlanCache()
        cache.profile(parse_query("E(x, y) & E(y, z)"))
        _, was_hit = cache.profile(parse_query("E(a, b) & E(b, c)"))
        assert was_hit
        assert len(cache) == 1

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=1)
        cache.profile(path_query(2))
        cache.profile(cycle_query(3))
        assert len(cache) == 1
        # The evicted path profile must be recomputed (a fresh object
        # dodges the exact-equality front level).
        _, was_hit = cache.profile(parse_query("E(q1, q2) & E(q2, q3)"))
        assert not was_hit

    def test_stats_snapshot(self):
        cache = PlanCache()
        cache.profile(path_query(2))
        cache.profile(path_query(2))
        assert cache.stats() == {
            "entries": 1,
            "max_entries": cache.max_entries,
            "hits": 1,
            "misses": 1,
        }

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            PlanCache(max_entries=0)


class TestEligibility:
    def test_acyclic_requires_no_inequalities(self, edge_path):
        query = parse_query("E(x, y) & E(y, z) & x != z")
        profile = analyze_component(query)
        engines = eligible_engines(query, profile, edge_path)
        assert "acyclic" not in engines
        assert set(engines) == {"backtracking", "treewidth"}

    def test_acyclic_requires_gyo_reducibility(self, triangle):
        query = cycle_query(3)
        profile = analyze_component(query)
        assert "acyclic" not in eligible_engines(query, profile, triangle)

    def test_acyclic_requires_interpreted_constants(self, edge_path):
        query = parse_query("E(x, #nowhere)")
        profile = analyze_component(query)
        # backtracking raises ConstantError here; acyclic would raise a
        # different error class, so auto must not select it.
        assert "acyclic" not in eligible_engines(query, profile, edge_path)

    def test_acyclic_requires_matching_arity(self, edge_path):
        query = parse_query("E(x, y, z)")
        profile = analyze_component(query)
        assert "acyclic" not in eligible_engines(query, profile, edge_path)

    def test_backtracking_and_treewidth_always_eligible(self, edge_path):
        query = parse_query("E(x, y) & x != y")
        profile = analyze_component(query)
        assert set(eligible_engines(query, profile, edge_path)) >= {
            "backtracking",
            "treewidth",
        }

    # The compiled engine is *total* (it falls back to the interpreter
    # outside its envelope), but the planner must still gate it on the
    # specializer's envelope so an auto pick always means actually
    # compiling.  One test per gate:

    def test_compiled_requires_no_inequalities(self, edge_path):
        query = parse_query("E(x, y) & E(y, z) & x != z")
        profile = analyze_component(query)
        assert "compiled" not in eligible_engines(query, profile, edge_path)

    def test_compiled_requires_interpreted_constants(self, edge_path):
        query = parse_query("E(x, #nowhere)")
        profile = analyze_component(query)
        assert "compiled" not in eligible_engines(query, profile, edge_path)

    def test_compiled_requires_matching_arity(self, edge_path):
        query = parse_query("E(x, y, z)")
        profile = analyze_component(query)
        assert "compiled" not in eligible_engines(query, profile, edge_path)

    def test_compiled_does_not_require_gyo_reducibility(self, triangle):
        # Unlike acyclic: cyclic shapes take the closure chain.
        query = cycle_query(3)
        profile = analyze_component(query)
        engines = eligible_engines(query, profile, triangle)
        assert "compiled" in engines
        assert "acyclic" not in engines

    def test_compiled_eligible_on_plain_acyclic_component(self, edge_path):
        query = path_query(3)
        profile = analyze_component(query)
        assert "compiled" in eligible_engines(query, profile, edge_path)


class TestSelection:
    def test_tiny_component_prefers_backtracking(self, loop_and_edge):
        query = parse_query("E(x, y) & E(y, x)")
        engine, _ = select_engine(
            query, analyze_component(query), loop_and_edge
        )
        assert engine == "backtracking"

    def test_long_path_prefers_compiled(self, dense):
        # Since the compiled engine joined the model, it undercuts the
        # interpreted Yannakakis pass on the dense acyclic slice.
        query = path_query(5)
        engine, _ = select_engine(query, analyze_component(query), dense)
        assert engine == "compiled"

    def test_long_path_prefers_acyclic_when_compiled_priced_out(self, dense):
        query = path_query(5)
        expensive = replace(get_constants(), compiled_scale=1e6)
        with use_constants(expensive):
            engine, _ = select_engine(query, analyze_component(query), dense)
        assert engine == "acyclic"

    def test_dense_cycle_prefers_treewidth(self, dense):
        query = cycle_query(6)
        engine, _ = select_engine(query, analyze_component(query), dense)
        assert engine == "treewidth"

    def test_estimates_are_finite_and_positive(self, dense):
        query = cycle_query(12)
        profile = analyze_component(query)
        for engine in ("backtracking", "treewidth", "acyclic"):
            cost = estimate_cost(engine, profile, dense)
            assert 0 < cost <= 1e18

    def test_unknown_engine_rejected(self, dense):
        profile = analyze_component(path_query(2))
        with pytest.raises(ValueError, match="no cost model"):
            estimate_cost("quantum", profile, dense)


class TestPlan:
    def test_components_get_independent_steps(self, edge_path):
        query = parse_query("E(x, y) & E(a, b) & E(b, a)")
        result = plan(query, edge_path, cache=PlanCache())
        assert isinstance(result, Plan)
        assert len(result.steps) == 2
        assert all(step.exponent == 1 for step in result.steps)
        assert result.total_cost == pytest.approx(
            sum(step.est_cost for step in result.steps)
        )

    def test_query_product_carries_exponents(self, edge_path):
        product = QueryProduct.of(path_query(2), 3)
        result = plan(product, edge_path, cache=PlanCache())
        assert [step.exponent for step in result.steps] == [3]

    def test_explain_mentions_engine_and_cache(self, edge_path):
        cache = PlanCache()
        text = plan(path_query(5), edge_path, cache=cache).explain()
        assert "engine=" in text
        assert "plan cache:" in text
        assert "step 1:" in text

    def test_explain_empty_query(self, edge_path):
        text = plan(ConjunctiveQuery(()), edge_path).explain()
        assert "empty query" in text

    def test_select_for_matches_plan(self, edge_path):
        query = path_query(4)
        step = select_for(query, edge_path, cache=PlanCache())
        full = plan(query, edge_path, cache=PlanCache())
        assert step.engine == full.steps[0].engine
        assert step.est_cost == full.steps[0].est_cost

    def test_plan_rejects_non_queries(self, edge_path):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError, match="cannot plan"):
            plan("E(x, y)", edge_path)


class TestPlanCounters:
    def test_preregistered_at_zero(self, edge_path):
        with observe() as observation:
            plan(parse_query("E(x, y)"), edge_path, cache=PlanCache())
        metrics = observation.report()["metrics"]
        for name in (
            "plan.calls",
            "plan.components",
            "plan.cache_hits",
            "plan.cache_misses",
            "plan.selected.backtracking",
            "plan.selected.treewidth",
            "plan.selected.acyclic",
        ):
            assert name in metrics, f"{name} not pre-registered"
        assert metrics["plan.calls"]["value"] == 1
        assert metrics["plan.components"]["value"] == 1
        assert metrics["plan.selected.treewidth"]["value"] == 0

    def test_auto_count_records_selection(self, edge_path):
        with observe() as observation:
            count(path_query(5), edge_path, engine="auto")
        metrics = observation.report()["metrics"]
        selected = sum(
            metrics[f"plan.selected.{name}"]["value"]
            for name in ("backtracking", "treewidth", "acyclic", "compiled")
        )
        assert selected == 1
        assert metrics["plan.components"]["value"] == 1

    def test_plan_spans_emitted(self, edge_path):
        with observe() as observation:
            plan(path_query(3), edge_path, cache=PlanCache())
        names = [root.name for root in observation.trace.roots]
        assert names == ["plan.analyze", "plan.select"]


class TestAutoParity:
    """auto ≡ every explicit engine, on the seeded differential corpus."""

    CASES = [case_at(index, seed=416) for index in range(40)]
    CQ_CASES = [case for case in CASES if case.kind == "cq"]

    @pytest.mark.parametrize(
        "case", CQ_CASES, ids=lambda case: f"case{case.index}"
    )
    def test_serial_parity(self, case):
        reference = count(case.query, case.structure, engine="backtracking")
        via_auto = count(case.query, case.structure, engine="auto")
        assert via_auto == reference
        assert count(case.query, case.structure, engine="treewidth") == reference

    @pytest.mark.parametrize(
        "case", CQ_CASES[:10], ids=lambda case: f"case{case.index}"
    )
    def test_cached_parity(self, case):
        reference = count(case.query, case.structure)
        cache = CountCache()
        assert (
            count(case.query, case.structure, engine="auto", cache=cache)
            == reference
        )
        # Second run hits the cache, which keys by the *selected* engine.
        assert (
            count(case.query, case.structure, engine="auto", cache=cache)
            == reference
        )
        assert cache.hits > 0

    def test_batched_parity(self):
        pairs = [(case.query, case.structure) for case in self.CQ_CASES]
        reference = [count(query, structure) for query, structure in pairs]
        assert count_many(pairs, engine="auto") == reference
        assert count_many(pairs, engine="auto", cache=False) == reference

    def test_workers_parity(self):
        pairs = [(case.query, case.structure) for case in self.CQ_CASES[:8]]
        reference = [count(query, structure) for query, structure in pairs]
        assert count_many(pairs, engine="auto", workers=2) == reference

    def test_error_parity_uninterpreted_constant(self, edge_path):
        from repro.errors import ConstantError

        query = parse_query("E(x, #nowhere)")
        with pytest.raises(ConstantError):
            count(query, edge_path, engine="backtracking")
        with pytest.raises(ConstantError):
            count(query, edge_path, engine="auto")

    def test_product_parity(self, dense):
        product = QueryProduct.of(path_query(3), 2)
        assert count(product, dense, engine="auto") == count(
            product, dense, engine="backtracking"
        )


class TestUcqSharedCache:
    def test_disjuncts_share_component_counts(self, dense):
        # Two α-equivalent paths in different disjuncts: the serial path
        # must count the component once and reuse it.
        ucq = UnionOfConjunctiveQueries(
            [
                (parse_query("E(x, y) & E(y, z)"), 2),
                (parse_query("E(a, b) & E(b, c)"), 3),
            ]
        )
        single = count(parse_query("E(x, y) & E(y, z)"), dense)
        with observe() as observation:
            total = count_ucq(ucq, dense)
        assert total == 5 * single
        metrics = observation.report()["metrics"]
        assert metrics["cache.hits"]["value"] >= 1

    def test_ucq_auto_parity(self, dense):
        ucq = UnionOfConjunctiveQueries(
            [(path_query(2), 1), (cycle_query(3), 2)]
        )
        assert count_ucq(ucq, dense, engine="auto") == count_ucq(
            ucq, dense, engine="backtracking"
        )


class TestExplainCli:
    def test_explain_canonical_database(self, capsys):
        from repro.cli import main

        exit_code = main(["explain", "--query", "E(x,y) & E(y,z)"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "plan: 1 component(s)" in out
        assert "engine=" in out

    def test_explain_inline_facts(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["explain", "--query", "E(x,y)", "--facts", "E(a,b) E(b,a)"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "inline database (2 facts)" in out

    def test_evaluate_accepts_auto(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "evaluate",
                "--query",
                "E(x,y) & E(y,x)",
                "--facts",
                "E(a,b) E(b,a)",
                "--engine",
                "auto",
            ]
        )
        assert exit_code == 0
        assert capsys.readouterr().out.strip() == "2"
