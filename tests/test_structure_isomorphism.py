"""Tests for structure isomorphism and iso-pruned enumeration."""

import pytest

from repro.decision import enumerate_structures
from repro.homomorphism import count
from repro.queries import parse_query
from repro.relational import Schema, Structure
from repro.relational.isomorphism import (
    are_isomorphic,
    distinct_up_to_isomorphism,
    find_isomorphism,
)


@pytest.fixture
def schema():
    return Schema.from_arities({"E": 2})


class TestIsomorphism:
    def test_relabeled_structures(self, schema):
        left = Structure(schema, {"E": [(0, 1), (1, 2)]})
        right = Structure(schema, {"E": [("a", "b"), ("b", "c")]})
        mapping = find_isomorphism(left, right)
        assert mapping is not None
        assert mapping[0] == "a" and mapping[1] == "b" and mapping[2] == "c"

    def test_non_isomorphic_same_size(self, schema):
        path = Structure(schema, {"E": [(0, 1), (1, 2)]})
        fan = Structure(schema, {"E": [(0, 1), (0, 2)]})
        assert not are_isomorphic(path, fan)

    def test_fact_count_mismatch(self, schema):
        one = Structure(schema, {"E": [(0, 1)]}, domain=range(2))
        two = Structure(schema, {"E": [(0, 1), (1, 0)]})
        assert not are_isomorphic(one, two)

    def test_isolated_elements_matter(self, schema):
        bare = Structure(schema, {"E": [(0, 1)]})
        padded = Structure(schema, {"E": [(0, 1)]}, domain=range(3))
        assert not are_isomorphic(bare, padded)

    def test_constants_pin_elements(self, schema):
        left = Structure(schema, {"E": [(0, 1)]}, constants={"a": 0})
        right = Structure(schema, {"E": [(0, 1)]}, constants={"a": 1})
        assert not are_isomorphic(left, right)
        agreeing = Structure(schema, {"E": [(5, 6)]}, constants={"a": 5})
        assert are_isomorphic(left, agreeing)

    def test_schema_mismatch(self, schema):
        left = Structure(schema, {"E": [(0, 1)]})
        right = Structure(Schema.from_arities({"F": 2}), {"F": [(0, 1)]})
        assert not are_isomorphic(left, right)

    def test_automorphic_cycle(self, schema):
        cycle = Structure(schema, {"E": [(0, 1), (1, 2), (2, 0)]})
        rotated = Structure(schema, {"E": [(1, 2), (2, 0), (0, 1)]})
        assert are_isomorphic(cycle, rotated)

    def test_counts_invariant_under_isomorphism(self, schema):
        left = Structure(schema, {"E": [(0, 1), (1, 0), (1, 1)]})
        right = Structure(schema, {"E": [("x", "y"), ("y", "x"), ("x", "x")]})
        # These two are isomorphic via 0↦y, 1↦x.
        assert are_isomorphic(left, right)
        for text in ("E(x, y)", "E(x, y) & E(y, x)", "E(x, x)"):
            assert count(parse_query(text), left) == count(parse_query(text), right)


class TestDistinctUpToIsomorphism:
    def test_prunes_the_two_element_stream(self, schema):
        full = list(enumerate_structures(schema, 2))
        pruned = list(distinct_up_to_isomorphism(full))
        # 16 labeled digraphs on 2 nodes, 10 up to isomorphism.
        assert len(full) == 16
        assert len(pruned) == 10

    def test_classes_are_pairwise_non_isomorphic(self, schema):
        pruned = list(distinct_up_to_isomorphism(enumerate_structures(schema, 2)))
        for i, left in enumerate(pruned):
            for right in pruned[i + 1 :]:
                assert not are_isomorphic(left, right)

    def test_query_counts_cover_all_classes(self, schema):
        """Iso-pruning is sound for count-based searches."""
        query = parse_query("E(x, y) & E(y, x)")
        full_counts = sorted(
            count(query, d) for d in enumerate_structures(schema, 2)
        )
        pruned_counts = {
            count(query, d)
            for d in distinct_up_to_isomorphism(enumerate_structures(schema, 2))
        }
        assert set(full_counts) == pruned_counts
