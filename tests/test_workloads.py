"""Tests for workload generators."""

import pytest

from repro.homomorphism import count
from repro.relational import Schema, Structure
from repro.workloads import (
    cycle_query,
    path_query,
    random_queries,
    random_query,
    star_query,
)


@pytest.fixture
def schema():
    return Schema.from_arities({"E": 2, "U": 1})


class TestRandomQueries:
    def test_shape_respected(self, schema):
        query = random_query(schema, variable_count=4, atom_count=6, seed=1)
        assert query.atom_count <= 6  # duplicates may collapse
        assert query.variable_count <= 4

    def test_reproducible(self, schema):
        assert random_query(schema, 3, 4, seed=9) == random_query(schema, 3, 4, seed=9)

    def test_stream_distinct_seeds(self, schema):
        stream = list(random_queries(schema, count=5, seed=0))
        assert len(stream) == 5

    def test_inequalities(self, schema):
        query = random_query(schema, 3, 3, inequality_count=2, seed=4)
        assert query.inequality_count <= 2

    @pytest.mark.parametrize("variable_count", [0, 1])
    def test_inequalities_need_two_variables(self, schema, variable_count):
        # Regression: used to silently generate fewer inequalities than
        # requested instead of rejecting the impossible shape.
        with pytest.raises(ValueError, match="two distinct"):
            random_query(
                schema, variable_count, atom_count=2, inequality_count=1
            )

    def test_zero_inequalities_allowed_with_one_variable(self, schema):
        query = random_query(schema, 1, 2, inequality_count=0, seed=3)
        assert query.inequality_count == 0

    def test_every_declared_variable_is_used(self, schema):
        # Regression: variables that never landed in an atom used to be
        # dropped silently, so generated queries skewed smaller than the
        # requested shape.  Whenever atom_count * max_arity >=
        # variable_count, all declared variables must now appear.
        for seed in range(100):
            query = random_query(
                schema, variable_count=4, atom_count=5, seed=seed
            )
            assert query.variable_count == 4, f"seed {seed}: {query}"

    def test_variable_coverage_at_tight_capacity(self, schema):
        # 6 variables into 3 atoms only fits if every pick is upgraded to
        # the binary symbol (capacity 3 * 2 = 6) — the upgrade path.
        for seed in range(50):
            query = random_query(
                schema, variable_count=6, atom_count=3, seed=seed
            )
            assert query.variable_count == 6, f"seed {seed}: {query}"
            assert all(atom.relation == "E" for atom in query.atoms)

    def test_variable_coverage_graceful_when_capacity_insufficient(
        self, schema
    ):
        # 5 variables cannot fit into 2 binary atoms (capacity 4): the
        # shape is honoured and the extras stay unused, as documented.
        query = random_query(schema, variable_count=5, atom_count=2, seed=0)
        assert query.atom_count <= 2
        assert query.variable_count <= 4

    def test_variable_coverage_change_is_still_reproducible(self, schema):
        for seed in (0, 17, 99):
            assert random_query(
                schema, 6, 3, seed=seed
            ) == random_query(schema, 6, 3, seed=seed)


class TestShapes:
    def test_path(self):
        query = path_query(3)
        assert query.atom_count == 3
        assert query.variable_count == 4
        assert query.is_connected()

    def test_path_counts_walks(self):
        loop = Structure(Schema.from_arities({"E": 2}), {"E": [(0, 0)]})
        assert count(path_query(5), loop) == 1

    def test_star(self):
        query = star_query(4)
        assert query.atom_count == 4
        assert query.variable_count == 5

    def test_star_counts(self):
        d = Structure(Schema.from_arities({"E": 2}), {"E": [(0, 1), (0, 2)]})
        # centre must be 0; each of 3 rays picks one of 2 targets.
        assert count(star_query(3), d) == 8

    def test_cycle(self):
        query = cycle_query(4)
        assert query.atom_count == 4
        assert query.variable_count == 4
        assert query.is_connected()

    def test_cycle_length_one_is_a_loop(self):
        query = cycle_query(1)
        assert query.atom_count == 1
        assert query.variable_count == 1

    def test_cycle_counts_closed_walks(self):
        # On a single loop there is exactly one closed walk per length.
        loop = Structure(Schema.from_arities({"E": 2}), {"E": [(0, 0)]})
        assert count(cycle_query(5), loop) == 1
        # On the directed 2-cycle, closed 4-walks start anywhere: 2.
        two_cycle = Structure(
            Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 0)]}
        )
        assert count(cycle_query(4), two_cycle) == 2
        assert count(cycle_query(3), two_cycle) == 0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            path_query(0)
        with pytest.raises(ValueError):
            star_query(0)
        with pytest.raises(ValueError):
            cycle_query(0)
