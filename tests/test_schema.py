"""Unit tests for relational schemas."""

import pytest

from repro.errors import ArityError, SchemaError
from repro.relational import RelationSymbol, Schema


class TestRelationSymbol:
    def test_str(self):
        assert str(RelationSymbol("E", 2)) == "E/2"

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            RelationSymbol("", 2)

    def test_rejects_zero_arity(self):
        with pytest.raises(SchemaError):
            RelationSymbol("E", 0)

    def test_equality(self):
        assert RelationSymbol("E", 2) == RelationSymbol("E", 2)
        assert RelationSymbol("E", 2) != RelationSymbol("E", 3)


class TestSchema:
    def test_lookup(self):
        schema = Schema.from_arities({"E": 2, "U": 1})
        assert schema.arity("E") == 2
        assert "U" in schema
        assert "V" not in schema
        assert len(schema) == 2

    def test_unknown_relation_raises(self):
        schema = Schema.from_arities({"E": 2})
        with pytest.raises(SchemaError):
            schema.arity("F")

    def test_conflicting_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema([RelationSymbol("E", 2), RelationSymbol("E", 3)])

    def test_duplicate_consistent_declaration_ok(self):
        schema = Schema([RelationSymbol("E", 2), RelationSymbol("E", 2)])
        assert len(schema) == 1

    def test_check_tuple(self):
        schema = Schema.from_arities({"E": 2})
        schema.check_tuple("E", (1, 2))
        with pytest.raises(ArityError):
            schema.check_tuple("E", (1, 2, 3))

    def test_union_merges(self):
        left = Schema.from_arities({"E": 2})
        right = Schema.from_arities({"U": 1})
        union = left.union(right)
        assert set(union.relation_names) == {"E", "U"}

    def test_union_conflicting_arity_raises(self):
        left = Schema.from_arities({"E": 2})
        right = Schema.from_arities({"E": 3})
        with pytest.raises(SchemaError):
            left.union(right)

    def test_disjointness(self):
        left = Schema.from_arities({"E": 2})
        right = Schema.from_arities({"U": 1})
        assert left.is_disjoint_from(right)
        assert not left.is_disjoint_from(left)

    def test_restrict(self):
        schema = Schema.from_arities({"E": 2, "U": 1})
        restricted = schema.restrict(["E"])
        assert "U" not in restricted
        assert restricted.arity("E") == 2

    def test_value_semantics(self):
        one = Schema.from_arities({"E": 2, "U": 1})
        two = Schema.from_arities({"U": 1, "E": 2})
        assert one == two
        assert hash(one) == hash(two)

    def test_iteration_is_sorted(self):
        schema = Schema.from_arities({"Z": 1, "A": 2})
        assert [symbol.name for symbol in schema] == ["A", "Z"]
