"""Unit tests for terms, atoms, and inequalities."""

import pytest

from repro.errors import QueryError
from repro.queries import Atom, Constant, Inequality, Variable
from repro.queries.terms import HEART_C, SPADE_C, constants, variables


class TestTerms:
    def test_kind_predicates(self):
        assert Variable("x").is_variable()
        assert not Variable("x").is_constant()
        assert Constant("a").is_constant()

    def test_equality_distinguishes_kinds(self):
        assert Variable("a") != Constant("a")
        assert Variable("a") == Variable("a")

    def test_hash_stability(self):
        assert hash(Variable("x")) == hash(Variable("x"))
        assert hash(Variable("x")) != hash(Constant("x"))

    def test_ordering_within_kind(self):
        assert Variable("a") < Variable("b")
        assert sorted([Variable("b"), Variable("a")])[0].name == "a"

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Variable("x").name = "y"

    def test_str(self):
        assert str(Variable("x")) == "x"
        assert str(Constant("a")) == "#a"

    def test_convenience_constructors(self):
        x, y = variables("x", "y")
        a, = constants("a")
        assert x == Variable("x") and y == Variable("y") and a == Constant("a")

    def test_nontriviality_constants(self):
        assert SPADE_C != HEART_C


class TestAtom:
    def test_basic(self):
        atom = Atom("E", (Variable("x"), Constant("a")))
        assert atom.arity == 2
        assert list(atom.variables()) == [Variable("x")]
        assert list(atom.constants()) == [Constant("a")]
        assert str(atom) == "E(x, #a)"

    def test_rejects_empty_terms(self):
        with pytest.raises(QueryError):
            Atom("E", ())

    def test_rejects_non_terms(self):
        with pytest.raises(QueryError):
            Atom("E", ("x",))  # plain strings are not terms

    def test_rename(self):
        atom = Atom("E", (Variable("x"), Variable("y")))
        renamed = atom.rename({Variable("x"): Variable("z")})
        assert renamed == Atom("E", (Variable("z"), Variable("y")))

    def test_rename_to_constant(self):
        atom = Atom("E", (Variable("x"), Variable("x")))
        renamed = atom.rename({Variable("x"): Constant("a")})
        assert renamed == Atom("E", (Constant("a"), Constant("a")))


class TestInequality:
    def test_symmetric_normalization(self):
        assert Inequality(Variable("y"), Variable("x")) == Inequality(
            Variable("x"), Variable("y")
        )

    def test_trivially_false(self):
        assert Inequality(Variable("x"), Variable("x")).is_trivially_false()
        assert not Inequality(Variable("x"), Variable("y")).is_trivially_false()

    def test_variables_and_constants(self):
        ineq = Inequality(Variable("x"), Constant("a"))
        assert list(ineq.variables()) == [Variable("x")]
        assert list(ineq.constants()) == [Constant("a")]

    def test_rename(self):
        ineq = Inequality(Variable("x"), Variable("y"))
        renamed = ineq.rename({Variable("x"): Variable("z")})
        assert renamed == Inequality(Variable("z"), Variable("y"))

    def test_variables_sort_before_constants(self):
        ineq = Inequality(Constant("a"), Variable("z"))
        assert ineq.left == Variable("z")
        assert ineq.right == Constant("a")
