"""Run the executable paper-claims registry, one claim per test."""

import pytest

from repro.paper import CLAIMS, claims_by_id


@pytest.mark.parametrize("claim", CLAIMS, ids=lambda c: c.claim_id)
def test_claim(claim):
    assert claim.verify(), f"{claim.claim_id}: {claim.statement}"


def test_registry_ids_unique():
    assert len(claims_by_id()) == len(CLAIMS)


def test_every_claim_names_modules():
    import importlib

    for claim in CLAIMS:
        assert claim.modules
        for module in claim.modules:
            importlib.import_module(module)
