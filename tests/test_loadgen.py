"""Seeded traffic scenarios and the closed-loop replay runner.

Scenarios must be pure functions of ``(name, seed, requests, clients)``
— the load generator's numbers are only comparable across commits if the
traffic itself is bit-identical — and the runner must account for every
scheduled request exactly once (completed, shed, deadline-exceeded, or
error) while reading its percentiles from the *server's* histogram
delta, not client-side stopwatches.
"""

from __future__ import annotations

import pytest

from repro.loadgen import SCENARIO_NAMES, build_scenario, run_scenario
from repro.loadgen.scenarios import _DEADLINE_CHOICES_MS
from repro.service import EvaluationServer, ServerConfig


class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_same_seed_same_schedule(self, name):
        first = build_scenario(name, seed=7, requests=30, clients=3)
        second = build_scenario(name, seed=7, requests=30, clients=3)
        assert first == second
        assert first.schedule == second.schedule

    def test_different_seeds_differ(self):
        first = build_scenario("zipf-duplicates", seed=0, requests=30)
        second = build_scenario("zipf-duplicates", seed=1, requests=30)
        assert first.schedule != second.schedule

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("steady-state", seed=0)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_schedule_shape(self, name):
        scenario = build_scenario(name, seed=0, requests=24, clients=4)
        assert len(scenario.schedule) == 24
        assert {request.tenant for request in scenario.schedule} <= set(
            range(4)
        )
        for position, request in enumerate(scenario.schedule):
            assert request.index == position
            assert request.kind in ("cq", "ucq", "contain")
            if request.kind == "cq":
                assert request.query is not None
            elif request.kind == "contain":
                assert request.query is not None
                assert request.against is not None
            else:
                assert request.disjuncts

    def test_zipf_traffic_is_duplicate_heavy(self):
        scenario = build_scenario("zipf-duplicates", seed=0, requests=100)
        distinct = {
            str(request.query) for request in scenario.schedule
        }
        # A Zipf draw over a 24-query pool repeats heavily — that is the
        # point of the scenario (it exercises cache + single-flight).
        assert len(distinct) < 60

    def test_multi_tenant_pools_are_disjoint(self):
        scenario = build_scenario("multi-tenant", seed=0, requests=40, clients=4)
        by_tenant: dict[int, set] = {}
        for request in scenario.schedule:
            fingerprint = (
                request.kind,
                str(request.query),
                tuple(
                    (str(disjunct), multiplicity)
                    for disjunct, multiplicity in request.disjuncts
                ),
            )
            by_tenant.setdefault(request.tenant, set()).add(fingerprint)
        tenants = sorted(by_tenant)
        assert len(tenants) == 4
        for a in tenants:
            for b in tenants:
                if a < b:
                    assert not (by_tenant[a] & by_tenant[b]), (a, b)

    def test_deadline_spread_cycles_declared_deadlines(self):
        scenario = build_scenario("deadline-spread", seed=0, requests=20)
        deadlines = [request.deadline_ms for request in scenario.schedule]
        assert set(deadlines) == set(_DEADLINE_CHOICES_MS)
        expected = [
            _DEADLINE_CHOICES_MS[index % len(_DEADLINE_CHOICES_MS)]
            for index in range(20)
        ]
        assert deadlines == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            build_scenario("zipf-duplicates", requests=0)
        with pytest.raises(ValueError):
            build_scenario("zipf-duplicates", clients=0)


class TestRunner:
    def test_small_replay_accounts_every_request(self):
        scenario = build_scenario(
            "zipf-duplicates", seed=0, requests=16, clients=2
        )
        config = ServerConfig(workers=2, queue_depth=16)
        with EvaluationServer(config) as server:
            result = run_scenario(scenario, server.url, keep_outcomes=True)
        assert result.scenario == "zipf-duplicates"
        assert result.completed == 16
        assert result.shed == 0
        assert result.deadline_exceeded == 0
        assert result.errors == 0
        assert len(result.outcomes) == 16
        assert {outcome.index for outcome in result.outcomes} == set(range(16))
        # Percentiles come from the server's histogram delta.
        assert result.p50_ms is not None
        assert result.p50_ms <= result.p95_ms <= result.p99_ms
        assert result.throughput_rps > 0
        row = result.to_dict()
        assert row["scenario"] == "zipf-duplicates"
        assert row["shed_rate"] == 0.0
        for field in (
            "completed",
            "shed",
            "deadline_exceeded",
            "errors",
            "wall_s",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "shed_rate",
        ):
            assert field in row, field

    def test_deadline_spread_replay_never_errors(self):
        scenario = build_scenario(
            "deadline-spread", seed=0, requests=10, clients=2
        )
        config = ServerConfig(workers=2, queue_depth=16)
        with EvaluationServer(config) as server:
            result = run_scenario(scenario, server.url)
        assert result.errors == 0
        assert result.completed + result.deadline_exceeded + result.shed == 10
