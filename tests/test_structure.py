"""Unit tests for finite relational structures."""

import pytest

from repro.errors import ArityError, ConstantError, SchemaError
from repro.naming import HEART, SPADE
from repro.relational import Schema, Structure, StructureBuilder


@pytest.fixture
def schema() -> Schema:
    return Schema.from_arities({"E": 2, "U": 1})


class TestConstruction:
    def test_domain_collects_fact_elements(self, schema):
        d = Structure(schema, {"E": [(1, 2)], "U": [(3,)]})
        assert d.domain == {1, 2, 3}

    def test_explicit_domain_elements(self, schema):
        d = Structure(schema, domain=[7])
        assert d.domain == {7}
        assert d.fact_count() == 0

    def test_constants_join_domain(self, schema):
        d = Structure(schema, constants={"a": 42})
        assert 42 in d.domain
        assert d.interpret("a") == 42

    def test_undeclared_relation_rejected(self, schema):
        with pytest.raises(SchemaError):
            Structure(schema, {"F": [(1, 2)]})

    def test_wrong_arity_rejected(self, schema):
        with pytest.raises(ArityError):
            Structure(schema, {"E": [(1, 2, 3)]})

    def test_missing_constant_raises(self, schema):
        d = Structure(schema)
        with pytest.raises(ConstantError):
            d.interpret("nope")


class TestFacts:
    def test_fact_count(self, schema):
        d = Structure(schema, {"E": [(1, 2), (2, 1)], "U": [(1,)]})
        assert d.fact_count("E") == 2
        assert d.fact_count() == 3

    def test_has_fact(self, schema):
        d = Structure(schema, {"E": [(1, 2)]})
        assert d.has_fact("E", (1, 2))
        assert not d.has_fact("E", (2, 1))

    def test_all_facts_sorted_by_relation(self, schema):
        d = Structure(schema, {"U": [(1,)], "E": [(1, 2)]})
        assert [name for name, _ in d.all_facts()] == ["E", "U"]


class TestNonTriviality:
    def test_distinct_constants_nontrivial(self, schema):
        d = Structure(schema, constants={SPADE: 0, HEART: 1})
        assert d.is_nontrivial()

    def test_identified_constants_trivial(self, schema):
        d = Structure(schema, constants={SPADE: 0, HEART: 0})
        assert not d.is_nontrivial()

    def test_missing_constants_trivial(self, schema):
        assert not Structure(schema).is_nontrivial()


class TestFunctionalUpdates:
    def test_with_fact(self, schema):
        d = Structure(schema).with_fact("E", (1, 2))
        assert d.has_fact("E", (1, 2))

    def test_without_fact(self, schema):
        d = Structure(schema, {"E": [(1, 2)]}).without_fact("E", (1, 2))
        assert not d.has_fact("E", (1, 2))

    def test_updates_do_not_mutate(self, schema):
        original = Structure(schema, {"E": [(1, 2)]})
        original.with_fact("E", (3, 4))
        assert not original.has_fact("E", (3, 4))

    def test_with_constant(self, schema):
        d = Structure(schema).with_constant("a", 5)
        assert d.interpret("a") == 5


class TestRestrictAndRelabel:
    def test_restrict_drops_facts_keeps_domain(self, schema):
        d = Structure(schema, {"E": [(1, 2)], "U": [(3,)]})
        restricted = d.restrict(["E"])
        assert "U" not in restricted.schema
        assert restricted.domain == {1, 2, 3}

    def test_relabel_injective(self, schema):
        d = Structure(schema, {"E": [(1, 2)]})
        relabeled = d.relabel({1: "a", 2: "b"})
        assert relabeled.has_fact("E", ("a", "b"))

    def test_relabel_quotient_merges(self, schema):
        d = Structure(schema, {"E": [(1, 2), (2, 1)]})
        quotient = d.relabel({2: 1})
        assert quotient.facts("E") == {(1, 1)}
        assert quotient.domain == {1}


class TestComparisons:
    def test_extends(self, schema):
        small = Structure(schema, {"E": [(1, 2)]})
        big = Structure(schema, {"E": [(1, 2), (2, 1)]})
        assert big.extends(small)
        assert not small.extends(big)

    def test_extends_checks_constants(self, schema):
        small = Structure(schema, {"E": [(1, 2)]}, constants={"a": 1})
        big = Structure(schema, {"E": [(1, 2), (2, 1)]}, constants={"a": 2})
        assert not big.extends(small)

    def test_equality_and_hash(self, schema):
        one = Structure(schema, {"E": [(1, 2)]}, constants={"a": 1})
        two = Structure(schema, {"E": [(1, 2)]}, constants={"a": 1})
        assert one == two
        assert hash(one) == hash(two)

    def test_empty_bucket_is_normalized(self, schema):
        one = Structure(schema, {"E": []})
        two = Structure(schema)
        assert one == two


class TestBuilder:
    def test_builds_structure(self, schema):
        built = (
            StructureBuilder(schema)
            .add_fact("E", (0, 1))
            .add_constant(SPADE, 0)
            .add_constant(HEART, 1)
            .add_element(9)
            .build()
        )
        assert built.has_fact("E", (0, 1))
        assert built.is_nontrivial()
        assert 9 in built.domain

    def test_add_relation_extends_schema(self):
        built = (
            StructureBuilder(Schema())
            .add_relation("R", 3)
            .add_fact("R", (1, 2, 3))
            .build()
        )
        assert built.fact_count("R") == 1

    def test_conflicting_constant_rejected(self, schema):
        builder = StructureBuilder(schema).add_constant("a", 1)
        with pytest.raises(ConstantError):
            builder.add_constant("a", 2)

    def test_describe_mentions_everything(self, schema):
        d = Structure(schema, {"E": [(1, 2)]}, constants={"a": 1})
        text = d.describe()
        assert "E" in text and "a" in text
