"""Unit tests for conjunctive queries and the paper's query algebra."""

import pytest

from repro.errors import QueryError
from repro.homomorphism import count
from repro.queries import (
    TRUE,
    Atom,
    ConjunctiveQuery,
    Constant,
    Inequality,
    Variable,
    parse_query,
)
from repro.relational import Schema, Structure


@pytest.fixture
def structure():
    return Structure(
        Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 0), (0, 0)]}
    )


class TestBasics:
    def test_variables_and_constants(self):
        phi = parse_query("E(x, #a) & E(x, y)")
        assert phi.variables == {Variable("x"), Variable("y")}
        assert phi.constants == {Constant("a")}
        assert phi.terms == {Variable("x"), Variable("y"), Constant("a")}

    def test_duplicate_atoms_dropped(self):
        phi = ConjunctiveQuery(
            [Atom("E", (Variable("x"), Variable("y")))] * 3
        )
        assert phi.atom_count == 1

    def test_schema_derived(self):
        phi = parse_query("E(x, y) & U(x)")
        assert phi.schema.arity("E") == 2
        assert phi.schema.arity("U") == 1

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                [
                    Atom("E", (Variable("x"),)),
                    Atom("E", (Variable("x"), Variable("y"))),
                ]
            )

    def test_counts_and_size(self):
        phi = parse_query("E(x, y) & E(y, z) & x != z")
        assert phi.atom_count == 2
        assert phi.inequality_count == 1
        assert phi.variable_count == 3
        assert phi.size == 6

    def test_true_query(self):
        assert TRUE.is_empty()
        assert str(TRUE) == "TRUE"

    def test_ground_query(self):
        phi = parse_query("E(#a, #b)")
        assert phi.is_ground()

    def test_equality_is_order_insensitive(self):
        one = parse_query("E(x, y) & U(x)")
        two = parse_query("U(x) & E(x, y)")
        assert one == two
        assert hash(one) == hash(two)


class TestConjunction:
    def test_shared_scope_conjunction(self, structure):
        left = parse_query("E(x, y)")
        right = parse_query("E(y, x)")
        both = left & right
        assert both.variables == {Variable("x"), Variable("y")}
        assert count(both, structure) == 3  # (0,1),(1,0),(0,0)

    def test_disjoint_conjunction_renames(self, structure):
        left = parse_query("E(x, y)")
        right = parse_query("E(y, x)")
        product_query = left * right
        assert product_query.variable_count == 4

    def test_lemma1_multiplicativity(self, structure):
        """Lemma 1: (ρ ∧̄ ρ')(D) = ρ(D)·ρ'(D)."""
        rho = parse_query("E(x, y)")
        rho_prime = parse_query("E(u, u)")
        assert count(rho * rho_prime, structure) == count(rho, structure) * count(
            rho_prime, structure
        )

    def test_disjoint_conjunction_keeps_constants(self):
        left = parse_query("E(x, #a)")
        right = parse_query("E(x, #a)")
        both = left * right
        assert both.constants == {Constant("a")}
        assert both.variable_count == 2


class TestPower:
    def test_power_zero_is_true(self):
        assert parse_query("E(x, y)").power(0) == TRUE

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_definition2_identity(self, structure, k):
        """Definition 2: (θ↑k)(D) = θ(D)^k."""
        theta = parse_query("E(x, y)")
        assert count(theta**k, structure) == count(theta, structure) ** k

    def test_power_negative_rejected(self):
        with pytest.raises(QueryError):
            parse_query("E(x, y)").power(-1)


class TestRenaming:
    def test_rename_merges_variables(self):
        phi = parse_query("E(x, y)")
        merged = phi.rename({Variable("y"): Variable("x")})
        assert merged == parse_query("E(x, x)")

    def test_rename_apart_fresh_names(self):
        from repro.naming import NameSupply

        phi = parse_query("E(x, y)")
        renamed = phi.rename_apart(NameSupply({"x", "y"}))
        assert renamed.variables.isdisjoint(phi.variables)

    def test_without_inequalities(self):
        phi = parse_query("E(x, y) & x != y")
        assert phi.without_inequalities() == parse_query("E(x, y)")


class TestCanonicalStructure:
    def test_roundtrip_counts(self, structure):
        phi = parse_query("E(x, y) & E(y, x)")
        canonical = phi.canonical_structure()
        # The identity is always a homomorphism: phi(canonical) >= 1.
        assert count(phi, canonical) >= 1

    def test_constants_interpret_themselves(self):
        phi = parse_query("E(#a, x)")
        canonical = phi.canonical_structure()
        assert canonical.interpret("a") == Constant("a")

    def test_of_structure_roundtrip(self, structure):
        phi = ConjunctiveQuery.of_structure(structure)
        assert phi.atom_count == structure.fact_count()
        assert count(phi, structure) >= 1


class TestComponents:
    def test_single_component(self):
        phi = parse_query("E(x, y) & E(y, z)")
        assert phi.is_connected()

    def test_two_components(self):
        phi = parse_query("E(x, y) & E(u, v)")
        assert len(phi.connected_components()) == 2

    def test_inequality_connects(self):
        phi = parse_query("E(x, y) & E(u, v) & x != u")
        assert phi.is_connected()

    def test_constants_do_not_connect(self):
        phi = parse_query("E(x, #a) & E(y, #a)")
        assert len(phi.connected_components()) == 2

    def test_ground_atoms_grouped_first(self):
        phi = parse_query("E(#a, #b) & E(x, y)")
        components = phi.connected_components()
        assert len(components) == 2
        assert components[0].is_ground()

    def test_component_counts_multiply(self, structure):
        phi = parse_query("E(x, y) & E(u, u)")
        expected = count(parse_query("E(x, y)"), structure) * count(
            parse_query("E(u, u)"), structure
        )
        assert count(phi, structure) == expected
