"""Tests for the Arena (Sections 4.4/4.6) and Definition 13/14 machinery."""

import pytest

from repro.core import build_arena, build_pi_s
from repro.core.arena import DatabaseKind, a_constant, b_constant
from repro.core.pi import X_RELATION
from repro.homomorphism import count
from repro.naming import HEART, SPADE


@pytest.fixture
def arena(richer_lemma11):
    return build_arena(richer_lemma11)


class TestShape:
    def test_arena_is_ground(self, arena):
        assert arena.arena.is_ground()
        assert arena.arena_pi.is_ground()
        assert arena.arena_delta.is_ground()

    def test_cycle_length(self, arena, richer_lemma11):
        assert arena.cycle_length == richer_lemma11.m + richer_lemma11.n + 2

    def test_delta_cycle_edges(self, arena):
        # Self-loop at heart + one cycle of length 𝕝.
        assert arena.arena_delta.atom_count == 1 + arena.cycle_length

    def test_s_loops_for_all_pairs(self, arena, richer_lemma11):
        m = richer_lemma11.m
        for m_prime in range(1, m + 1):
            loops = [
                atom
                for atom in arena.arena_pi.atoms
                if atom.relation == f"S_{m_prime}"
                and atom.terms[0] == atom.terms[1]
                and atom.terms[0] != a_constant()
            ]
            assert len(loops) == m

    def test_d_arena_satisfies_arena(self, arena):
        assert count(arena.arena, arena.d_arena) == 1

    def test_d_arena_nontrivial(self, arena):
        assert arena.d_arena.is_nontrivial()

    def test_sigma0_excludes_x(self, arena):
        assert X_RELATION not in arena.sigma0
        assert "E" in arena.sigma0

    def test_rs_relations(self, arena, richer_lemma11):
        assert len(arena.rs_relations) == richer_lemma11.m + richer_lemma11.d

    def test_zeta_atom_counts_match_paper(self, arena, richer_lemma11):
        """j^{S_m} = m + 2 and j^{R_d} = m in D_Arena."""
        m = richer_lemma11.m
        for m_index in range(1, m + 1):
            assert arena.d_arena.fact_count(f"S_{m_index}") == m + 2
        for d_index in range(1, richer_lemma11.d + 1):
            assert arena.d_arena.fact_count(f"R_{d_index}") == m


class TestValuations:
    def test_roundtrip(self, arena):
        valuation = {1: 3, 2: 0}
        structure = arena.correct_database(valuation)
        assert arena.valuation_of(structure) == valuation

    def test_zero_valuation(self, arena):
        structure = arena.correct_database({})
        assert arena.valuation_of(structure) == {1: 0, 2: 0}

    def test_negative_rejected(self, arena):
        from repro.errors import ReductionError

        with pytest.raises(ReductionError):
            arena.correct_database({1: -1})

    def test_definition14_counts_x_edges(self, arena):
        structure = arena.correct_database({1: 2, 2: 1})
        source = structure.interpret(b_constant(1).name)
        outgoing = [v for v in structure.facts(X_RELATION) if v[0] == source]
        assert len(outgoing) == 2


class TestClassification:
    def test_correct(self, arena):
        assert arena.classify(arena.correct_database({1: 2, 2: 1})) is (
            DatabaseKind.CORRECT
        )

    def test_d_arena_itself_correct(self, arena):
        assert arena.classify(arena.d_arena) is DatabaseKind.CORRECT

    def test_extra_x_atoms_stay_correct(self, arena):
        structure = arena.d_arena.with_fact(
            X_RELATION, (("anything",), ("else",))
        )
        assert arena.classify(structure) is DatabaseKind.CORRECT

    def test_extra_sigma0_atom_slightly_incorrect(self, arena):
        structure = arena.d_arena.with_fact("E", (("junk",), ("junk",)))
        assert arena.classify(structure) is DatabaseKind.SLIGHTLY_INCORRECT

    def test_extra_s_atom_slightly_incorrect(self, arena):
        structure = arena.d_arena.with_fact(
            "S_1", (arena.d_arena.interpret("a"), arena.d_arena.interpret("a_1"))
        )
        assert arena.classify(structure) is DatabaseKind.SLIGHTLY_INCORRECT

    def test_identifying_constants_seriously_incorrect(self, arena):
        d = arena.d_arena
        merged = d.relabel({d.interpret("a_1"): d.interpret("a_2")})
        assert arena.classify(merged) is DatabaseKind.SERIOUSLY_INCORRECT

    def test_identifying_heart_seriously_incorrect(self, arena):
        d = arena.d_arena
        merged = d.relabel({d.interpret(HEART): d.interpret("a")})
        assert arena.classify(merged) is DatabaseKind.SERIOUSLY_INCORRECT

    def test_missing_fact_not_arena(self, arena):
        d = arena.d_arena
        heart = d.interpret(HEART)
        broken = d.without_fact("E", (heart, heart))
        assert arena.classify(broken) is DatabaseKind.NOT_ARENA

    def test_missing_constant_not_arena(self, arena, richer_lemma11):
        structure = build_pi_s(richer_lemma11).canonical_structure()
        assert arena.classify(structure) is DatabaseKind.NOT_ARENA
