"""Tests for CYCLIQ queries and cyclique combinatorics (Section 3.1)."""

import pytest

from repro.core import (
    CycliqueKind,
    all_cycliques,
    classify_cyclique,
    cyclass,
    cyclic_shift,
    cycliq,
    cycliq_u,
    is_cyclique,
    partition_cyclasses,
    rotations,
)
from repro.errors import QueryError
from repro.homomorphism import count
from repro.queries import variables
from repro.queries.terms import HEART_C, SPADE_C
from repro.relational import Schema, Structure


class TestQueries:
    def test_cycliq_has_p_atoms(self):
        terms = variables("a", "b", "c", "d")
        query = cycliq("R", terms)
        assert query.atom_count == 4
        assert query.schema.arity("R") == 4

    def test_cycliq_on_constant_tuple_collapses(self):
        # All rotations of (h, h, h) are the same atom.
        query = cycliq("R", (HEART_C,) * 3)
        assert query.atom_count == 1

    def test_cycliq_u_adds_unary_atoms(self):
        terms = variables("a", "b", "c")
        query = cycliq_u("P", "A", terms)
        assert query.atom_count == 3 + 3

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            cycliq("R", ())


class TestShifts:
    def test_rotations(self):
        assert rotations((1, 2, 3)) == [(1, 2, 3), (2, 3, 1), (3, 1, 2)]

    def test_cyclic_shift(self):
        assert cyclic_shift((1, 2, 3, 4), 1) == (2, 3, 4, 1)
        assert cyclic_shift((1, 2, 3, 4), 4) == (1, 2, 3, 4)
        assert cyclic_shift((1, 2, 3, 4), 6) == (3, 4, 1, 2)

    def test_cyclass_is_rotation_set(self):
        assert cyclass((1, 2)) == {(1, 2), (2, 1)}
        assert cyclass((1, 1)) == {(1, 1)}


class TestClassification:
    def test_homogeneous(self):
        assert classify_cyclique((5, 5, 5)) is CycliqueKind.HOMOGENEOUS

    def test_normal(self):
        assert classify_cyclique((1, 2, 2)) is CycliqueKind.NORMAL

    def test_degenerate(self):
        assert classify_cyclique((1, 2, 1, 2)) is CycliqueKind.DEGENERATE

    @pytest.mark.parametrize("p", [4, 6, 8, 9, 12])
    def test_lemma8_bound(self, p):
        """Lemma 8: a degenerate cyclique's orbit has at most p/2 members."""
        import itertools

        for values in itertools.product(range(3), repeat=p):
            if classify_cyclique(values) is CycliqueKind.DEGENERATE:
                assert len(cyclass(values)) <= p // 2

    def test_paper_examples(self):
        """[♥,♥̄] is homogeneous and [♠,♥̄] is normal (Section 3.1)."""
        p = 5
        heart_tuple = (HEART_C,) * p
        spade_tuple = (SPADE_C,) + (HEART_C,) * (p - 1)
        assert classify_cyclique(heart_tuple) is CycliqueKind.HOMOGENEOUS
        assert classify_cyclique(spade_tuple) is CycliqueKind.NORMAL


class TestStructureSide:
    @pytest.fixture
    def witness(self):
        """The β witness: rotations of (s,h,h) plus the heart loop."""
        schema = Schema.from_arities({"R": 3, "A": 1})
        facts = {
            "R": set(rotations(("s", "h", "h"))) | {("h", "h", "h")},
            "A": {("s",), ("h",)},
        }
        return Structure(schema, facts)

    def test_is_cyclique(self, witness):
        assert is_cyclique(witness, "R", ("h", "h", "h"))
        assert is_cyclique(witness, "R", ("s", "h", "h"))
        assert not is_cyclique(witness, "R", ("h", "s", "s"))

    def test_all_cycliques(self, witness):
        found = all_cycliques(witness, "R")
        assert len(found) == 4  # 3 rotations + the loop

    def test_unary_filter(self, witness):
        restricted = all_cycliques(witness, "R", unary="A")
        assert len(restricted) == 4
        no_a = Structure(
            witness.schema,
            {"R": witness.facts("R"), "A": {("h",)}},
        )
        assert len(all_cycliques(no_a, "R", unary="A")) == 1

    def test_partition(self, witness):
        classes = partition_cyclasses(all_cycliques(witness, "R"))
        sizes = sorted(len(cls) for cls in classes)
        assert sizes == [1, 3]

    def test_count_matches_cycliques(self, witness):
        """CYCLIQ(x⃗)(D) equals the number of cycliques in D."""
        terms = variables("a", "b", "c")
        assert count(cycliq("R", terms), witness) == 4
