"""Request-scoped tracing: ids in, ids out, spans in the flight recorder.

The contract under test: the *client* mints ``X-Trace-Id`` /
``X-Request-Id``, the server adopts them (or mints replacements for
absent/malformed ones), every response — success, shed, deadline — goes
out stamped with the same pair in body and headers, retries reuse the
request id so server-side counters see one logical caller, and
``GET /traces`` serves a bounded ring of completed request traces whose
span trees show where the time went (admission → wait/coalesce →
queue_wait → evaluate).
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.trace import FlightRecorder
from repro.relational import Schema, Structure
from repro.service import EvaluationServer, ServerConfig, ServiceClient
from repro.service import protocol
from repro.workloads import cycle_query

SLOW_QUERY = cycle_query(6)


def _graph(n: int, seed: int) -> Structure:
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(4 * n)}
    return Structure(
        Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n)
    )


SLOW_GRAPH = _graph(13, 0)


def _dense_facts(n: int, seed: int) -> str:
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(4 * n)}
    return " ".join(f"E(n{a},n{b})" for a, b in sorted(edges))


SLOW_FACTS = _dense_facts(13, 0)


def _post_raw(
    base_url: str,
    endpoint: str,
    body: dict,
    headers: dict | None = None,
) -> tuple[int, dict, dict]:
    """``(status, response headers, parsed body)`` without client retries."""
    request = urllib.request.Request(
        f"{base_url}/{endpoint}",
        data=json.dumps(body).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read().decode("utf-8")),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            dict(error.headers),
            json.loads(error.read().decode("utf-8")),
        )


EVALUATE_BODY = {
    "kind": "cq",
    "query_text": "E(x,y)",
    "facts": "E(a,b) E(b,c)",
}


class TestProtocolIds:
    def test_mint_id_is_seedable_and_hex(self):
        rng_a, rng_b = random.Random(7), random.Random(7)
        first = protocol.mint_id(rng_a)
        assert first == protocol.mint_id(rng_b)
        assert len(first) == 16
        int(first, 16)  # parses as hex

    def test_unseeded_mint_ids_are_distinct(self):
        assert protocol.mint_id() != protocol.mint_id()

    @pytest.mark.parametrize(
        "value", [None, "", "   ", "a" * 65, "id with spaces", "id\nnewline", 42]
    )
    def test_clean_id_rejects_malformed(self, value):
        assert protocol.clean_id(value) is None

    def test_clean_id_accepts_and_strips(self):
        assert protocol.clean_id("  abc-DEF_1.2  ") == "abc-DEF_1.2"

    def test_stamp_ids_copies_success_payload(self):
        payload = {"count": 3}
        stamped = protocol.stamp_ids(payload, "t1", "r1")
        assert stamped == {"count": 3, "trace_id": "t1", "request_id": "r1"}
        assert "trace_id" not in payload  # coalesced waiters share payloads

    def test_stamp_ids_targets_error_envelopes(self):
        envelope = protocol.error_envelope("overloaded", "busy", 0.05)
        stamped = protocol.stamp_ids(envelope, "t1", "r1")
        assert stamped["error"]["trace_id"] == "t1"
        assert stamped["error"]["request_id"] == "r1"
        assert "trace_id" not in envelope["error"]


class TestFlightRecorder:
    def test_capacity_bound_and_eviction_accounting(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.record({"index": index})
        assert len(recorder) == 3
        assert recorder.recorded == 10
        assert recorder.dropped == 7
        # Oldest-first, holding exactly the newest three.
        assert [entry["index"] for entry in recorder.snapshot()] == [7, 8, 9]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_concurrent_records_all_counted(self):
        recorder = FlightRecorder(capacity=16)

        def record(worker: int):
            for index in range(200):
                recorder.record({"worker": worker, "index": index})

        threads = [
            threading.Thread(target=record, args=(worker,))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.recorded == 800
        assert len(recorder) == 16
        assert recorder.dropped == 784


@pytest.fixture()
def server():
    config = ServerConfig(workers=2, queue_depth=16, trace_buffer=64)
    with EvaluationServer(config) as instance:
        yield instance


class TestHeaderPropagation:
    def test_client_ids_echoed_in_body_and_headers(self, server):
        status, headers, body = _post_raw(
            server.url,
            "evaluate",
            EVALUATE_BODY,
            {"X-Trace-Id": "trace-abc", "X-Request-Id": "req-001"},
        )
        assert status == 200
        assert body["count"] == 2
        assert body["trace_id"] == "trace-abc"
        assert body["request_id"] == "req-001"
        assert headers["X-Trace-Id"] == "trace-abc"
        assert headers["X-Request-Id"] == "req-001"

    def test_missing_ids_are_server_minted(self, server):
        status, headers, body = _post_raw(server.url, "evaluate", EVALUATE_BODY)
        assert status == 200
        assert len(body["trace_id"]) == 16
        assert len(body["request_id"]) == 16
        assert headers["X-Trace-Id"] == body["trace_id"]

    def test_malformed_header_degrades_to_minted(self, server):
        _, _, body = _post_raw(
            server.url,
            "evaluate",
            EVALUATE_BODY,
            {"X-Trace-Id": "bad id with spaces", "X-Request-Id": "x" * 200},
        )
        assert body["trace_id"] != "bad id with spaces"
        assert len(body["trace_id"]) == 16
        assert len(body["request_id"]) == 16

    def test_bad_request_envelope_is_stamped(self, server):
        status, headers, body = _post_raw(
            server.url,
            "evaluate",
            {"kind": "cq"},  # no query: a library-classified failure
            {"X-Trace-Id": "trace-err", "X-Request-Id": "req-err"},
        )
        assert status != 200
        assert body["error"]["trace_id"] == "trace-err"
        assert body["error"]["request_id"] == "req-err"
        assert headers["X-Trace-Id"] == "trace-err"

    def test_repeated_request_id_counts_as_retry(self, server):
        for _ in range(3):
            _post_raw(
                server.url,
                "evaluate",
                EVALUATE_BODY,
                {"X-Request-Id": "same-logical-request"},
            )
        metrics = ServiceClient(server.url).metrics()["metrics"]
        assert metrics["service.requests"]["value"] == 3
        assert metrics["service.logical_requests"]["value"] == 1
        assert metrics["service.retried_requests"]["value"] == 2

    def test_client_reuses_request_id_across_retries(self):
        """A stub 429s twice; all three attempts carry one request id."""
        from http.server import BaseHTTPRequestHandler, HTTPServer

        seen: list[tuple[str, str, str]] = []

        class Stub(BaseHTTPRequestHandler):
            def do_POST(self):
                seen.append(
                    (
                        self.headers.get("X-Trace-Id"),
                        self.headers.get("X-Request-Id"),
                        self.headers.get("X-Request-Attempt"),
                    )
                )
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                if len(seen) <= 2:
                    body = json.dumps(
                        protocol.error_envelope(
                            "overloaded", "busy", retry_after=0.01
                        )
                    ).encode()
                    self.send_response(429)
                else:
                    body = json.dumps({"count": 41}).encode()
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Stub)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}", retries=4, seed=0)
            assert client.evaluate("E(x,y)", "E(a,b)") == 41
        finally:
            httpd.shutdown()
            httpd.server_close()
        assert len(seen) == 3
        trace_ids = {trace for trace, _, _ in seen}
        request_ids = {request for _, request, _ in seen}
        assert trace_ids == {client.trace_id}
        assert request_ids == {client.last_request_id}
        assert [attempt for _, _, attempt in seen] == ["0", "1", "2"]


class TestTracesEndpoint:
    def test_completed_request_has_full_span_tree(self, server):
        client = ServiceClient(server.url, seed=3)
        client.evaluate("E(x,y) & E(y,z)", "E(a,b) E(b,c)")
        entry = client.traces()["traces"][-1]
        assert entry["trace_id"] == client.trace_id
        assert entry["request_id"] == client.last_request_id
        assert entry["status"] == "completed"
        root = entry["spans"]
        assert root["name"] == "request"
        names = [child["name"] for child in root["children"]]
        assert names == ["admission", "wait", "queue_wait", "evaluate"]
        evaluate = root["children"][-1]
        assert evaluate["attrs"]["outcome"] == "ok"
        assert evaluate["duration_ms"] is not None

    def test_coalesced_request_links_to_leader(self):
        config = ServerConfig(workers=1, queue_depth=8, trace_buffer=32)
        with EvaluationServer(config) as server:
            barrier = threading.Barrier(3)

            def fire():
                client = ServiceClient(server.url, retries=0)
                barrier.wait()
                client.evaluate(
                    SLOW_QUERY, SLOW_GRAPH, engine="backtracking", cache=False
                )

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            traces = ServiceClient(server.url).traces()["traces"]
        coalesced = [
            entry for entry in traces if entry["status"] == "coalesced"
        ]
        leaders = [
            entry for entry in traces if entry["status"] == "completed"
        ]
        assert coalesced, traces
        assert leaders, traces
        leader_ids = {entry["request_id"] for entry in leaders}
        for entry in coalesced:
            [coalesce_span] = [
                child
                for child in entry["spans"]["children"]
                if child["name"] == "coalesce"
            ]
            assert coalesce_span["attrs"]["leader_request_id"] in leader_ids

    def test_shed_request_records_shed_span(self):
        config = ServerConfig(
            workers=1, queue_depth=1, coalesce=False, trace_buffer=32
        )
        with EvaluationServer(config) as server:
            barrier = threading.Barrier(6)
            statuses: list[int] = []
            lock = threading.Lock()

            def fire(index: int):
                barrier.wait()
                status, _, body = _post_raw(
                    server.url,
                    "evaluate",
                    {
                        "kind": "cq",
                        "query_text": str(SLOW_QUERY),
                        "facts": SLOW_FACTS,
                        "engine": "backtracking",
                        "cache": False,
                    },
                    {"X-Request-Id": f"shed-test-{index}"},
                )
                with lock:
                    statuses.append(status)
                if status == 429:
                    assert body["error"]["request_id"] == f"shed-test-{index}"

            threads = [
                threading.Thread(target=fire, args=(index,))
                for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            traces = ServiceClient(server.url).traces()["traces"]
        assert 429 in statuses, statuses
        shed_entries = [
            entry for entry in traces if entry["status"] == "overloaded"
        ]
        assert shed_entries
        for entry in shed_entries:
            names = [child["name"] for child in entry["spans"]["children"]]
            assert "shed" in names
            [admission] = [
                child
                for child in entry["spans"]["children"]
                if child["name"] == "admission"
            ]
            assert admission["attrs"]["outcome"] == "shed"

    def test_deadline_exceeded_trace_and_stamped_envelope(self, server):
        status, _, body = _post_raw(
            server.url,
            "evaluate",
            {
                "kind": "cq",
                "query_text": str(cycle_query(7)),
                "facts": SLOW_FACTS,
                "engine": "backtracking",
                "cache": False,
                "deadline_ms": 1,
            },
            {"X-Trace-Id": "deadline-trace", "X-Request-Id": "deadline-req"},
        )
        assert status == 504
        assert body["error"]["kind"] == "deadline_exceeded"
        assert body["error"]["trace_id"] == "deadline-trace"
        assert body["error"]["request_id"] == "deadline-req"
        traces = ServiceClient(server.url).traces()["traces"]
        [entry] = [
            item
            for item in traces
            if item["request_id"] == "deadline-req"
        ]
        assert entry["status"] == "deadline_exceeded"
        [wait] = [
            child
            for child in entry["spans"]["children"]
            if child["name"] == "wait"
        ]
        assert wait["attrs"]["completed"] is False

    def test_trace_buffer_bounded_under_concurrent_load(self):
        config = ServerConfig(workers=2, queue_depth=16, trace_buffer=8)
        with EvaluationServer(config) as server:
            def fire(worker: int):
                client = ServiceClient(server.url, seed=worker)
                for _ in range(10):
                    client.evaluate("E(x,y)", "E(a,b) E(b,c)")

            threads = [
                threading.Thread(target=fire, args=(worker,))
                for worker in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            document = ServiceClient(server.url).traces()
        assert document["capacity"] == 8
        assert document["recorded"] == 40
        assert document["dropped"] == 32
        assert len(document["traces"]) == 8
        # Stable JSON contract: every held entry is a complete record.
        for entry in document["traces"]:
            assert set(entry) >= {
                "trace_id",
                "request_id",
                "endpoint",
                "status",
                "retried",
                "spans",
            }

    def test_health_reports_recorder_stats(self, server):
        ServiceClient(server.url).evaluate("E(x,y)", "E(a,b)")
        health = ServiceClient(server.url).healthz()
        assert health["traces"]["capacity"] == 64
        assert health["traces"]["recorded"] >= 1

    def test_request_ms_histogram_grows_per_request(self, server):
        client = ServiceClient(server.url, seed=1)
        before = client.metrics()["metrics"]["service.request_ms.evaluate"]
        client.evaluate("E(x,y)", "E(a,b)")
        client.evaluate("E(x,y)", "E(a,b)")
        after = client.metrics()["metrics"]["service.request_ms.evaluate"]
        assert after["type"] == "histogram"
        assert after["count"] == before["count"] + 2
        assert sum(after["buckets"].values()) == after["count"]
