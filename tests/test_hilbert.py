"""Tests for the Appendix B pipeline (Hilbert's 10th → Lemma 11).

Pins the numbered lemmas of Appendix B on concrete instances:

* Lemma 25: ``Q(Ξ) = 0 ⟺ P₁(Ξ) > P₂(Ξ)``;
* Lemmas 26–28 via their consequences on concrete valuations;
* Lemma 29: the grid-level equivalence between a root of ``Q`` and a
  violation of the produced Lemma 11 inequality.
"""

import itertools

import pytest

from repro.polynomials import (
    Polynomial,
    always_positive,
    fermat_cubes,
    hilbert_to_lemma11,
    linear,
    markov,
    parity_obstruction,
    pell,
    pell_nontrivial,
    standard_suite,
    sum_of_squares,
)


def grid_valuations(variables, max_value):
    indices = sorted(variables)
    for values in itertools.product(range(max_value + 1), repeat=len(indices)):
        yield dict(zip(indices, values))


class TestDiophantineInstances:
    def test_witnesses_check_out(self):
        for instance in standard_suite():
            if instance.witness is not None:
                assert instance.polynomial.evaluate(instance.witness) == 0

    def test_solvability_flags(self):
        names = {i.name: i.solvable for i in standard_suite()}
        assert names["pell(2)"] is True
        assert names["pell_nontrivial(4)"] is False
        assert names["always_positive"] is False

    def test_linear_decision_is_exact(self):
        assert linear(3, 5, 8).solvable
        assert not linear(2, 4, 7).solvable

    def test_pell_square_unsolvable(self):
        assert not pell_nontrivial(9).solvable

    def test_sum_of_squares(self):
        assert sum_of_squares(13).solvable
        assert not sum_of_squares(7).solvable

    def test_fermat_cubes_has_no_small_roots(self):
        q = fermat_cubes().polynomial
        for valuation in grid_valuations(q.variables, 5):
            assert q.evaluate(valuation) != 0

    def test_markov_witness(self):
        assert markov().polynomial.evaluate({1: 1, 2: 1, 3: 1}) == 0


class TestPipelineStructure:
    @pytest.mark.parametrize("instance", standard_suite(), ids=lambda i: i.name)
    def test_output_is_valid_lemma11(self, instance):
        reduction = hilbert_to_lemma11(instance.polynomial)
        lemma11 = reduction.instance  # construction validates everything
        assert lemma11.c >= 2
        assert all(m.indices[0] == 1 for m in lemma11.monomials)
        assert lemma11.p_s.is_homogeneous()

    def test_variables_renamed_from_two(self):
        reduction = hilbert_to_lemma11(pell(2).polynomial)
        assert 1 not in reduction.q.variables
        assert min(reduction.q.variables) == 2

    def test_degree_is_one_more_than_max(self):
        reduction = hilbert_to_lemma11(pell(2).polynomial)
        max_degree = max(m.degree for m in reduction.p1_prime.monomials)
        assert reduction.d == max_degree + 1

    def test_describe_runs(self):
        text = hilbert_to_lemma11(pell(2).polynomial).describe()
        assert "P_s" in text and "P_b" in text


class TestLemma25:
    @pytest.mark.parametrize(
        "instance",
        [linear(2, 3, 7), parity_obstruction(), pell(2), always_positive()],
        ids=lambda i: i.name,
    )
    def test_root_iff_p1_exceeds_p2(self, instance):
        reduction = hilbert_to_lemma11(instance.polynomial)
        for valuation in grid_valuations(reduction.q.variables, 4):
            has_root = reduction.q.evaluate(valuation) == 0
            dominates = reduction.p1.evaluate(valuation) > reduction.p2.evaluate(
                valuation
            )
            assert has_root == dominates


class TestLemma29:
    """Grid-level equivalence: Q has a root iff the Lemma 11 inequality fails."""

    @pytest.mark.parametrize(
        "instance",
        [linear(2, 3, 7), linear(2, 4, 5), parity_obstruction(), always_positive()],
        ids=lambda i: i.name,
    )
    def test_equivalence_on_grid(self, instance):
        reduction = hilbert_to_lemma11(instance.polynomial)
        lemma11 = reduction.instance
        grid_violation = lemma11.find_counterexample(3) is not None
        if instance.solvable and all(
            value <= 3 for value in (instance.witness or {}).values()
        ):
            assert grid_violation
        if not instance.solvable:
            assert not grid_violation

    def test_witness_lifts_to_violation(self):
        """A root of Q at Ξ yields a violation at [1, Ξ] (Lemma 27/29)."""
        instance = linear(2, 3, 7)
        reduction = hilbert_to_lemma11(instance.polynomial)
        witness = instance.witness
        assert witness is not None
        lifted = {1: 1}
        lifted.update(
            {reduction.variable_renaming[old]: value for old, value in witness.items()}
        )
        assert not reduction.instance.holds_for(lifted)

    def test_unsolvable_holds_everywhere_on_grid(self):
        reduction = hilbert_to_lemma11(parity_obstruction().polynomial)
        for valuation in grid_valuations(range(1, reduction.instance.n + 1), 3):
            assert reduction.instance.holds_for(valuation)


class TestPaddingCollision:
    def test_colliding_monomials_are_merged(self):
        # x2 and x2*x3 pad to x1^2*x2 and x1*x2*x3 at d = 3 — no collision;
        # engineer one: Q = x - x*y (monomials x and x*y; squared gives
        # x^2, x^2*y, x^2*y^2 — padding x^2 to degree 3 gives x1*x2^2 while
        # x^2*y stays distinct).  Use a crafted polynomial where collision
        # provably occurs: monomial sets {x2} and {x1-padded} cannot collide
        # through the pipeline (x1 is fresh), so check instead that the
        # instance stays valid and Lemma 29 survives on a polynomial with
        # same-degree-after-padding monomials.
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        q = x * y - y - 1
        reduction = hilbert_to_lemma11(q)
        lemma11 = reduction.instance
        canonical = [m.canonical() for m in lemma11.monomials]
        assert len(set(canonical)) == len(canonical)
        # Values agree with the unmerged polynomials.
        for valuation in grid_valuations(range(1, lemma11.n + 1), 2):
            assert lemma11.p_s.evaluate(valuation) == reduction.p1_doubleprime.evaluate(
                valuation
            )
