"""Tests for the projection-free decidable fragment ([7])."""

import pytest

from repro.decision import enumerate_structures
from repro.decision.projection_free import projection_free_contained
from repro.errors import QueryError
from repro.queries import OpenQuery, bag_answer_contained, parse_query
from repro.relational import Schema


def pf(text: str, head: tuple[str, ...]) -> OpenQuery:
    return OpenQuery(parse_query(text), head)


class TestDecision:
    def test_positive(self):
        assert projection_free_contained(
            pf("E(x, y) & E(y, x)", ("x", "y")), pf("E(x, y)", ("x", "y"))
        )

    def test_negative(self):
        assert not projection_free_contained(
            pf("E(x, y)", ("x", "y")), pf("E(x, y) & E(y, x)", ("x", "y"))
        )

    def test_reflexive(self):
        q = pf("E(x, y) & E(y, z)", ("x", "y", "z"))
        assert projection_free_contained(q, q)

    def test_head_must_be_fixed_pointwise(self):
        # E(x,y) vs E(y,x): as unordered sets of atoms a hom exists, but
        # with the head fixed pointwise the swapped query is NOT entailed.
        assert not projection_free_contained(
            pf("E(x, y)", ("x", "y")), pf("E(y, x)", ("x", "y"))
        )

    def test_rejects_projections(self):
        with pytest.raises(QueryError):
            projection_free_contained(
                pf("E(x, y)", ("x",)), pf("E(x, y)", ("x",))
            )

    def test_rejects_inequalities(self):
        with pytest.raises(QueryError):
            projection_free_contained(
                OpenQuery(parse_query("E(x, y) & x != y"), ("x", "y")),
                pf("E(x, y)", ("x", "y")),
            )

    def test_rejects_head_mismatch(self):
        with pytest.raises(QueryError):
            projection_free_contained(
                pf("E(x, y)", ("x", "y")), pf("E(x, y)", ("y", "x"))
            )


class TestSoundnessAndCompleteness:
    """The decision procedure agrees with exhaustive answer-multiset checks."""

    PAIRS = [
        ("E(x, y) & E(y, x)", "E(x, y)"),
        ("E(x, y)", "E(x, y) & E(y, x)"),
        ("E(x, y) & E(y, z)", "E(x, y) & E(y, z) & E(x, z)"),
        ("E(x, y) & E(x, x) & E(y, y)", "E(x, x) & E(y, y)"),
        ("E(x, x) & E(y, y)", "E(x, y) & E(y, x)"),
        ("E(x, y)", "E(y, x)"),
    ]

    @pytest.mark.parametrize("s_text,b_text", PAIRS)
    def test_agreement_on_small_structures(self, s_text, b_text):
        variables = tuple(
            sorted(
                {v.name for v in parse_query(s_text).variables}
                | {v.name for v in parse_query(b_text).variables}
            )
        )
        query_s = OpenQuery(parse_query(s_text), variables)
        query_b = OpenQuery(parse_query(b_text), variables)
        decided = projection_free_contained(query_s, query_b)
        schema = Schema.from_arities({"E": 2})
        exhaustive = all(
            bag_answer_contained(query_s, query_b, structure)
            for structure in enumerate_structures(schema, 2)
        )
        assert decided == exhaustive
