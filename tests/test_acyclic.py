"""Tests for the Yannakakis acyclic counting engine."""

import pytest

from repro.errors import EvaluationError
from repro.homomorphism import count
from repro.homomorphism.acyclic import (
    count_homomorphisms_acyclic,
    is_acyclic,
    join_tree,
)
from repro.queries import parse_query
from repro.relational import Schema, Structure

from tests.conftest import brute_force_count


@pytest.fixture
def structure():
    return Structure(
        Schema.from_arities({"E": 2, "U": 1, "T": 3}),
        {
            "E": [(0, 1), (1, 2), (2, 0), (0, 0), (1, 1)],
            "U": [(0,), (2,)],
            "T": [(0, 1, 2), (1, 1, 1), (0, 0, 2)],
        },
    )


class TestAcyclicityDetection:
    def test_paths_and_stars_acyclic(self):
        assert is_acyclic(parse_query("E(x, y) & E(y, z) & E(z, w)"))
        assert is_acyclic(parse_query("E(x, y) & E(x, z) & E(x, w)"))

    def test_triangle_cyclic(self):
        assert not is_acyclic(parse_query("E(x, y) & E(y, z) & E(z, x)"))

    def test_alpha_acyclic_with_big_atom(self):
        # T(x,y,z) covers the triangle's variables: α-acyclic.
        assert is_acyclic(parse_query("T(x, y, z) & E(x, y) & E(y, z) & E(z, x)"))

    def test_disconnected_acyclic(self):
        assert is_acyclic(parse_query("E(x, y) & E(u, v)"))

    def test_single_atom(self):
        assert is_acyclic(parse_query("T(x, y, z)"))

    def test_join_tree_shape(self):
        tree = join_tree(parse_query("E(x, y) & E(y, z)"))
        assert tree is not None
        assert len(tree) == 2
        assert tree[-1][1] is None  # last node is the root

    def test_empty_query(self):
        assert join_tree(parse_query("TRUE")) == []


class TestCounting:
    QUERIES = [
        "E(x, y)",
        "E(x, y) & E(y, z)",
        "E(x, y) & E(y, z) & E(z, w)",
        "E(x, y) & E(x, z)",
        "E(x, y) & U(x) & U(y)",
        "T(x, y, z) & E(x, y)",
        "T(x, y, z) & E(x, y) & E(y, z) & E(z, x)",
        "E(x, y) & E(u, v)",
        "E(x, x) & U(x)",
        "T(x, x, y) & E(y, y)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_agrees_with_general_engines(self, structure, text):
        query = parse_query(text)
        expected = count(query, structure)
        assert count_homomorphisms_acyclic(query, structure) == expected
        assert expected == brute_force_count(query, structure)

    def test_with_constants(self):
        d = Structure(
            Schema.from_arities({"E": 2}),
            {"E": [(0, 1), (0, 2), (1, 2)]},
            constants={"a": 0},
        )
        query = parse_query("E(#a, x) & E(x, y)")
        assert count_homomorphisms_acyclic(query, d) == count(query, d)

    def test_unsatisfiable_counts_zero(self, structure):
        query = parse_query("U(x) & E(x, y) & U(y) & E(y, z) & U(z)")
        assert count_homomorphisms_acyclic(query, structure) == count(
            query, structure
        )

    def test_empty_query_counts_one(self, structure):
        assert count_homomorphisms_acyclic(parse_query("TRUE"), structure) == 1

    def test_rejects_cyclic(self, structure):
        with pytest.raises(EvaluationError):
            count_homomorphisms_acyclic(
                parse_query("E(x, y) & E(y, z) & E(z, x)"), structure
            )

    def test_rejects_inequalities(self, structure):
        with pytest.raises(EvaluationError):
            count_homomorphisms_acyclic(
                parse_query("E(x, y) & x != y"), structure
            )

    def test_missing_relation_counts_zero(self, structure):
        assert count_homomorphisms_acyclic(parse_query("F(x, y)"), structure) == 0


class TestDifferential:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_acyclic_queries(self, seed):
        import random

        rng = random.Random(seed)
        schema = Schema.from_arities({"E": 2, "U": 1})
        n = rng.randint(1, 4)
        d = Structure(
            schema,
            {
                "E": {(rng.randint(0, n), rng.randint(0, n)) for _ in range(7)},
                "U": {(rng.randint(0, n),) for _ in range(3)},
            },
            domain=range(n + 1),
        )
        # Build a random path/star mix (always acyclic).
        from repro.queries import Atom, ConjunctiveQuery, Variable

        variables = [Variable(f"v{i}") for i in range(rng.randint(2, 5))]
        atoms = []
        for i in range(1, len(variables)):
            parent = variables[rng.randint(0, i - 1)]
            atoms.append(Atom("E", (parent, variables[i])))
        for _ in range(rng.randint(0, 2)):
            atoms.append(Atom("U", (rng.choice(variables),)))
        query = ConjunctiveQuery(atoms)
        if not is_acyclic(query):
            pytest.skip("tree-shaped construction should always be acyclic")
        assert count_homomorphisms_acyclic(query, d) == brute_force_count(query, d)
