"""Tests for multiset databases and bag semantics proper."""

import pytest

from repro.errors import SchemaError
from repro.homomorphism import count
from repro.queries import parse_query
from repro.relational import Schema, Structure
from repro.relational.multiset_structure import MultisetStructure, count_weighted


@pytest.fixture
def schema():
    return Schema.from_arities({"E": 2, "U": 1})


@pytest.fixture
def multiset(schema):
    return MultisetStructure(
        schema,
        {"E": {(0, 1): 3, (1, 0): 1, (1, 1): 2}, "U": {(0,): 5}},
    )


class TestConstruction:
    def test_multiplicities(self, multiset):
        assert multiset.multiplicity("E", (0, 1)) == 3
        assert multiset.multiplicity("E", (9, 9)) == 0

    def test_total(self, multiset):
        assert multiset.total_multiplicity("E") == 6
        assert multiset.total_multiplicity() == 11

    def test_zero_multiplicity_dropped(self, schema):
        d = MultisetStructure(schema, {"E": {(0, 1): 0}})
        assert d.multiplicity("E", (0, 1)) == 0
        assert d.total_multiplicity() == 0

    def test_negative_rejected(self, schema):
        with pytest.raises(SchemaError):
            MultisetStructure(schema, {"E": {(0, 1): -1}})

    def test_undeclared_relation_rejected(self, schema):
        with pytest.raises(SchemaError):
            MultisetStructure(schema, {"F": {(0, 1): 1}})

    def test_support(self, multiset):
        support = multiset.support()
        assert support.facts("E") == {(0, 1), (1, 0), (1, 1)}

    def test_lift_roundtrip(self, schema):
        base = Structure(schema, {"E": [(0, 1), (1, 2)]})
        lifted = MultisetStructure.from_structure(base)
        assert lifted.support() == base

    def test_scale(self, multiset):
        scaled = multiset.scale("E", (0, 1), 2)
        assert scaled.multiplicity("E", (0, 1)) == 6
        assert multiset.multiplicity("E", (0, 1)) == 3  # original untouched

    def test_scale_missing_fact(self, multiset):
        with pytest.raises(SchemaError):
            multiset.scale("E", (7, 7), 2)


class TestWeightedCounting:
    def test_single_atom_counts_tuples_with_duplicates(self, multiset):
        """SELECT COUNT(*) FROM E."""
        assert count_weighted(parse_query("E(x, y)"), multiset) == 6

    def test_join_weights_multiply(self, multiset):
        # E(x,y) & E(y,z): each length-2 walk weighted by both legs.
        # Walks: 0→1→0 (3·1), 0→1→1 (3·2), 1→0→1 (1·3), 1→1→0 (2·1),
        #        1→1→1 (2·2).
        expected = 3 * 1 + 3 * 2 + 1 * 3 + 2 * 1 + 2 * 2
        assert count_weighted(parse_query("E(x, y) & E(y, z)"), multiset) == expected

    def test_multiplicity_one_matches_set_semantics(self, schema):
        base = Structure(schema, {"E": [(0, 1), (1, 0), (1, 1)], "U": [(0,)]})
        lifted = MultisetStructure.from_structure(base)
        for text in ("E(x, y)", "E(x, y) & E(y, x)", "E(x, y) & U(x)"):
            query = parse_query(text)
            assert count_weighted(query, lifted) == count(query, base)

    def test_linearity_in_a_fact(self, multiset):
        """Doubling one fact's multiplicity adds exactly the homs through it."""
        query = parse_query("E(x, y)")
        base_value = count_weighted(query, multiset)
        doubled = multiset.scale("E", (1, 0), 2)
        assert count_weighted(query, doubled) == base_value + 1

    def test_repeated_atom_occurrences_square_the_weight(self, schema):
        d = MultisetStructure(schema, {"E": {(0, 0): 3}})
        # Two distinct atoms both mapping to the same fact: weight 3·3.
        assert count_weighted(parse_query("E(x, x) & E(x, y)"), d) == 9

    def test_inequalities_respected(self, multiset):
        with_ineq = count_weighted(parse_query("E(x, y) & x != y"), multiset)
        assert with_ineq == 3 + 1  # loops excluded, weights kept

    def test_disjoint_conjunction_multiplies(self, multiset):
        """The Lemma 1 analogue survives under bag semantics proper."""
        rho = parse_query("E(x, y)")
        rho_prime = parse_query("U(u)")
        assert count_weighted(rho * rho_prime, multiset) == count_weighted(
            rho, multiset
        ) * count_weighted(rho_prime, multiset)

    def test_constants(self, schema):
        d = MultisetStructure(
            schema, {"E": {(0, 1): 4}}, constants={"a": 0}
        )
        assert count_weighted(parse_query("E(#a, x)"), d) == 4

    def test_bag_vs_bagset_divergence(self, schema):
        """The two semantics disagree as soon as a base table repeats rows."""
        d = MultisetStructure(schema, {"E": {(0, 1): 2}})
        query = parse_query("E(x, y)")
        assert count_weighted(query, d) == 2       # bag semantics proper
        assert count(query, d.support()) == 1      # bag-set semantics
