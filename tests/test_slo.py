"""The SLO layer: absolute objectives and the baseline regression gate.

A gate earns its keep in two directions: a healthy run sails through,
and a degraded run *fails loudly* — so alongside the pass-path tests,
this file carries the deliberate-regression negative controls the CI
``load-smoke`` job relies on (a gate that cannot fire gates nothing).
"""

from __future__ import annotations

import pytest

from repro.loadgen import (
    DEFAULT_SLOS,
    SCENARIO_NAMES,
    ScenarioSLO,
    check_regression,
    evaluate_slo,
)


def _row(
    scenario: str = "zipf-duplicates",
    p95_ms: float | None = 12.0,
    throughput_rps: float = 400.0,
    shed_rate: float = 0.0,
) -> dict:
    return {
        "scenario": scenario,
        "completed": 80,
        "shed": 0,
        "deadline_exceeded": 0,
        "errors": 0,
        "wall_s": 0.2,
        "throughput_rps": throughput_rps,
        "p50_ms": 3.0,
        "p95_ms": p95_ms,
        "p99_ms": 20.0,
        "shed_rate": shed_rate,
    }


def _run(rows: list[dict]) -> dict:
    return {"scenarios": rows}


SLO = ScenarioSLO(
    scenario="zipf-duplicates",
    p95_ms_max=100.0,
    throughput_rps_min=50.0,
    shed_rate_max=0.05,
)


class TestEvaluateSLO:
    def test_healthy_row_passes(self):
        assert evaluate_slo(_row(), SLO) == []

    def test_p95_breach_is_flagged(self):
        violations = evaluate_slo(_row(p95_ms=250.0), SLO)
        assert len(violations) == 1
        assert "p95" in violations[0]

    def test_throughput_breach_is_flagged(self):
        violations = evaluate_slo(_row(throughput_rps=10.0), SLO)
        assert len(violations) == 1
        assert "throughput" in violations[0]

    def test_shed_breach_is_flagged(self):
        violations = evaluate_slo(_row(shed_rate=0.5), SLO)
        assert len(violations) == 1
        assert "shed" in violations[0]

    def test_multiple_breaches_all_reported(self):
        violations = evaluate_slo(
            _row(p95_ms=250.0, throughput_rps=10.0, shed_rate=0.5), SLO
        )
        assert len(violations) == 3

    def test_missing_p95_is_flagged_not_skipped(self):
        # A run that recorded no latency at all must not silently pass.
        violations = evaluate_slo(_row(p95_ms=None), SLO)
        assert violations, "absent p95 should violate a p95 objective"

    def test_default_slos_cover_every_scenario(self):
        assert set(DEFAULT_SLOS) == set(SCENARIO_NAMES)
        for name, slo in DEFAULT_SLOS.items():
            assert slo.scenario == name
            assert slo.to_dict()["scenario"] == name


class TestRegressionGate:
    def test_identical_runs_do_not_regress(self):
        run = _run([_row(scenario=name) for name in SCENARIO_NAMES])
        assert check_regression(run, run) == []

    def test_p95_regression_fires(self):
        baseline = _run([_row(p95_ms=12.0)])
        current = _run([_row(p95_ms=40.0)])  # > 1.5x and above floor
        violations = check_regression(current, baseline)
        assert len(violations) == 1
        assert "p95" in violations[0]

    def test_p95_floor_absorbs_microsecond_noise(self):
        # 0.8 ms -> 3 ms is a 3.75x ratio but both are below the 5 ms
        # floor: sub-floor latencies are timer noise, not regressions.
        baseline = _run([_row(p95_ms=0.8)])
        current = _run([_row(p95_ms=3.0)])
        assert check_regression(current, baseline) == []

    def test_throughput_regression_fires(self):
        baseline = _run([_row(throughput_rps=400.0)])
        current = _run([_row(throughput_rps=100.0)])  # < 0.6x
        violations = check_regression(current, baseline)
        assert len(violations) == 1
        assert "throughput" in violations[0]

    def test_shed_increase_beyond_slack_fires(self):
        baseline = _run([_row(shed_rate=0.0)])
        current = _run([_row(shed_rate=0.25)])  # +0.25 > 0.10 slack
        violations = check_regression(current, baseline)
        assert len(violations) == 1
        assert "shed" in violations[0]

    def test_shed_within_slack_passes(self):
        baseline = _run([_row(shed_rate=0.02)])
        current = _run([_row(shed_rate=0.08)])
        assert check_regression(current, baseline) == []

    def test_scenario_missing_from_current_is_reported(self):
        baseline = _run(
            [_row(), _row(scenario="multi-tenant")]
        )
        current = _run([_row()])
        violations = check_regression(current, baseline)
        assert any("multi-tenant" in violation for violation in violations)

    def test_scenario_missing_from_baseline_is_reported(self):
        baseline = _run([_row()])
        current = _run([_row(), _row(scenario="multi-tenant")])
        violations = check_regression(current, baseline)
        assert any("multi-tenant" in violation for violation in violations)

    def test_custom_thresholds_respected(self):
        baseline = _run([_row(p95_ms=10.0)])
        current = _run([_row(p95_ms=13.0)])
        assert check_regression(current, baseline) == []
        strict = check_regression(current, baseline, p95_ratio=1.2)
        assert len(strict) == 1

    @pytest.mark.parametrize("bad_ratio", [0.0, -1.0])
    def test_rejects_nonpositive_thresholds(self, bad_ratio):
        run = _run([_row()])
        with pytest.raises(ValueError):
            check_regression(run, run, p95_ratio=bad_ratio)

    def test_deliberate_regression_negative_control(self):
        # The CI gate's reason to exist: degrade every scenario and the
        # gate must flag every one of them.
        baseline = _run([_row(scenario=name) for name in SCENARIO_NAMES])
        degraded = _run(
            [
                _row(
                    scenario=name,
                    p95_ms=12.0 * 10 + 1000.0,
                    throughput_rps=400.0 * 0.1,
                )
                for name in SCENARIO_NAMES
            ]
        )
        violations = check_regression(degraded, baseline)
        assert len(violations) >= 2 * len(SCENARIO_NAMES)
        for name in SCENARIO_NAMES:
            assert any(name in violation for violation in violations), name
