"""The incremental layer: deltas, fingerprints, and versioned databases.

Covers the whole delta pipeline bottom-up:

* :class:`Delta` — normalization, touched relations, serialization;
* :meth:`Structure.apply_delta` — insert/delete semantics (deletes win,
  no-ops are lenient, domains only grow), the three ``SchemaError``
  refusals, and structural sharing of untouched relations;
* content fingerprints — order independence, O(|delta|) XOR updates
  agreeing with from-scratch rebuilds, context sensitivity;
* :meth:`CountCache.invalidate_relations` — relation-scoped eviction;
* :class:`DeltaEvaluator` — version bookkeeping, migration of provably
  unaffected entries (the constant-intersection refinement), Lemma-1
  factor reuse, and bit-identical agreement with cold full recounts;
* the service layer — :class:`DatabaseRegistry` semantics and the live
  ``/db`` → ``/evaluate`` → ``/update`` round-trip over real HTTP.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SchemaError
from repro.homomorphism import count
from repro.homomorphism.cache import CountCache
from repro.homomorphism.delta import DeltaEvaluator, delta_affects
from repro.io import SerializationError, delta_from_dict, delta_to_dict
from repro.queries import parse_query
from repro.relational import Schema, Structure
from repro.relational.structure import Delta
from repro.service import (
    EvaluationServer,
    RemoteError,
    ServerConfig,
    ServiceClient,
    ServiceProtocolError,
)
from repro.service.databases import DatabaseRegistry
from repro.service.protocol import BadRequestError


def _graph(edges, n: int = 8, extra: dict | None = None) -> Structure:
    arities = {"E": 2}
    facts = {"E": set(edges)}
    for name, tuples in (extra or {}).items():
        arities[name] = len(next(iter(tuples)))
        facts[name] = set(tuples)
    return Structure(
        Schema.from_arities(arities), facts, domain=range(n)
    )


TRIANGLE = _graph({(0, 1), (1, 2), (2, 0)})


class TestDelta:
    def test_normalizes_to_tuples(self):
        delta = Delta(
            inserts=[("E", [1, 2])],
            deletes=[("E", (2, 1))],
            add_elements=[9],
        )
        assert delta.inserts == (("E", (1, 2)),)
        assert delta.deletes == (("E", (2, 1)),)
        assert delta.add_elements == (9,)
        assert delta.remove_elements == ()

    def test_touched_relations_and_is_empty(self):
        assert Delta().is_empty()
        assert Delta().touched_relations() == set()
        delta = Delta(inserts=[("E", (0, 1))], deletes=[("F", (2,))])
        assert not delta.is_empty()
        assert delta.touched_relations() == {"E", "F"}
        assert not Delta(add_elements=[7]).is_empty()

    def test_io_round_trip(self):
        delta = Delta(
            inserts=[("E", (0, "a"))],
            deletes=[("E", (1, 1))],
            add_elements=[5],
            remove_elements=["b"],
        )
        assert delta_from_dict(delta_to_dict(delta)) == delta

    def test_io_rejects_malformed_payloads(self):
        with pytest.raises(SerializationError):
            delta_from_dict("not a dict")
        with pytest.raises(SerializationError):
            delta_from_dict({"inserts": [["E"]]})  # fact missing values
        with pytest.raises(SerializationError):
            delta_from_dict({"inserts": [[7, [1, 2]]]})  # non-str name


class TestApplyDelta:
    def test_insert_and_delete(self):
        after = TRIANGLE.apply_delta(
            Delta(inserts=[("E", (0, 2))], deletes=[("E", (2, 0))])
        )
        assert after.facts("E") == {(0, 1), (1, 2), (0, 2)}
        # The original is untouched: structures are immutable values.
        assert TRIANGLE.facts("E") == {(0, 1), (1, 2), (2, 0)}

    def test_deletes_win_over_inserts(self):
        after = TRIANGLE.apply_delta(
            Delta(inserts=[("E", (5, 5))], deletes=[("E", (5, 5))])
        )
        assert (5, 5) not in after.facts("E")

    def test_no_ops_are_lenient(self):
        same_facts = TRIANGLE.apply_delta(
            Delta(inserts=[("E", (0, 1))], deletes=[("E", (6, 6))])
        )
        assert same_facts.facts("E") == TRIANGLE.facts("E")

    def test_empty_delta_returns_self(self):
        assert TRIANGLE.apply_delta(Delta()) is TRIANGLE

    def test_inserts_grow_the_domain(self):
        after = _graph({(0, 1)}, n=2).apply_delta(
            Delta(inserts=[("E", (1, 7))], add_elements=[9])
        )
        assert set(after.domain) == {0, 1, 7, 9}

    def test_deletes_never_shrink_the_domain(self):
        after = TRIANGLE.apply_delta(Delta(deletes=[("E", (0, 1))]))
        assert set(after.domain) == set(TRIANGLE.domain)

    def test_remove_elements(self):
        lonely = _graph({(0, 1)}, n=4)
        after = lonely.apply_delta(Delta(remove_elements=[3, 9]))
        assert set(after.domain) == {0, 1, 2}

    def test_rejects_undeclared_relation(self):
        with pytest.raises(SchemaError, match="undeclared relation"):
            TRIANGLE.apply_delta(Delta(inserts=[("G", (0, 1))]))

    def test_rejects_removing_element_used_by_facts(self):
        with pytest.raises(SchemaError, match="still used by facts"):
            TRIANGLE.apply_delta(Delta(remove_elements=[0]))

    def test_rejects_removing_element_interpreting_a_constant(self):
        pinned = _graph({(0, 1)}, n=4).with_constant("c", 3)
        with pytest.raises(SchemaError, match="interprets a constant"):
            pinned.apply_delta(Delta(remove_elements=[3]))

    def test_untouched_relations_share_storage(self):
        both = _graph({(0, 1)}, extra={"F": {(2,), (3,)}})
        after = both.apply_delta(Delta(inserts=[("E", (4, 5))]))
        assert after.facts("F") is both.facts("F")


class TestFingerprints:
    def test_relation_fingerprint_is_order_independent(self):
        a = _graph({(0, 1), (1, 2), (2, 0)})
        b = _graph({(2, 0), (0, 1), (1, 2)})
        assert a.relation_fingerprint("E") == b.relation_fingerprint("E")
        assert a.fingerprint() == b.fingerprint()

    def test_xor_update_matches_rebuild(self):
        base = _graph({(0, 1), (1, 2)})
        base.fingerprint()  # force the incremental (cached) path
        updated = base.apply_delta(
            Delta(inserts=[("E", (2, 3))], deletes=[("E", (0, 1))])
        )
        rebuilt = _graph({(1, 2), (2, 3)})
        assert updated.relation_fingerprint("E") == rebuilt.relation_fingerprint("E")

    def test_reverting_a_delta_restores_the_fingerprint(self):
        before = TRIANGLE.fingerprint()
        there = TRIANGLE.apply_delta(Delta(inserts=[("E", (0, 2))]))
        back = there.apply_delta(Delta(deletes=[("E", (0, 2))]))
        assert there.fingerprint() != before
        assert back.fingerprint() == before

    def test_context_fingerprint_tracks_domain_and_constants(self):
        base = _graph({(0, 1)}, n=4)
        grown = base.apply_delta(Delta(add_elements=[11]))
        assert grown.context_fingerprint() != base.context_fingerprint()
        assert grown.relation_fingerprint("E") == base.relation_fingerprint("E")
        pinned = base.with_constant("c", 0)
        assert pinned.context_fingerprint() != base.context_fingerprint()

    def test_fingerprint_vector_shape(self):
        vector = dict(TRIANGLE.fingerprint_vector())
        assert "E" in vector and vector["E"] is not None


class TestInvalidateRelations:
    def test_eviction_is_relation_scoped(self):
        structure = _graph({(0, 1), (1, 2)}, extra={"F": {(0,), (3,)}})
        cache = CountCache()
        for text in ("E(x, y)", "F(x)"):
            count(parse_query(text), structure, engine="auto", cache=cache)

        cache.invalidate_relations({"E"})
        assert cache.stats()["entries"] == 1  # only the F entry remains
        misses = cache.misses
        hits = cache.hits
        assert count(parse_query("F(x)"), structure, cache=cache) == 2
        assert cache.hits == hits + 1  # F survived
        assert count(parse_query("E(x, y)"), structure, cache=cache) == 2
        assert cache.misses == misses + 1  # E was evicted
        # Invalidation is not capacity pressure: evictions stay at zero.
        assert cache.evictions == 0


class TestDeltaEvaluator:
    def test_versions_and_reports(self):
        evaluator = DeltaEvaluator(TRIANGLE, engine="auto")
        assert evaluator.version == 0
        report = evaluator.apply(Delta(inserts=[("E", (0, 2))]))
        assert report.version == 1 == evaluator.version
        assert report.touched_relations == ("E",)
        assert not report.domain_changed
        assert report.fingerprint == evaluator.structure.fingerprint()
        assert "version=1" in report.describe()
        stats = evaluator.stats()
        assert stats["version"] == 1

    def test_agrees_with_cold_full_recount(self):
        rng = random.Random(7)
        n = 6
        structure = _graph(
            {(rng.randrange(n), rng.randrange(n)) for _ in range(12)},
            n=n,
            extra={"F": {(0,), (1,)}},
        )
        queries = [
            parse_query("E(x, y) & E(y, z)"),
            parse_query("E(x, y) & F(z)"),
        ]
        evaluator = DeltaEvaluator(structure, engine="auto")
        full = structure
        for step in range(10):
            relation = "E" if step % 2 == 0 else "F"
            arity = 2 if relation == "E" else 1
            fact = tuple(rng.randrange(n) for _ in range(arity))
            if step % 3 == 2:
                delta = Delta(deletes=[(relation, fact)])
            else:
                delta = Delta(inserts=[(relation, fact)])
            evaluator.apply(delta)
            full = full.apply_delta(delta)
            assert evaluator.structure == full
            for query in queries:
                cold = count(
                    query, full, engine="backtracking", cache=CountCache()
                )
                assert evaluator.evaluate(query) == cold

    def test_constant_guard_migrates_unaffected_entries(self):
        pinned = _graph(
            {(9, 9)}, n=10, extra={"F": {(0, 1), (0, 2), (1, 2)}}
        ).with_constant("c", 0)
        query = parse_query("F(#c, x)")
        evaluator = DeltaEvaluator(pinned, engine="auto")
        assert evaluator.evaluate(query) == 2

        # F(5, 6) cannot match F(#c, x): position 0 is pinned to 0 != 5.
        delta = Delta(inserts=[("F", (5, 6))])
        assert not delta_affects(
            query, delta, pinned, pinned.apply_delta(delta)
        )
        report = evaluator.apply(delta)
        assert report.migrated >= 1
        assert report.invalidated == 0
        misses = evaluator.cache.misses
        assert evaluator.evaluate(query) == 2  # served by the migrated entry
        assert evaluator.cache.misses == misses

        # F(0, 7) does match, so the entry must be recounted.
        report = evaluator.apply(Delta(inserts=[("F", (0, 7))]))
        assert report.invalidated >= 1
        assert evaluator.evaluate(query) == 3

    def test_lemma1_factors_are_reused_across_versions(self):
        facts = {
            f"R{i}": {(j, (j + 1) % 5) for j in range(5)} for i in range(3)
        }
        structure = Structure(
            Schema.from_arities({name: 2 for name in facts}),
            facts,
            domain=range(5),
        )
        query = parse_query(
            "R0(x0, y0) & R1(x1, y1) & R2(x2, y2)"
        )
        evaluator = DeltaEvaluator(structure, engine="auto")
        assert evaluator.evaluate(query) == 5 * 5 * 5

        evaluator.apply(Delta(inserts=[("R0", (0, 3))]))
        hits, misses = evaluator.cache.hits, evaluator.cache.misses
        assert evaluator.evaluate(query) == 6 * 5 * 5
        # Only the R0 factor is recounted; R1 and R2 come from cache.
        assert evaluator.cache.hits == hits + 2
        assert evaluator.cache.misses == misses + 1


class TestDatabaseRegistry:
    def test_load_get_update(self):
        registry = DatabaseRegistry()
        database = registry.load("g", TRIANGLE)
        assert database.version == 0
        assert registry.get("g") is database
        assert registry.names() == ["g"]
        report = registry.update("g", Delta(inserts=[("E", (0, 2))]))
        assert report.version == 1
        assert registry.get("g").version == 1
        snapshot = registry.snapshot()["g"]
        assert snapshot["version"] == 1
        assert snapshot["fact_count"] == 4

    def test_rebinding_resets_the_version(self):
        registry = DatabaseRegistry()
        registry.load("g", TRIANGLE)
        registry.update("g", Delta(inserts=[("E", (0, 2))]))
        assert registry.load("g", TRIANGLE).version == 0

    def test_unknown_name_and_capacity(self):
        registry = DatabaseRegistry(max_databases=1)
        with pytest.raises(BadRequestError, match="unknown database"):
            registry.get("nope")
        registry.load("a", TRIANGLE)
        with pytest.raises(BadRequestError, match="database limit"):
            registry.load("b", TRIANGLE)
        registry.load("a", TRIANGLE)  # rebinding an existing name is fine

    def test_rejects_bad_names(self):
        registry = DatabaseRegistry()
        with pytest.raises(BadRequestError):
            registry.load("", TRIANGLE)
        with pytest.raises(BadRequestError):
            registry.load("x" * 65, TRIANGLE)
        with pytest.raises(ValueError):
            DatabaseRegistry(max_databases=0)


@pytest.fixture(scope="module")
def server():
    with EvaluationServer(ServerConfig(workers=2, queue_depth=16)) as srv:
        yield srv


class TestServiceRoundTrip:
    def test_db_update_evaluate_round_trip(self, server):
        client = ServiceClient(server.url, seed=0)
        named = Structure(
            Schema.from_arities({"E": 2}),
            {"E": {("a", "b"), ("b", "c"), ("c", "a")}},
            domain=["a", "b", "c"],
        )
        snapshot = client.load_db("roundtrip", named)
        assert snapshot["version"] == 0
        assert snapshot["fact_count"] == 3

        query = "E(x, y) & E(y, z)"
        assert client.evaluate(query, db="roundtrip") == 3

        report = client.update("roundtrip", insert="E(a, c)")
        assert report["version"] == 1
        assert report["touched_relations"] == ["E"]
        assert client.evaluate(query, db="roundtrip") == 5

        report = client.update("roundtrip", delete="E(a, c)")
        assert report["version"] == 2
        assert client.evaluate(query, db="roundtrip") == 3

        health = client.healthz()
        assert health["databases"]["roundtrip"]["version"] == 2

    def test_delta_object_update(self, server):
        client = ServiceClient(server.url, seed=0)
        client.load_db("ints", TRIANGLE)
        report = client.update(
            "ints", delta=Delta(inserts=[("E", (0, 2))])
        )
        assert report["version"] == 1
        assert client.evaluate("E(x, y)", db="ints") == 4

    def test_target_must_be_exactly_one(self, server):
        client = ServiceClient(server.url, seed=0)
        with pytest.raises(ServiceProtocolError):
            client.evaluate("E(x, y)")  # neither structure nor db
        with pytest.raises(ServiceProtocolError):
            client.evaluate("E(x, y)", structure=TRIANGLE, db="ints")

    def test_unknown_database_is_a_clean_error(self, server):
        client = ServiceClient(server.url, seed=0, retries=0)
        with pytest.raises((ServiceProtocolError, RemoteError)):
            client.evaluate("E(x, y)", db="never-loaded")
        with pytest.raises((ServiceProtocolError, RemoteError)):
            client.update("never-loaded", insert="E(a, b)")
