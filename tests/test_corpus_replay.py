"""Replay the checked-in fuzz corpus (``tests/corpus/``) through every oracle.

Each entry is a minimized fuzz finding (or a curated interesting seed)
promoted to a permanent regression test: it once exposed a real bug, so it
must keep passing every applicable oracle forever.  The first batch pins
the ``count_at_least`` early-exit bug on factorized products that PR 3's
fuzzer caught (a nonzero factor cleared ``bound = 1`` before a zero factor
behind it was evaluated).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.qa import all_oracles, load_corpus, replay_corpus

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = list(load_corpus(CORPUS_DIR))


def test_corpus_is_seeded():
    """The first minimized-findings batch is present and non-trivial."""
    assert len(ENTRIES) >= 10
    oracles_pinned = {entry["oracle"] for _, entry, _ in ENTRIES if entry["oracle"]}
    assert "count_at_least" in oracles_pinned


def test_corpus_covers_every_case_kind():
    kinds = {case.kind for _, _, case in ENTRIES}
    assert kinds == {"cq", "ucq", "gadget"}


def test_every_entry_names_its_provenance():
    for path, entry, _ in ENTRIES:
        assert entry["note"], f"{path.name} has no provenance note"


@pytest.mark.parametrize(
    "path, entry, case",
    ENTRIES,
    ids=[path.name for path, _, _ in ENTRIES],
)
def test_entry_passes_all_applicable_oracles(path, entry, case):
    applicable = [oracle for oracle in all_oracles() if oracle.applies(case)]
    assert applicable, f"{path.name}: no oracle applies to kind {case.kind!r}"
    for oracle in applicable:
        result = oracle.judge(case)
        assert result.ok, (
            f"{path.name}: oracle {oracle.name} regressed: {result.details}"
        )


def test_replay_corpus_is_green():
    """The same check through the public one-shot replay entry point."""
    assert replay_corpus(CORPUS_DIR) == []
