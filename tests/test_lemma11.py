"""Tests for the Lemma 11 normal form and its validation."""

import pytest

from repro.errors import Lemma11ViolationError
from repro.polynomials import Lemma11Instance, Monomial


class TestValidation:
    def test_minimal_instance(self, minimal_lemma11):
        assert minimal_lemma11.n == 1
        assert minimal_lemma11.m == 1
        assert minimal_lemma11.d == 1

    def test_c_below_two_rejected(self):
        with pytest.raises(Lemma11ViolationError):
            Lemma11Instance(
                c=1,
                monomials=(Monomial.of(1),),
                s_coefficients=(1,),
                b_coefficients=(1,),
            )

    def test_empty_monomials_rejected(self):
        with pytest.raises(Lemma11ViolationError):
            Lemma11Instance(c=2, monomials=(), s_coefficients=(), b_coefficients=())

    def test_mixed_degrees_rejected(self):
        with pytest.raises(Lemma11ViolationError):
            Lemma11Instance(
                c=2,
                monomials=(Monomial.of(1), Monomial.of(1, 2)),
                s_coefficients=(1, 1),
                b_coefficients=(1, 1),
            )

    def test_x1_must_lead_each_monomial(self):
        with pytest.raises(Lemma11ViolationError):
            Lemma11Instance(
                c=2,
                monomials=(Monomial.of(2, 1),),
                s_coefficients=(1,),
                b_coefficients=(1,),
            )

    def test_coefficient_domination_enforced(self):
        with pytest.raises(Lemma11ViolationError):
            Lemma11Instance(
                c=2,
                monomials=(Monomial.of(1),),
                s_coefficients=(3,),
                b_coefficients=(2,),
            )

    def test_zero_s_coefficient_rejected(self):
        with pytest.raises(Lemma11ViolationError):
            Lemma11Instance(
                c=2,
                monomials=(Monomial.of(1),),
                s_coefficients=(0,),
                b_coefficients=(2,),
            )

    def test_duplicate_monomials_rejected(self):
        with pytest.raises(Lemma11ViolationError):
            Lemma11Instance(
                c=2,
                monomials=(Monomial.of(1, 2), Monomial.of(1, 2)),
                s_coefficients=(1, 1),
                b_coefficients=(1, 1),
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(Lemma11ViolationError):
            Lemma11Instance(
                c=2,
                monomials=(Monomial.of(1),),
                s_coefficients=(1, 2),
                b_coefficients=(1,),
            )


class TestSemantics:
    def test_polynomials(self, richer_lemma11):
        p_s = richer_lemma11.p_s
        assert p_s.coefficient(Monomial.of(1, 2)) == 2
        assert p_s.coefficient(Monomial.of(1, 1)) == 1
        p_b = richer_lemma11.p_b
        assert p_b.coefficient(Monomial.of(1, 2)) == 3

    def test_position_relation(self, richer_lemma11):
        relation = richer_lemma11.position_relation()
        # T_1 = x1*x2: x1 is 1st variable, x2 is 2nd.
        assert (1, 1, 1) in relation
        assert (2, 2, 1) in relation
        # T_2 = x1*x1: x1 is both variables.
        assert (1, 1, 2) in relation and (1, 2, 2) in relation

    def test_inequality_sides(self, richer_lemma11):
        valuation = {1: 2, 2: 3}
        assert richer_lemma11.lhs(valuation) == 3 * (2 * 6 + 4)
        assert richer_lemma11.rhs(valuation) == 4 * (3 * 6 + 4 * 4)

    def test_holds_for(self, minimal_lemma11):
        # 2·x1 <= x1·x1 holds iff x1 = 0 or x1 >= 2.
        assert minimal_lemma11.holds_for({1: 0})
        assert not minimal_lemma11.holds_for({1: 1})
        assert minimal_lemma11.holds_for({1: 2})

    def test_find_counterexample(self, minimal_lemma11):
        assert minimal_lemma11.find_counterexample(0) is None
        assert minimal_lemma11.find_counterexample(2) == {1: 1}

    def test_valuation_grid_size(self, richer_lemma11):
        assert sum(1 for _ in richer_lemma11.valuations(2)) == 9

    def test_sequence_valuations(self, richer_lemma11):
        assert richer_lemma11.holds_for([0, 0])
        assert richer_lemma11.lhs([2, 3]) == richer_lemma11.lhs({1: 2, 2: 3})
