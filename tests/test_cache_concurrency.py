"""Concurrent hammering of the shared caches the service relies on.

``EvaluationServer`` shares one :class:`CountCache` and the process-wide
:class:`PlanCache` across all worker threads, so both must tolerate
arbitrary interleavings.  These tests hammer them from many threads and
check the invariants the service depends on:

* **no lost updates** — every stored entry is retrievable afterwards;
* **no over-eviction** — the cache never holds more than its capacity,
  and never evicts below it while hot keys are being touched;
* **accounting closes** — hits + misses equals the number of lookups
  issued, even under contention;
* **bit-identical counts** — evaluating a workload through a shared
  cache from N threads produces exactly the counts a serial run with a
  fresh cache produces.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.homomorphism import count
from repro.homomorphism.cache import CountCache, component_cache_key
from repro.planner.analyze import PlanCache, analyze_component
from repro.queries import parse_query
from repro.relational import Schema, Structure
from repro.workloads import cycle_query, path_query

THREADS = 8


def _run_threads(target, count_: int = THREADS, args_for=None):
    errors: list[BaseException] = []
    barrier = threading.Barrier(count_)

    def wrapped(index):
        try:
            barrier.wait()
            target(*(args_for(index) if args_for else (index,)))
        except BaseException as error:  # noqa: BLE001 — re-raised below
            errors.append(error)

    threads = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(count_)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads)
    if errors:
        raise errors[0]
    return threads


class TestCountCacheConcurrency:
    def test_no_lost_updates(self):
        """With capacity >= total keys, every stored value survives."""
        cache = CountCache(max_entries=THREADS * 200)

        def writer(index):
            for i in range(200):
                cache.store(("k", index, i), index * 1000 + i)

        _run_threads(writer)
        assert len(cache) == THREADS * 200
        for index in range(THREADS):
            for i in range(200):
                assert cache.lookup(("k", index, i)) == index * 1000 + i

    def test_no_over_eviction(self):
        """Under churn the cache never exceeds capacity and stays warm."""
        capacity = 64
        cache = CountCache(max_entries=capacity)
        stop = threading.Event()
        sizes: list[int] = []

        def sampler():
            while not stop.is_set():
                sizes.append(len(cache))

        watcher = threading.Thread(target=sampler)
        watcher.start()
        try:

            def churner(index):
                rng = random.Random(index)
                for _ in range(2000):
                    key = ("churn", rng.randrange(capacity * 4))
                    if cache.lookup(key) is None:
                        cache.store(key, 1)

            _run_threads(churner)
        finally:
            stop.set()
            watcher.join(timeout=30)
        assert sizes, "the sampler must have observed the cache"
        assert max(sizes) <= capacity
        assert len(cache) <= capacity
        # After thousands of stores against 4x capacity of keys, the
        # cache should be full, not over-evicted down to a sliver.
        assert len(cache) == capacity

    def test_accounting_closes_under_contention(self):
        cache = CountCache(max_entries=1024)
        lookups_per_thread = 3000

        def mixed(index):
            rng = random.Random(index)
            for _ in range(lookups_per_thread):
                key = ("acct", rng.randrange(256))
                if cache.lookup(key) is None:
                    cache.store(key, 1)

        _run_threads(mixed)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == THREADS * lookups_per_thread
        assert stats["evictions"] == 0

    def test_counts_bit_identical_to_serial(self):
        """N threads × shared cache == serial run × fresh cache, exactly."""
        rng = random.Random(5)
        n = 11
        edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(40)}
        structure = Structure(
            Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n)
        )
        workload = [
            cycle_query(3),
            cycle_query(4),
            path_query(3),
            path_query(4),
            parse_query("E(x, y) & E(y, x)"),
            parse_query("E(x, x)"),
            cycle_query(3, prefix="renamed_"),  # α-equivalent to cycle 3
        ]
        serial = [
            count(query, structure, engine="backtracking", cache=CountCache())
            for query in workload
        ]

        shared = CountCache(max_entries=256)
        results: dict[int, list[int]] = {}

        def evaluator(index):
            local = []
            for query in workload:
                local.append(
                    count(
                        query,
                        structure,
                        engine="backtracking",
                        cache=shared,
                    )
                )
            results[index] = local

        _run_threads(evaluator)
        assert len(results) == THREADS
        for index in range(THREADS):
            assert results[index] == serial
        # The α-equivalent rename must have hit, not re-evaluated.
        assert shared.hits > 0

    def test_cache_key_stability_across_threads(self):
        """component_cache_key is pure: all threads derive the same key."""
        structure = Structure(
            Schema.from_arities({"E": 2}), {"E": {(0, 1)}}, domain=range(2)
        )
        keys: dict[int, object] = {}

        def derive(index):
            query = cycle_query(4, prefix=f"t{index}_")
            keys[index] = component_cache_key(query, structure, "backtracking")

        _run_threads(derive)
        assert len(set(keys.values())) == 1


class TestPlanCacheConcurrency:
    def test_profiles_identical_and_accounting_closes(self):
        cache = PlanCache(max_entries=512)
        components = [
            cycle_query(k, prefix=f"c{k}_") for k in range(3, 9)
        ] + [path_query(k, prefix=f"p{k}_") for k in range(2, 8)]
        expected = {
            id(component): analyze_component(component)
            for component in components
        }
        rounds = 50

        def prober(index):
            for _ in range(rounds):
                for component in components:
                    profile, _hit = cache.profile(component)
                    assert profile == expected[id(component)]

        _run_threads(prober)
        stats = cache.stats()
        total = THREADS * rounds * len(components)
        assert stats["hits"] + stats["misses"] == total
        assert stats["misses"] <= len(components) * THREADS
        assert len(cache) <= 512

    def test_no_over_eviction_with_tiny_capacity(self):
        cache = PlanCache(max_entries=4)
        components = [cycle_query(k) for k in range(3, 11)]

        def prober(index):
            for _ in range(30):
                for component in components:
                    cache.profile(component)

        _run_threads(prober)
        assert len(cache) <= 4

    def test_alpha_equivalent_components_share_entries(self):
        cache = PlanCache(max_entries=64)
        renamed = [cycle_query(5, prefix=f"r{i}_") for i in range(THREADS)]

        def prober(index):
            cache.profile(renamed[index])

        _run_threads(prober)
        # All 8 are the same canonical component: at most a handful of
        # misses (racing first-fills), definitely not one per thread
        # after a warm-up round.
        profile, hit = cache.profile(cycle_query(5, prefix="fresh_"))
        assert hit is True
        assert profile == analyze_component(renamed[0])


class _CountingCache(CountCache):
    """A CountCache that also tallies raw lookup calls (thread-safely)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.lookups = 0
        self._lookup_lock = threading.Lock()

    def lookup(self, key):
        with self._lookup_lock:
            self.lookups += 1
        return super().lookup(key)


class TestMutateWhileEvaluating:
    """The versioned-database hammer: writers apply deltas through one
    shared :class:`DeltaEvaluator` while readers evaluate against it.

    Because cache keys embed per-relation content fingerprints, a reader
    that races a mutation can only ever see a *consistent* version: the
    immutable structure snapshot it grabbed, with cache entries of other
    versions invisible under its keys.  The test pins that down:

    * **no stale counts** — every observed ``(snapshot, count)`` pair is
      bit-identical to a fresh-cache backtracking recount of that exact
      snapshot;
    * **no lost invalidations** — after the dust settles the evaluator's
      structure equals the serial application of all deltas (they
      commute), and the shared cache answers the final version exactly,
      twice (the second pass entirely from hits);
    * **accounting closes** — hits + misses equals the number of lookups
      issued, even with ``apply`` migrating/evicting entries mid-lookup.
    """

    def test_hammer_mutate_while_evaluating(self):
        from repro.homomorphism.delta import DeltaEvaluator
        from repro.relational.structure import Delta

        rng = random.Random(13)
        n = 8
        edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(18)}
        structure = Structure(
            Schema.from_arities({"E": 2, "F": 1}),
            {"E": edges, "F": {(0,), (1,)}},
            domain=range(n),
        )
        # Commuting deltas (pure inserts of distinct absent facts): the
        # final structure is independent of the interleaving the threads
        # happen to produce.
        missing_edges = sorted(
            {(a, b) for a in range(n) for b in range(n)} - edges
        )
        rng.shuffle(missing_edges)
        deltas = [
            Delta(inserts=[("E", edge)]) for edge in missing_edges[:10]
        ] + [Delta(inserts=[("F", (element,))]) for element in range(2, 6)]
        workload = [
            parse_query("E(x, y) & E(y, z)"),
            parse_query("E(x, y) & E(y, x)"),
            # Two components: the F factor is a reusable Lemma-1 factor
            # across E-only mutations (and vice versa).
            parse_query("E(x, y) & F(z)"),
        ]

        shared = _CountingCache(max_entries=4096)
        evaluator = DeltaEvaluator(structure, engine="auto", cache=shared)
        pending = list(deltas)
        pending_lock = threading.Lock()
        observed: dict[int, list[tuple[Structure, int, int]]] = {}
        writers = 2

        def mutator(index):
            while True:
                with pending_lock:
                    if not pending:
                        return
                    delta = pending.pop()
                evaluator.apply(delta)

        def reader(index):
            local = []
            for round_ in range(30):
                snapshot = evaluator.structure
                query = workload[(index + round_) % len(workload)]
                value = count(
                    query, snapshot, engine="auto", cache=shared
                )
                local.append((snapshot, (index + round_) % len(workload), value))
            observed[index] = local

        def role(index):
            if index < writers:
                mutator(index)
            else:
                reader(index)

        _run_threads(role)

        # No lost invalidations / lost updates: all deltas landed.
        expected = structure
        for delta in deltas:
            expected = expected.apply_delta(delta)
        assert evaluator.version == len(deltas)
        assert evaluator.structure == expected

        # No stale counts: every observation matches a cold recount of
        # the exact snapshot it was computed against.
        truths: dict[tuple[str, int], int] = {}
        for local in observed.values():
            for snapshot, query_index, value in local:
                key = (snapshot.fingerprint(), query_index)
                if key not in truths:
                    truths[key] = count(
                        workload[query_index],
                        snapshot,
                        engine="backtracking",
                        cache=CountCache(),
                    )
                assert value == truths[key], (
                    f"stale count for version {snapshot.fingerprint()}"
                )
        assert len(observed) == THREADS - writers

        # The final version answers exactly, and a re-ask is all hits.
        final_counts = [
            count(query, evaluator.structure, engine="auto", cache=shared)
            for query in workload
        ]
        assert final_counts == [
            count(query, expected, engine="backtracking", cache=CountCache())
            for query in workload
        ]
        hits_before, misses_before = shared.hits, shared.misses
        again = [
            count(query, evaluator.structure, engine="auto", cache=shared)
            for query in workload
        ]
        assert again == final_counts
        assert shared.misses == misses_before
        assert shared.hits > hits_before

        # Accounting closes under contention with apply() racing lookups.
        assert shared.hits + shared.misses == shared.lookups


@pytest.mark.parametrize("workers", [2, 8])
def test_server_hammering_end_to_end(workers):
    """The integrated check: concurrent mixed traffic, exact answers."""
    from repro.service import EvaluationServer, ServerConfig, ServiceClient

    rng = random.Random(9)
    n = 10
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(35)}
    structure = Structure(
        Schema.from_arities({"E": 2}), {"E": edges}, domain=range(n)
    )
    workload = [cycle_query(3), cycle_query(4), path_query(4), path_query(5)]
    expected = [count(q, structure, engine="backtracking") for q in workload]

    with EvaluationServer(
        ServerConfig(workers=workers, queue_depth=64)
    ) as server:
        results: dict[int, list[int]] = {}

        def caller(index):
            client = ServiceClient(server.url, retries=4, seed=index)
            results[index] = [
                client.evaluate(query, structure, engine="backtracking")
                for query in workload
            ]

        _run_threads(caller)
        assert len(results) == THREADS
        for index in range(THREADS):
            assert results[index] == expected
