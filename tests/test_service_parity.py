"""Remote-vs-local parity: the service is a transparent proxy.

The contract the client documents — and the reason ``repro.service`` can
sit in front of the library at all — is that going through HTTP changes
*nothing* observable:

* counts are bit-identical integers (Python ints survive JSON exactly up
  to the magnitudes the corpus produces);
* error classes match — a request that makes the library raise
  ``SomeError`` locally comes back as a ``RemoteError`` whose ``kind``
  is the string ``"SomeError"``;
* decision verdicts over the same seeded candidate stream are identical
  dicts.

The corpus slice in ``tests/corpus/`` is the hardest input set the repo
owns (minimized fuzzer findings), so it doubles as the parity workload.
"""

from __future__ import annotations

import pytest

from repro.errors import BagCQError
from repro.homomorphism import count, count_ucq
from repro.qa.corpus import load_corpus
from repro.queries import parse_query
from repro.service import EvaluationServer, RemoteError, ServerConfig, ServiceClient

CORPUS_DIR = "tests/corpus"

_CASES = [
    (path.name, case)
    for path, _entry, case in load_corpus(CORPUS_DIR)
    if case.kind in ("cq", "ucq") and case.structure is not None
]


@pytest.fixture(scope="module")
def server():
    with EvaluationServer(ServerConfig(workers=2, queue_depth=32)) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url, seed=0)


def test_corpus_slice_is_nonempty():
    assert len(_CASES) >= 5, "parity needs a real corpus slice to chew on"


@pytest.mark.parametrize(
    "name,case", _CASES, ids=[name for name, _ in _CASES]
)
@pytest.mark.parametrize("engine", ["auto", "backtracking", "compiled"])
def test_counts_bit_identical(client, name, case, engine):
    if case.kind == "cq":
        local = count(case.query, case.structure, engine=engine)
        remote = client.evaluate(case.query, case.structure, engine=engine)
    else:
        local = count_ucq(case.disjuncts, case.structure, engine=engine)
        remote = client.evaluate_ucq(
            case.disjuncts, case.structure, engine=engine
        )
    assert remote == local
    assert type(remote) is int


def test_error_class_parity(client):
    """Whatever the library raises locally arrives as ``kind == class name``."""
    probes = [
        # Unknown engine name → EvaluationError.
        dict(query="E(x,y)", structure="E(a,b)", engine="warpdrive"),
        # Arity mismatch between query and structure → EvaluationError.
        dict(query="E(x,y,z)", structure="E(a,b)", engine="backtracking"),
        # Constant the structure does not interpret → ConstantError.
        dict(query="E(x,#missing)", structure="E(a,b)", engine="backtracking"),
    ]
    for probe in probes:
        query = parse_query(probe["query"])
        from repro.io import structure_from_facts

        structure = structure_from_facts(probe["structure"])
        with pytest.raises(BagCQError) as local_exc:
            count(query, structure, engine=probe["engine"])
        with pytest.raises(RemoteError) as remote_exc:
            client.evaluate(query, structure, engine=probe["engine"])
        assert remote_exc.value.kind == type(local_exc.value).__name__
        assert str(local_exc.value) in str(remote_exc.value)


def test_decide_verdict_parity(client):
    """Same seeded stream ⇒ same verdict, local or remote."""
    from repro.decision.search import find_counterexample, random_structures

    phi_s = parse_query("E(x,y) & E(y,x)")
    phi_b = parse_query("E(x,y)")
    params = dict(domain_size=3, density=0.4, count=25, seed=11)

    stream = random_structures(phi_s.schema.union(phi_b.schema), **params)
    local = find_counterexample(
        phi_s, phi_b, stream, multiplier=1, additive=0
    )
    remote = client.decide(
        phi_s,
        phi_b,
        multiplier=1,
        additive=0,
        domain_size=params["domain_size"],
        density=params["density"],
        count=params["count"],
        seed=params["seed"],
    )
    assert remote["found"] == local.found
    assert remote["checked"] == local.checked
    assert remote["lhs"] == local.lhs
    assert remote["rhs"] == local.rhs
    expected_verdict = "counterexample" if local.found else "exhausted"
    assert remote["verdict"] == expected_verdict


def test_parity_survives_warm_cache(client, server):
    """Replaying the slice against the now-warm server cache stays identical."""
    for _name, case in _CASES[:5]:
        if case.kind == "cq":
            assert client.evaluate(case.query, case.structure) == count(
                case.query, case.structure
            )
        else:
            assert client.evaluate_ucq(
                case.disjuncts, case.structure
            ) == count_ucq(case.disjuncts, case.structure)
    assert server.count_cache.stats()["hits"] > 0


def test_auto_selects_compiled_server_side(client):
    """The planner's compiled arm fires *inside* the server, not only in
    local runs: an auto-engine evaluation of a shape the planner routes
    to the compiled engine must tick ``plan.selected.compiled`` in the
    server's /metrics registry and still return the bit-identical count.
    """
    from repro.decision.search import random_structures
    from repro.workloads import path_query

    query = path_query(4)
    structure = next(
        random_structures(query.schema, domain_size=6, density=0.5, count=1, seed=1)
    )
    local = count(query, structure, engine="auto")
    assert client.evaluate(query, structure, engine="auto") == local
    metrics = client.metrics()["metrics"]
    assert metrics["plan.selected.compiled"]["value"] >= 1
