"""Tests for homomorphism domination exponent estimation."""

import math

import pytest

from repro.decision import enumerate_structures, random_structures
from repro.decision.hde import HdeEstimate, hde_upper_bound, variable_ratio_bound
from repro.queries import parse_query
from repro.relational import Schema


@pytest.fixture
def schema():
    return Schema.from_arities({"E": 2})


def candidates(schema):
    yield from enumerate_structures(schema, 2)
    yield from random_structures(schema, domain_size=4, count=40, seed=3)


class TestVariableRatio:
    def test_edge_vs_double_edge(self):
        """hom(edge)² = hom(double-edge): the ratio bound is tight at 2."""
        edge = parse_query("E(x, y)")
        double = parse_query("E(x, y) & E(u, v)")
        assert variable_ratio_bound(edge, double) == 2.0

    def test_double_vs_single(self):
        double = parse_query("E(x, y) & E(u, v)")
        edge = parse_query("E(x, y)")
        assert variable_ratio_bound(double, edge) == 0.5

    def test_inequalities_not_supported(self):
        assert variable_ratio_bound(
            parse_query("E(x, y) & x != y"), parse_query("E(x, y)")
        ) is None

    def test_unsatisfiable_means_no_bound(self):
        # A query needing a loop AND loop-freeness can't anchor the blow-up.
        ground = parse_query("E(#a, #a)")
        assert variable_ratio_bound(ground, parse_query("E(x, y)")) is None


class TestEmpirical:
    def test_edge_vs_square(self, schema):
        edge = parse_query("E(x, y)")
        double = parse_query("E(x, y) & E(u, v)")
        estimate = hde_upper_bound(edge, double, candidates(schema))
        # hom(double) = hom(edge)², so every sample gives exactly 2.
        assert math.isclose(estimate.upper_bound, 2.0)
        assert estimate.samples_used > 0

    def test_refutation(self, schema):
        double = parse_query("E(x, y) & E(u, v)")
        edge = parse_query("E(x, y)")
        estimate = hde_upper_bound(double, edge, candidates(schema))
        assert math.isclose(estimate.upper_bound, 0.5)
        assert estimate.refutes_containment()

    def test_zero_side_gives_minus_infinity(self, schema):
        edge = parse_query("E(x, y)")
        loop = parse_query("E(x, x)")
        estimate = hde_upper_bound(edge, loop, candidates(schema))
        assert estimate.upper_bound == -math.inf
        assert estimate.witness is not None

    def test_no_informative_samples(self, schema):
        edge = parse_query("E(x, y)")
        estimate = hde_upper_bound(edge, edge, [])
        assert estimate.upper_bound == math.inf
        assert estimate.samples_used == 0

    def test_self_domination_is_at_least_one(self, schema):
        edge = parse_query("E(x, y)")
        estimate = hde_upper_bound(edge, edge, candidates(schema))
        assert math.isclose(estimate.upper_bound, 1.0)
        assert not estimate.refutes_containment()
