"""Tests for non-boolean CQs: answer multisets and bag containment."""

from collections import Counter

import pytest

from repro.errors import QueryError
from repro.queries import (
    OpenQuery,
    Variable,
    bag_answer_contained,
    bag_answer_counterexample,
    parse_query,
)
from repro.relational import Schema, Structure


@pytest.fixture
def graph():
    return Structure(
        Schema.from_arities({"E": 2}),
        {"E": [(0, 1), (1, 2), (0, 2), (2, 2)]},
    )


class TestConstruction:
    def test_head_variables(self):
        q = OpenQuery(parse_query("E(x, y)"), ("x",))
        assert q.arity == 1
        assert q.head == (Variable("x"),)

    def test_head_must_occur_in_body(self):
        with pytest.raises(QueryError):
            OpenQuery(parse_query("E(x, y)"), ("z",))

    def test_head_must_be_variables(self):
        from repro.queries import Constant

        with pytest.raises(QueryError):
            OpenQuery(parse_query("E(x, y)"), (Constant("a"),))  # type: ignore[arg-type]

    def test_boolean_query(self):
        q = OpenQuery(parse_query("E(x, y)"), ())
        assert q.is_boolean()

    def test_projection_free(self):
        assert OpenQuery(parse_query("E(x, y)"), ("x", "y")).is_projection_free()
        assert not OpenQuery(parse_query("E(x, y)"), ("x",)).is_projection_free()

    def test_str(self):
        q = OpenQuery(parse_query("E(x, y)"), ("x", "y"))
        assert str(q) == "(x, y) <- E(x, y)"


class TestAnswers:
    def test_projection_free_answers(self, graph):
        q = OpenQuery(parse_query("E(x, y)"), ("x", "y"))
        assert q.answers(graph) == Counter(
            {(0, 1): 1, (1, 2): 1, (0, 2): 1, (2, 2): 1}
        )

    def test_projection_multiplicities(self, graph):
        """SQL without DISTINCT: projecting keeps duplicates."""
        q = OpenQuery(parse_query("E(x, y)"), ("x",))
        assert q.answers(graph) == Counter({(0,): 2, (1,): 1, (2,): 1})

    def test_join_multiplicities(self, graph):
        # (x, z) connected by a path of length 2.
        q = OpenQuery(parse_query("E(x, y) & E(y, z)"), ("x", "z"))
        answers = q.answers(graph)
        # 0→1→2, 0→2→2, 2→2→2 and 1→2→2.
        assert answers == Counter({(0, 2): 2, (1, 2): 1, (2, 2): 1})

    def test_boolean_answers(self, graph):
        q = OpenQuery(parse_query("E(x, y)"), ())
        assert q.answers(graph) == Counter({(): 4})

    def test_ground(self, graph):
        q = OpenQuery(parse_query("E(x, y) & E(y, z)"), ("x", "z"))
        grounded, fragment = q.ground((0, 2))
        assert grounded.is_ground() is False  # y stays existential
        structure = graph
        for name, element in fragment.constants.items():
            structure = structure.with_constant(name, element)
        from repro.homomorphism import count

        assert count(grounded, structure) == 2  # multiplicity of (0, 2)

    def test_ground_arity_checked(self):
        q = OpenQuery(parse_query("E(x, y)"), ("x",))
        with pytest.raises(QueryError):
            q.ground((1, 2))


class TestContainment:
    def test_contained_pair(self, graph):
        small = OpenQuery(parse_query("E(x, y) & E(y, y)"), ("x", "y"))
        big = OpenQuery(parse_query("E(x, y)"), ("x", "y"))
        assert bag_answer_contained(small, big, graph)

    def test_projection_breaks_containment(self, graph):
        # Projected edge endpoints vs loops at x: (0,) has multiplicity 2
        # in the projection but no loop.
        small = OpenQuery(parse_query("E(x, y)"), ("x",))
        big = OpenQuery(parse_query("E(x, x)"), ("x",))
        assert not bag_answer_contained(small, big, graph)

    def test_arity_mismatch_rejected(self, graph):
        with pytest.raises(QueryError):
            bag_answer_contained(
                OpenQuery(parse_query("E(x, y)"), ("x",)),
                OpenQuery(parse_query("E(x, y)"), ("x", "y")),
                graph,
            )

    def test_counterexample_search(self):
        from repro.decision import enumerate_structures

        small = OpenQuery(parse_query("E(x, y)"), ("x",))
        big = OpenQuery(parse_query("E(x, x)"), ("x",))
        schema = Schema.from_arities({"E": 2})
        hit = bag_answer_counterexample(
            small, big, enumerate_structures(schema, 2)
        )
        assert hit is not None
        structure, answer = hit
        assert small.answers(structure)[answer] > big.answers(structure)[answer]

    def test_chaudhuri_vardi_example_in_answer_world(self):
        """Projection duplicates are what separate bag from set semantics."""
        from repro.decision import enumerate_structures

        schema = Schema.from_arities({"E": 2})
        # Ψ_s(x) = x has an out-edge (projected); Ψ_b(x) = x has an
        # out-edge to a *specific* witness... same query: containment both
        # ways under set semantics; with duplicates the two-edge fanout
        # breaks equality but not containment.  Use fanout-squared instead:
        small = OpenQuery(parse_query("E(x, y) & E(x, z)"), ("x",))
        big = OpenQuery(parse_query("E(x, y)"), ("x",))
        hit = bag_answer_counterexample(
            small, big, enumerate_structures(schema, 2)
        )
        assert hit is not None  # fanout² > fanout once fanout ≥ 2
