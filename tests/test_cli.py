"""Tests for the ``bagcq`` command-line interface."""

import pytest

from repro.cli import _load_instance, _parse_facts, build_parser, main


class TestInstanceLoading:
    def test_named(self):
        instance = _load_instance("markov")
        assert instance.name == "markov"

    def test_with_arguments(self):
        instance = _load_instance("linear:2:3:7")
        assert instance.solvable

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            _load_instance("nonsense")


class TestFactParsing:
    def test_basic(self):
        structure = _parse_facts("E(a,b) E(b,a)")
        assert structure.fact_count("E") == 2

    def test_constants(self):
        structure = _parse_facts("E(#s,#h)")
        assert structure.interpret("s") == "s"


class TestCommands:
    def test_evaluate(self, capsys):
        exit_code = main(
            ["evaluate", "--query", "E(x,y) & E(y,x)", "--facts", "E(a,b) E(b,a) E(a,a)"]
        )
        assert exit_code == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_evaluate_treewidth_engine(self, capsys):
        exit_code = main(
            ["evaluate", "--query", "E(x,y)", "--facts", "E(a,b)", "--engine", "treewidth"]
        )
        assert exit_code == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_reduce_unsolvable(self, capsys):
        exit_code = main(["reduce", "--instance", "always_positive", "--grid", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Theorem 1 output" in out
        assert "no counterexample" in out

    def test_compare(self, capsys):
        exit_code = main(["compare"])
        assert exit_code == 0
        assert str(59**10) in capsys.readouterr().out

    def test_gadget(self, capsys):
        exit_code = main(["gadget", "--c", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "equality (=) verified: True" in out

    def test_core(self, capsys):
        exit_code = main(["core", "--query", "E(x, y) & E(x, z)"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "dropped 1 redundant" in out

    def test_core_of_core(self, capsys):
        exit_code = main(["core", "--query", "E(x, y) & E(y, x)"])
        assert exit_code == 0
        assert "already a core" in capsys.readouterr().out

    def test_equivalent(self, capsys):
        exit_code = main(
            ["equivalent", "--left", "E(x, y)", "--right", "E(u, v)"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bag-equivalent (iff isomorphic): True" in out

    def test_not_equivalent(self, capsys):
        exit_code = main(
            ["equivalent", "--left", "E(x, y)", "--right", "E(x, y) & E(u, v)"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bag-equivalent (iff isomorphic): False" in out
        assert "set-equivalent (Chandra-Merlin): True" in out

    def test_answers(self, capsys):
        exit_code = main(
            [
                "answers",
                "--query",
                "E(x, y)",
                "--head",
                "x",
                "--facts",
                "E(a,b) E(a,c) E(b,c)",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "(a) x2" in out
        assert "(b) x1" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFlagPlumbing:
    """--workers / --no-cache / --stats-json must never change verdicts."""

    EVALUATE = [
        "evaluate",
        "--query",
        "E(x,y) & E(y,z) & U(x)",
        "--facts",
        "E(a,b) E(b,c) E(c,a) U(a) U(b)",
    ]
    SEARCH = [
        "search",
        "--phi-s",
        "E(x,y) & E(y,x)",
        "--phi-b",
        "E(x,y)",
        "--domain-size",
        "2",
        "--count",
        "30",
        "--seed",
        "0",
    ]

    def _run(self, capsys, argv):
        exit_code = main(argv)
        captured = capsys.readouterr()
        return exit_code, captured.out

    def test_evaluate_workers_and_cache_flags_bit_identical(self, capsys):
        baseline = self._run(capsys, self.EVALUATE)
        for extra in (
            ["--workers", "2"],
            ["--no-cache"],
            ["--workers", "2", "--no-cache"],
        ):
            assert self._run(capsys, self.EVALUATE + extra) == baseline

    def test_search_workers_and_cache_flags_bit_identical(self, capsys):
        baseline = self._run(capsys, self.SEARCH)
        assert baseline[0] == 0
        assert "counterexample" in baseline[1]
        for extra in (
            ["--workers", "2"],
            ["--no-cache"],
            ["--batch-size", "4"],
            ["--workers", "2", "--no-cache", "--batch-size", "4"],
        ):
            assert self._run(capsys, self.SEARCH + extra) == baseline

    def test_search_stats_json_does_not_change_stdout(self, capsys, tmp_path):
        import json

        baseline = self._run(capsys, self.SEARCH)
        target = tmp_path / "search_obs.json"
        with_stats = self._run(
            capsys, self.SEARCH + ["--stats-json", str(target)]
        )
        assert with_stats == baseline
        data = json.loads(target.read_text())
        assert data["metrics"]["search.structures_evaluated"]["value"] > 0
        assert data["trace"][0]["name"] == "cli.search"

    def test_evaluate_stats_json_does_not_change_stdout(self, capsys, tmp_path):
        baseline = self._run(capsys, self.EVALUATE)
        target = tmp_path / "eval_obs.json"
        with_stats = self._run(
            capsys, self.EVALUATE + ["--stats-json", str(target)]
        )
        assert with_stats == baseline
        assert target.exists()


class TestFuzzCommand:
    def test_fuzz_smoke_exits_clean(self, capsys):
        exit_code = main(["fuzz", "--max-cases", "30", "--seed", "0"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "cases=30" in out
        assert "failures=0" in out

    def test_fuzz_oracle_filter(self, capsys):
        exit_code = main(
            [
                "fuzz",
                "--max-cases",
                "30",
                "--seed",
                "0",
                "--oracle",
                "gadget_equality",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "gadget_equality" in out
        assert "cross_engine" not in out

    def test_fuzz_unknown_oracle_rejected(self):
        with pytest.raises(SystemExit, match="unknown oracle"):
            main(["fuzz", "--max-cases", "5", "--oracle", "nope"])

    def test_fuzz_negative_budgets_rejected(self):
        with pytest.raises(SystemExit, match="--max-cases must be >= 0"):
            main(["fuzz", "--max-cases", "-5"])
        with pytest.raises(SystemExit, match="--budget-seconds must be >= 0"):
            main(["fuzz", "--budget-seconds", "-1"])

    def test_fuzz_stats_json_has_qa_counters(self, capsys, tmp_path):
        import json

        target = tmp_path / "fuzz_obs.json"
        exit_code = main(
            [
                "fuzz",
                "--max-cases",
                "20",
                "--seed",
                "0",
                "--stats-json",
                str(target),
            ]
        )
        assert exit_code == 0
        data = json.loads(target.read_text())
        assert data["metrics"]["qa.cases"]["value"] == 20
        assert data["metrics"]["qa.checks"]["value"] > 20
        assert data["metrics"]["qa.failures"]["value"] == 0
        assert data["trace"][0]["name"] == "cli.fuzz"


class TestStatsFlags:
    def test_evaluate_stats_to_stderr(self, capsys):
        exit_code = main(
            [
                "evaluate",
                "--query",
                "E(x,y) & E(y,x)",
                "--facts",
                "E(a,b) E(b,a)",
                "--stats",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "2"
        assert "observability report" in captured.err
        assert "cli.evaluate" in captured.err
        assert "bt.nodes" in captured.err
        assert "engine.dispatch.backtracking" in captured.err

    def test_evaluate_without_stats_is_silent(self, capsys):
        exit_code = main(
            ["evaluate", "--query", "E(x,y)", "--facts", "E(a,b)"]
        )
        assert exit_code == 0
        assert "observability" not in capsys.readouterr().err

    def test_stats_json_artifact(self, tmp_path, capsys):
        import json

        target = tmp_path / "obs.json"
        exit_code = main(
            [
                "evaluate",
                "--query",
                "E(x,y)",
                "--facts",
                "E(a,b) E(b,c)",
                "--stats-json",
                str(target),
            ]
        )
        assert exit_code == 0
        # --stats-json alone does not print the text report.
        assert "observability" not in capsys.readouterr().err
        data = json.loads(target.read_text())
        assert data["metrics"]["bt.calls"]["value"] == 1
        assert data["metrics"]["bt.nodes"]["value"] > 0
        assert data["trace"][0]["name"] == "cli.evaluate"

    def test_reduce_stats_has_step_spans_and_counters(self, capsys, tmp_path):
        import json

        target = tmp_path / "reduce_obs.json"
        exit_code = main(
            [
                "reduce",
                "--instance",
                "always_positive",
                "--grid",
                "1",
                "--stats",
                "--stats-json",
                str(target),
            ]
        )
        assert exit_code == 0
        err = capsys.readouterr().err
        for step in ("reduce.arena", "reduce.pi", "reduce.zeta", "reduce.delta"):
            assert step in err
        assert "bt.nodes" in err
        assert "bt.memo_misses" in err
        data = json.loads(target.read_text())
        assert data["metrics"]["bt.nodes"]["value"] > 0
        names = {root["name"] for root in data["trace"]}
        assert names == {"cli.reduce"}

    def test_evaluate_acyclic_engine(self, capsys):
        exit_code = main(
            [
                "evaluate",
                "--query",
                "E(x,y) & E(y,z)",
                "--facts",
                "E(a,b) E(b,c)",
                "--engine",
                "acyclic",
                "--stats",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "1"
        assert "ac.join_passes" in captured.err

    def test_stats_report_emitted_on_error(self, capsys):
        exit_code = main(
            [
                "evaluate",
                "--query",
                "E(x,y) & E(y,z) & E(z,x)",
                "--facts",
                "E(a,b)",
                "--engine",
                "acyclic",
                "--stats",
            ]
        )
        assert exit_code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "[engine: acyclic]" in err
        assert "observability report" in err


class TestExplainCommand:
    def test_explain_text(self, capsys):
        exit_code = main(
            ["explain", "--query", "E(x,y) & E(y,z)", "--facts", "E(a,b) E(b,c)"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "engine=" in out

    def test_explain_json_is_stable_plan_dict(self, capsys):
        import json

        exit_code = main(["explain", "--query", "E(x,y) & E(y,z)", "--json"])
        assert exit_code == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["schema_version"] == 1
        assert payload["engines"]
        assert all("engine" in step for step in payload["steps"])
        # Stable JSON: key-sorted, so the output round-trips byte-for-byte.
        assert out.strip() == json.dumps(payload, indent=2, sort_keys=True)

    def test_explain_json_matches_library_plan(self, capsys):
        import json

        from repro.planner import PlanCache, plan
        from repro.queries import parse_query

        query_text = "E(x,y) & E(y,z) & F(u,u)"
        exit_code = main(["explain", "--query", query_text, "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        query = parse_query(query_text)
        local = plan(query, query.canonical_structure(), cache=PlanCache())
        assert payload == json.loads(json.dumps(local.to_dict()))


class TestServiceCommands:
    @pytest.fixture()
    def server(self):
        from repro.service import EvaluationServer, ServerConfig

        with EvaluationServer(ServerConfig(workers=1)) as srv:
            yield srv

    def test_call_evaluate(self, capsys, server):
        exit_code = main(
            [
                "call",
                "evaluate",
                "--url",
                server.url,
                "--query",
                "E(x,y) & E(y,x)",
                "--facts",
                "E(a,b) E(b,a) E(a,a)",
            ]
        )
        assert exit_code == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_call_healthz(self, capsys, server):
        import json

        exit_code = main(["call", "healthz", "--url", server.url])
        assert exit_code == 0
        assert json.loads(capsys.readouterr().out)["status"] == "ok"

    def test_call_explain(self, capsys, server):
        import json

        exit_code = main(
            ["call", "explain", "--url", server.url, "--query", "E(x,y) & E(y,z)"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["steps"]

    def test_call_decide(self, capsys, server):
        import json

        exit_code = main(
            [
                "call",
                "decide",
                "--url",
                server.url,
                "--phi-s",
                "E(x,y) & E(y,x)",
                "--phi-b",
                "E(x,y)",
                "--count",
                "5",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] in ("counterexample", "exhausted")

    def test_call_evaluate_requires_query(self, server):
        with pytest.raises(SystemExit):
            main(["call", "evaluate", "--url", server.url])

    def test_serve_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.port == 8642
        assert args.workers >= 1
        assert args.no_coalesce is False
