"""Baselines the paper positions itself against: [14] UCQs and [15] JKV."""

from repro.baselines.jkv import (
    JKV_INEQUALITY_COUNT,
    ComparisonRow,
    comparison_row,
    format_comparison_table,
)
from repro.baselines.ucq_encoding import (
    UCQContainmentInstance,
    monomial_to_cq,
    polynomial_to_ucq,
    ucq_containment_instance,
    valuation_structure,
)

__all__ = [
    "ComparisonRow",
    "JKV_INEQUALITY_COUNT",
    "UCQContainmentInstance",
    "comparison_row",
    "format_comparison_table",
    "monomial_to_cq",
    "polynomial_to_ucq",
    "ucq_containment_instance",
    "valuation_structure",
]
