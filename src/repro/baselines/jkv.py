"""Accounting against the Jayram–Kolaitis–Vee construction [15].

The previous state of the art for ``QCP^bag_{CQ,≠}`` undecidability (PODS
2006) needed "no less than 59¹⁰ inequalities" for its anti-cheating
mechanism (Section 1.1).  The paper's Theorem 3 brings this to **one**
inequality in the b-query and none in the s-query.  This module produces
the quantitative comparison rows used by experiment E9 — the reproduction's
stand-in for the paper's headline table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.theorem3 import Theorem3Reduction

__all__ = [
    "JKV_INEQUALITY_COUNT",
    "ComparisonRow",
    "comparison_row",
    "format_comparison_table",
]

#: The inequality count the paper attributes to [15]: 59^10.
JKV_INEQUALITY_COUNT = 59**10


@dataclass(frozen=True)
class ComparisonRow:
    """One row of the inequality-budget comparison."""

    instance_name: str
    psi_s_inequalities: int
    psi_b_inequalities: int
    jkv_inequalities: int = JKV_INEQUALITY_COUNT

    @property
    def improvement_factor(self) -> int:
        """How many times fewer inequalities than [15] (total over both queries)."""
        ours = self.psi_s_inequalities + self.psi_b_inequalities
        return self.jkv_inequalities // max(1, ours)


def comparison_row(name: str, reduction: Theorem3Reduction) -> ComparisonRow:
    """Measure a Theorem 3 output against the [15] budget."""
    s_count, b_count = reduction.inequality_counts
    return ComparisonRow(
        instance_name=name,
        psi_s_inequalities=s_count,
        psi_b_inequalities=b_count,
    )


def format_comparison_table(rows: list[ComparisonRow]) -> str:
    """Render the comparison as an aligned text table."""
    header = (
        f"{'instance':<28} {'ψ_s ≠':>6} {'ψ_b ≠':>6} "
        f"{'JKV 2006 ≠':>22} {'improvement':>14}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.instance_name:<28} {row.psi_s_inequalities:>6} "
            f"{row.psi_b_inequalities:>6} {row.jkv_inequalities:>22} "
            f"{row.improvement_factor:>14}"
        )
    return "\n".join(lines)
