"""The Ioannidis–Ramakrishnan baseline [14]: UCQ encoding of polynomials.

The paper's Section 1.1 recalls that ``QCP^bag_UCQ`` was the first bag
generalization proven undecidable, "a straightforward encoding of
Hilbert's 10th problem": a monomial translates naturally into a CQ and a
sum of monomials into a disjunction.  This module implements that
encoding so the experiments can contrast it with the paper's far subtler
single-CQ trick (Section 4.3).

The schema is the valuation relation ``X`` alone, with constants ``b_n``
for the numerical variables: a monomial ``x_{i₁}·…·x_{i_d}`` becomes
``X(b_{i₁}, z₁) ∧ … ∧ X(b_{i_d}, z_d)`` with *distinct* fresh ``z``'s, so
under bag semantics its count on a valuation database is exactly
``Ξ(x_{i₁})·…·Ξ(x_{i_d})``; coefficients become disjunct multiplicities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arena import b_constant
from repro.core.pi import X_RELATION
from repro.errors import PolynomialError
from repro.polynomials.hilbert import hilbert_to_lemma11
from repro.polynomials.monomial import Monomial
from repro.polynomials.polynomial import Polynomial
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.structure import Structure

__all__ = [
    "monomial_to_cq",
    "polynomial_to_ucq",
    "valuation_structure",
    "UCQContainmentInstance",
    "ucq_containment_instance",
]


def monomial_to_cq(monomial: Monomial) -> ConjunctiveQuery:
    """``x_{i₁}·…·x_{i_d} ↦ ⋀_j X(b_{i_j}, z_j)``.

    The degree-0 monomial maps to the empty query TRUE (count 1), matching
    its constant value 1.
    """
    atoms = [
        Atom(X_RELATION, (b_constant(index), Variable(f"z_{position}")))
        for position, index in enumerate(monomial.indices, start=1)
    ]
    return ConjunctiveQuery(atoms)


def polynomial_to_ucq(polynomial: Polynomial) -> UnionOfConjunctiveQueries:
    """``Σ c_i·t_i ↦ ⋁ c_i copies of the t_i-CQ`` (natural coefficients only)."""
    if not polynomial.has_natural_coefficients() and not polynomial.is_zero():
        raise PolynomialError(
            "the UCQ encoding requires natural coefficients; "
            "split signs first (Appendix B.2)"
        )
    return UnionOfConjunctiveQueries(
        (monomial_to_cq(monomial), coefficient)
        for monomial, coefficient in polynomial
    )


def valuation_structure(valuation: dict[int, int]) -> Structure:
    """The database encoding a valuation ``Ξ`` through ``X`` out-degrees."""
    schema = Schema([RelationSymbol(X_RELATION, 2)])
    facts = {
        X_RELATION: {
            (b_constant(index), ("val", index, i))
            for index, value in valuation.items()
            for i in range(1, value + 1)
        }
    }
    constants = {
        b_constant(index).name: b_constant(index) for index in valuation
    }
    return Structure(schema, facts, constants)


@dataclass(frozen=True)
class UCQContainmentInstance:
    """A ``QCP^bag_UCQ`` instance equivalent to ``Q`` having no root in ℕ.

    ``ucq_s ⊑_bag ucq_b`` (i.e. ``P₁(Ξ) ≤ P₂(Ξ)`` everywhere) iff ``Q`` is
    unsolvable, via Lemma 25.
    """

    q: Polynomial
    p1: Polynomial
    p2: Polynomial
    ucq_s: UnionOfConjunctiveQueries
    ucq_b: UnionOfConjunctiveQueries


def ucq_containment_instance(q: Polynomial) -> UCQContainmentInstance:
    """Encode a Hilbert-10 polynomial as a UCQ bag-containment question.

    Reuses the Appendix B.2 sign split: ``P₁ = Q'_- + 1``, ``P₂ = Q'_+``
    with ``Q' = Q²``; then ``Q`` has a root iff ``P₁ > P₂`` somewhere iff
    the containment **fails**.
    """
    pipeline = hilbert_to_lemma11(q)
    return UCQContainmentInstance(
        q=q,
        p1=pipeline.p1,
        p2=pipeline.p2,
        ucq_s=polynomial_to_ucq(pipeline.p1),
        ucq_b=polynomial_to_ucq(pipeline.p2),
    )
