"""bagcq — Bag-semantics conjunctive query containment.

A faithful, executable reproduction of *"Bag Semantics Conjunctive Query
Containment. Four Small Steps Towards Undecidability"* (Marcinkowski &
Orda, PODS 2024): conjunctive queries under multiset semantics, the
homomorphism-counting machinery, the multiplication gadgets of Section 3,
the Hilbert-10th-problem reductions of Section 4 and Appendix B, and the
structure operations and equivalences of Section 5.
"""

from repro.core import (
    alpha_gadget,
    beta_gadget,
    gamma_gadget,
    reduce_polynomial,
    theorem1_reduction,
    theorem3_reduction,
    transfer_witness,
)
from repro.containment_set import (
    ContainmentCache,
    cq_containment,
    cq_contained,
    ucq_containment,
    ucq_contained,
)
from repro.decision import decide_bag_containment, verify_bounded
from repro.homomorphism import (
    count,
    count_ucq,
    evaluate,
    set_contained,
)
from repro.polynomials import (
    Lemma11Instance,
    Monomial,
    Polynomial,
    hilbert_to_lemma11,
    standard_suite,
)
from repro.queries import (
    Atom,
    OpenQuery,
    ConjunctiveQuery,
    Constant,
    Inequality,
    QueryProduct,
    UnionOfConjunctiveQueries,
    Variable,
    parse_query,
)
from repro.relational import (
    Schema,
    Structure,
    StructureBuilder,
    blowup,
    disjoint_union,
    power,
    product,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "Inequality",
    "Lemma11Instance",
    "Monomial",
    "OpenQuery",
    "Polynomial",
    "QueryProduct",
    "Schema",
    "Structure",
    "StructureBuilder",
    "UnionOfConjunctiveQueries",
    "Variable",
    "alpha_gadget",
    "beta_gadget",
    "ContainmentCache",
    "blowup",
    "count",
    "count_ucq",
    "cq_containment",
    "cq_contained",
    "decide_bag_containment",
    "disjoint_union",
    "evaluate",
    "gamma_gadget",
    "hilbert_to_lemma11",
    "parse_query",
    "power",
    "product",
    "reduce_polynomial",
    "set_contained",
    "standard_suite",
    "theorem1_reduction",
    "theorem3_reduction",
    "transfer_witness",
    "ucq_containment",
    "ucq_contained",
    "verify_bounded",
    "__version__",
]
