"""Multiset databases: base relations with duplicate tuples.

The literature around the paper distinguishes two multiset semantics
(e.g. Afrati et al. [7], "query containment under bag and bag-set
semantics"):

* **bag-set semantics** — base relations are *sets*, duplicates arise only
  from projection/join.  This is the semantics of the paper and of the
  plain :class:`~repro.relational.structure.Structure` used everywhere
  else in this library (``φ(D) = |Hom(φ, D)|``).
* **bag semantics proper** — base relations are *multisets* themselves
  (real SQL tables).  A homomorphism is then weighted by the product of
  the multiplicities of the facts it uses, counted once per atom
  *occurrence*:

  ``φ(D) = Σ_{h ∈ Hom(φ, set(D))} Π_{atoms A of φ} mult(h(A))``

A :class:`MultisetStructure` carries fact multiplicities and evaluates
queries under bag semantics proper.  Its :meth:`support` is the ordinary
set-based structure, and when every multiplicity is 1 the two semantics
coincide (tested).  Weighted evaluation reduces to ordinary counting over
the support with per-fact weights folded in during the atom-directed join.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.errors import EvaluationError, SchemaError
from repro.relational.schema import Schema
from repro.relational.structure import Structure

if False:  # pragma: no cover - import cycle guard, used for typing only
    from repro.queries.cq import ConjunctiveQuery

__all__ = ["MultisetStructure", "count_weighted"]

Element = Hashable


class MultisetStructure:
    """A finite structure whose facts carry multiplicities ≥ 1.

    >>> schema = Schema.from_arities({"E": 2})
    >>> d = MultisetStructure(schema, {"E": {(0, 1): 3, (1, 0): 1}})
    >>> d.multiplicity("E", (0, 1))
    3
    """

    __slots__ = ("_schema", "_facts", "_constants", "_domain")

    def __init__(
        self,
        schema: Schema,
        facts: Mapping[str, Mapping[tuple, int]] | None = None,
        constants: Mapping[str, Element] | None = None,
        domain: Iterable[Element] = (),
    ) -> None:
        self._schema = schema
        normalized: dict[str, dict[tuple, int]] = {}
        elements: set[Element] = set(domain)
        for name, bucket in (facts or {}).items():
            if name not in schema:
                raise SchemaError(f"fact uses undeclared relation {name!r}")
            cleaned: dict[tuple, int] = {}
            for values, multiplicity in bucket.items():
                values = tuple(values)
                schema.check_tuple(name, values)
                if multiplicity < 0:
                    raise SchemaError(
                        f"multiplicity of {name}{values!r} must be >= 0, "
                        f"got {multiplicity}"
                    )
                if multiplicity == 0:
                    continue
                cleaned[values] = multiplicity
                elements.update(values)
            if cleaned:
                normalized[name] = cleaned
        self._constants = dict(constants or {})
        elements.update(self._constants.values())
        self._facts = normalized
        self._domain = frozenset(elements)

    # -- accessors -------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def domain(self) -> frozenset:
        return self._domain

    @property
    def constants(self) -> Mapping[str, Element]:
        return dict(self._constants)

    def multiplicity(self, relation: str, values: tuple) -> int:
        self._schema.symbol(relation)
        return self._facts.get(relation, {}).get(tuple(values), 0)

    def facts(self, relation: str) -> dict[tuple, int]:
        self._schema.symbol(relation)
        return dict(self._facts.get(relation, {}))

    def total_multiplicity(self, relation: str | None = None) -> int:
        """Total tuple count including duplicates (``COUNT(*)``)."""
        if relation is None:
            return sum(
                sum(bucket.values()) for bucket in self._facts.values()
            )
        return sum(self.facts(relation).values())

    def support(self) -> Structure:
        """The set-based structure obtained by forgetting multiplicities."""
        return Structure(
            self._schema,
            {name: set(bucket) for name, bucket in self._facts.items()},
            self._constants,
            self._domain,
        )

    @classmethod
    def from_structure(
        cls, structure: Structure, multiplicity: int = 1
    ) -> "MultisetStructure":
        """Lift a set-based structure, giving every fact the same multiplicity."""
        facts = {
            name: {values: multiplicity for values in structure.facts(name)}
            for name in structure.schema.relation_names
            if structure.facts(name)
        }
        return cls(structure.schema, facts, structure.constants, structure.domain)

    def scale(self, relation: str, values: tuple, factor: int) -> "MultisetStructure":
        """A copy with one fact's multiplicity multiplied by ``factor``."""
        facts = {
            name: dict(bucket) for name, bucket in self._facts.items()
        }
        current = facts.get(relation, {}).get(tuple(values))
        if current is None:
            raise SchemaError(f"no fact {relation}{tuple(values)!r} to scale")
        facts[relation][tuple(values)] = current * factor
        return MultisetStructure(self._schema, facts, self._constants, self._domain)

    # -- value semantics -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultisetStructure):
            return NotImplemented
        return (
            self._schema == other._schema
            and self._facts == other._facts
            and self._constants == other._constants
            and self._domain == other._domain
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._schema,
                frozenset(
                    (name, frozenset(bucket.items()))
                    for name, bucket in self._facts.items()
                ),
                frozenset(self._constants.items()),
                self._domain,
            )
        )

    def __repr__(self) -> str:
        return (
            f"MultisetStructure(|dom|={len(self._domain)}, "
            f"total={self.total_multiplicity()})"
        )


def count_weighted(query: "ConjunctiveQuery", structure: MultisetStructure) -> int:
    """``φ(D)`` under bag semantics proper (weighted homomorphism count).

    Every homomorphism into the support contributes the product, over the
    query's atom occurrences, of the multiplicity of the fact the atom
    maps to.  With all multiplicities 1 this equals the ordinary count.

    Inequalities are supported (they constrain the homomorphisms, not the
    weights).  Implemented by enumerating support homomorphisms and
    weighting — exact, and adequate for the moderate counts this library
    works with; the factorization laws (Lemma 1 analogues) are covered by
    the test suite.
    """
    # Imported here: queries/homomorphism modules depend on the relational
    # package, so a module-level import would be circular.
    from repro.homomorphism.backtracking import enumerate_homomorphisms
    from repro.queries.terms import Constant

    support = structure.support()
    total = 0
    for assignment in enumerate_homomorphisms(query, support):
        weight = 1
        for atom in query.atoms:
            values = tuple(
                structure.constants[term.name]
                if isinstance(term, Constant)
                else assignment[term]
                for term in atom.terms
            )
            multiplicity = structure.multiplicity(atom.relation, values)
            if multiplicity == 0:
                raise EvaluationError(
                    "internal error: support homomorphism uses a zero-"
                    "multiplicity fact"
                )
            weight *= multiplicity
        total += weight
    return total
