"""Relational schemas: relation symbols with fixed arities.

The paper (Section 2.1) works with finite relational structures over a
relational signature that may also contain constants.  We keep the two
concerns separate: a :class:`Schema` declares relation symbols and their
arities, while constant interpretations live on each
:class:`~repro.relational.structure.Structure`.

Schemas are immutable value objects.  Reductions in the paper repeatedly
take *disjoint unions* of schemas (e.g. Section 3 combines the gadget
schema with the schema of the encoded polynomial), so :meth:`Schema.union`
and :meth:`Schema.is_disjoint_from` are first-class operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ArityError, SchemaError

__all__ = ["RelationSymbol", "Schema"]


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation name together with its arity.

    >>> RelationSymbol("E", 2)
    RelationSymbol(name='E', arity=2)
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation symbol needs a non-empty name")
        if self.arity < 1:
            raise SchemaError(
                f"relation {self.name!r} needs arity >= 1, got {self.arity}"
            )

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Schema:
    """An immutable set of relation symbols keyed by name.

    >>> sigma = Schema([RelationSymbol("E", 2), RelationSymbol("U", 1)])
    >>> sigma.arity("E")
    2
    >>> "U" in sigma
    True
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSymbol] = ()) -> None:
        by_name: dict[str, RelationSymbol] = {}
        for symbol in relations:
            existing = by_name.get(symbol.name)
            if existing is not None and existing != symbol:
                raise SchemaError(
                    f"relation {symbol.name!r} declared with conflicting "
                    f"arities {existing.arity} and {symbol.arity}"
                )
            by_name[symbol.name] = symbol
        self._relations: dict[str, RelationSymbol] = dict(
            sorted(by_name.items())
        )

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Schema":
        """Build a schema from a ``{name: arity}`` mapping."""
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    # -- lookup --------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def symbol(self, name: str) -> RelationSymbol:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def arity(self, name: str) -> int:
        return self.symbol(name).arity

    def check_tuple(self, name: str, values: tuple) -> None:
        """Raise :class:`ArityError` unless ``values`` fits relation ``name``."""
        expected = self.arity(name)
        if len(values) != expected:
            raise ArityError(
                f"relation {name!r} has arity {expected}, "
                f"got a tuple of length {len(values)}"
            )

    # -- algebra -------------------------------------------------------

    def union(self, other: "Schema") -> "Schema":
        """The union schema; arities of shared names must agree."""
        return Schema(list(self) + list(other))

    def is_disjoint_from(self, other: "Schema") -> bool:
        """True when no relation name is shared.

        Disjointness is the precondition of Lemma 4 (composing
        multiplication gadgets) and of the Section 3 product construction
        ``psi_s = alpha_s /\\bar phi_s``.
        """
        return not set(self._relations) & set(other._relations)

    def restrict(self, names: Iterable[str]) -> "Schema":
        """The sub-schema containing only ``names`` (all must exist)."""
        return Schema(self.symbol(name) for name in names)

    # -- value semantics -----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(tuple(self._relations.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(symbol) for symbol in self)
        return f"Schema({{{inner}}})"
