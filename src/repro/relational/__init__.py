"""Relational substrate: schemas, finite structures, structure operations."""

from repro.relational.isomorphism import (
    are_isomorphic,
    distinct_up_to_isomorphism,
    find_isomorphism,
)
from repro.relational.multiset_structure import MultisetStructure, count_weighted
from repro.relational.operations import (
    apply_delta,
    blowup,
    disjoint_union,
    power,
    product,
    structure_delta,
)
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.structure import Delta, Structure, StructureBuilder

__all__ = [
    "Delta",
    "MultisetStructure",
    "RelationSymbol",
    "Schema",
    "Structure",
    "StructureBuilder",
    "apply_delta",
    "are_isomorphic",
    "blowup",
    "count_weighted",
    "distinct_up_to_isomorphism",
    "find_isomorphism",
    "disjoint_union",
    "power",
    "product",
    "structure_delta",
]
