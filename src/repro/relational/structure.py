"""Finite relational structures (databases) with constants.

A :class:`Structure` is the paper's ``D`` (Section 2.1): a finite set of
elements (the active domain ``V_D``), a finite set of facts per relation
symbol, and an interpretation for each constant of the language
(homomorphisms must fix constants: ``h(a) = a``).

Structures are immutable value objects; bulk construction goes through
:class:`StructureBuilder`, and small functional updates go through the
``with_*`` methods.  Domain elements may be any hashable Python values.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.errors import ConstantError, SchemaError
from repro.naming import HEART, SPADE
from repro.relational.schema import RelationSymbol, Schema

__all__ = ["Structure", "StructureBuilder"]

Element = Hashable
Fact = tuple[str, tuple]


class Structure:
    """An immutable finite relational structure.

    >>> sigma = Schema.from_arities({"E": 2})
    >>> d = Structure(sigma, facts={"E": [(1, 2), (2, 1)]})
    >>> sorted(d.domain)
    [1, 2]
    >>> d.fact_count("E")
    2
    """

    __slots__ = ("_schema", "_facts", "_constants", "_domain")

    def __init__(
        self,
        schema: Schema,
        facts: Mapping[str, Iterable[tuple]] | None = None,
        constants: Mapping[str, Element] | None = None,
        domain: Iterable[Element] = (),
    ) -> None:
        self._schema = schema
        normalized: dict[str, frozenset[tuple]] = {}
        elements: set[Element] = set(domain)
        for name, tuples in (facts or {}).items():
            if name not in schema:
                raise SchemaError(f"fact uses undeclared relation {name!r}")
            bucket = set()
            for values in tuples:
                values = tuple(values)
                schema.check_tuple(name, values)
                bucket.add(values)
                elements.update(values)
            if bucket:
                normalized[name] = frozenset(bucket)
        self._constants: dict[str, Element] = dict(constants or {})
        elements.update(self._constants.values())
        self._facts = normalized
        self._domain = frozenset(elements)

    # -- basic accessors -------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def domain(self) -> frozenset:
        """The active domain ``V_D``."""
        return self._domain

    @property
    def constants(self) -> Mapping[str, Element]:
        return dict(self._constants)

    def interpret(self, constant_name: str) -> Element:
        """The element interpreting ``constant_name`` (``a_D`` in the paper)."""
        try:
            return self._constants[constant_name]
        except KeyError:
            raise ConstantError(
                f"structure does not interpret constant {constant_name!r}"
            ) from None

    def interprets(self, constant_name: str) -> bool:
        return constant_name in self._constants

    def facts(self, relation: str) -> frozenset[tuple]:
        """All tuples of ``relation`` (empty if the relation has no facts)."""
        self._schema.symbol(relation)
        return self._facts.get(relation, frozenset())

    def all_facts(self) -> Iterator[Fact]:
        for name in sorted(self._facts):
            for values in sorted(self._facts[name], key=repr):
                yield name, values

    def fact_count(self, relation: str | None = None) -> int:
        """Number of facts of ``relation``, or total facts when ``None``."""
        if relation is None:
            return sum(len(bucket) for bucket in self._facts.values())
        return len(self.facts(relation))

    def has_fact(self, relation: str, values: tuple) -> bool:
        return tuple(values) in self.facts(relation)

    def is_nontrivial(self) -> bool:
        """Non-triviality per Section 1.2: ``♠`` and ``♥`` differ.

        A structure that does not interpret both constants is *not*
        non-trivial: the definition requires the database to "contain two
        different constants".
        """
        if SPADE not in self._constants or HEART not in self._constants:
            return False
        return self._constants[SPADE] != self._constants[HEART]

    # -- functional updates ----------------------------------------------

    def with_fact(self, relation: str, values: tuple) -> "Structure":
        facts = {name: set(bucket) for name, bucket in self._facts.items()}
        facts.setdefault(relation, set()).add(tuple(values))
        return Structure(self._schema, facts, self._constants, self._domain)

    def without_fact(self, relation: str, values: tuple) -> "Structure":
        facts = {name: set(bucket) for name, bucket in self._facts.items()}
        facts.get(relation, set()).discard(tuple(values))
        return Structure(self._schema, facts, self._constants, self._domain)

    def with_constant(self, name: str, element: Element) -> "Structure":
        constants = dict(self._constants)
        constants[name] = element
        return Structure(self._schema, self._facts, constants, self._domain)

    def with_element(self, element: Element) -> "Structure":
        return Structure(
            self._schema, self._facts, self._constants, self._domain | {element}
        )

    def with_schema(self, schema: Schema) -> "Structure":
        """Reinterpret over a larger schema (all existing facts must fit)."""
        return Structure(schema, self._facts, self._constants, self._domain)

    # -- restriction and quotients ----------------------------------------

    def restrict(self, relation_names: Iterable[str]) -> "Structure":
        """``D ↾ Σ₀``: drop all facts of relations outside ``relation_names``.

        Keeps the domain and the constants intact, exactly as Definition 13
        needs ("by ``D ↾ Σ₀`` we mean the database resulting from D by
        removing from it all atoms of the relation X").
        """
        keep = set(relation_names)
        schema = self._schema.restrict(keep)
        facts = {name: bucket for name, bucket in self._facts.items() if name in keep}
        return Structure(schema, facts, self._constants, self._domain)

    def relabel(self, mapping: Mapping[Element, Element]) -> "Structure":
        """Apply an element mapping (the quotient when non-injective).

        Elements absent from ``mapping`` are kept as-is.  A non-injective
        mapping yields the homomorphic image — this is how the test-suite
        manufactures the paper's *seriously incorrect* databases
        (Definition 13: a homomorphic image of ``D_Arena`` that identifies
        some of its elements).
        """

        def image(element: Element) -> Element:
            return mapping.get(element, element)

        facts = {
            name: {tuple(image(value) for value in values) for values in bucket}
            for name, bucket in self._facts.items()
        }
        constants = {name: image(e) for name, e in self._constants.items()}
        domain = {image(e) for e in self._domain}
        return Structure(self._schema, facts, constants, domain)

    # -- comparisons -------------------------------------------------------

    def extends(self, other: "Structure") -> bool:
        """True when every fact of ``other`` is a fact of ``self``.

        Constants of ``other`` must be interpreted identically by ``self``.
        This is the ``⊇`` of Definition 13 (inclusion of relational
        structures).
        """
        for name, element in other._constants.items():
            if self._constants.get(name) != element:
                return False
        for name, bucket in other._facts.items():
            if name not in self._schema:
                return False
            if not bucket <= self.facts(name):
                return False
        return True

    def same_facts(self, other: "Structure") -> bool:
        """True when both structures have exactly the same fact sets."""
        return self._facts == other._facts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._schema == other._schema
            and self._facts == other._facts
            and self._constants == other._constants
            and self._domain == other._domain
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._schema,
                frozenset(self._facts.items()),
                frozenset(self._constants.items()),
                self._domain,
            )
        )

    def __repr__(self) -> str:
        parts = [f"|dom|={len(self._domain)}", f"|facts|={self.fact_count()}"]
        if self._constants:
            parts.append(f"constants={sorted(self._constants)}")
        return f"Structure({', '.join(parts)})"

    def describe(self) -> str:
        """A multi-line human-readable listing of the structure."""
        lines = [f"domain ({len(self._domain)}): {sorted(self._domain, key=repr)}"]
        for name, element in sorted(self._constants.items()):
            lines.append(f"constant {name} -> {element!r}")
        for name, values in self.all_facts():
            lines.append(f"{name}{values!r}")
        return "\n".join(lines)


class StructureBuilder:
    """Mutable accumulator producing a :class:`Structure`.

    >>> builder = StructureBuilder(Schema.from_arities({"E": 2}))
    >>> builder.add_fact("E", (0, 1)).add_constant("spade", 0)  # doctest: +ELLIPSIS
    <repro.relational.structure.StructureBuilder object at ...>
    >>> builder.build().fact_count("E")
    1
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._facts: dict[str, set[tuple]] = {}
        self._constants: dict[str, Element] = {}
        self._domain: set[Element] = set()

    @property
    def schema(self) -> Schema:
        return self._schema

    def add_relation(self, name: str, arity: int) -> "StructureBuilder":
        self._schema = self._schema.union(Schema([RelationSymbol(name, arity)]))
        return self

    def add_fact(self, relation: str, values: tuple) -> "StructureBuilder":
        values = tuple(values)
        self._schema.check_tuple(relation, values)
        self._facts.setdefault(relation, set()).add(values)
        return self

    def add_facts(self, relation: str, tuples: Iterable[tuple]) -> "StructureBuilder":
        for values in tuples:
            self.add_fact(relation, values)
        return self

    def add_constant(self, name: str, element: Element) -> "StructureBuilder":
        existing = self._constants.get(name)
        if existing is not None and existing != element:
            raise ConstantError(
                f"constant {name!r} already interpreted as {existing!r}"
            )
        self._constants[name] = element
        return self

    def add_element(self, element: Element) -> "StructureBuilder":
        self._domain.add(element)
        return self

    def build(self) -> Structure:
        return Structure(self._schema, self._facts, self._constants, self._domain)
