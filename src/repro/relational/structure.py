"""Finite relational structures (databases) with constants.

A :class:`Structure` is the paper's ``D`` (Section 2.1): a finite set of
elements (the active domain ``V_D``), a finite set of facts per relation
symbol, and an interpretation for each constant of the language
(homomorphisms must fix constants: ``h(a) = a``).

Structures are immutable value objects; bulk construction goes through
:class:`StructureBuilder`, and small functional updates go through the
``with_*`` methods.  Domain elements may be any hashable Python values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.errors import ConstantError, SchemaError
from repro.naming import HEART, SPADE
from repro.relational.schema import RelationSymbol, Schema

__all__ = ["Delta", "Structure", "StructureBuilder"]

Element = Hashable
Fact = tuple[str, tuple]

#: Sentinel name carrying the non-relational part (constants + domain) of a
#: fingerprint vector.  ``§`` cannot appear in a relation name produced by
#: the query parser, so it never collides with a real relation.
CONTEXT_FINGERPRINT_KEY = "§context"


def _digest(payload: object) -> int:
    """A 128-bit content digest, stable across processes and runs.

    ``repr`` keyed: domain elements are hashable Python values whose reprs
    are stable for every type the test-suite and service accept (ints,
    strings, tuples, terms).  ``hash()`` would be salted per process.
    """
    text = repr(payload).encode("utf-8", "backslashreplace")
    return int.from_bytes(hashlib.blake2b(text, digest_size=16).digest(), "big")


def _fact_digest(relation: str, values: tuple) -> int:
    return _digest(("fact", relation, values))


def _relation_base(symbol: RelationSymbol) -> int:
    return _digest(("relation", symbol.name, symbol.arity))


@dataclass(frozen=True)
class Delta:
    """A batch of mutations against a :class:`Structure`.

    Semantics (in application order):

    1. every fact in ``inserts`` is added (inserting an existing fact is a
       no-op);
    2. every fact in ``deletes`` is removed (deleting an absent fact is a
       no-op; a fact both inserted and deleted ends up deleted);
    3. ``add_elements`` join the domain;
    4. ``remove_elements`` leave the domain — removing an element still
       used by a fact or a constant raises :class:`SchemaError`, removing
       an absent element is a no-op.

    Deleting facts never shrinks the domain: elements stay in the active
    domain until explicitly removed.

    >>> delta = Delta(inserts=[("E", (1, 2))], deletes=[("E", (2, 1))])
    >>> sorted(delta.touched_relations())
    ['E']
    >>> delta.is_empty()
    False
    """

    inserts: tuple[Fact, ...] = ()
    deletes: tuple[Fact, ...] = ()
    add_elements: tuple[Element, ...] = ()
    remove_elements: tuple[Element, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "inserts",
            tuple((name, tuple(values)) for name, values in self.inserts),
        )
        object.__setattr__(
            self,
            "deletes",
            tuple((name, tuple(values)) for name, values in self.deletes),
        )
        object.__setattr__(self, "add_elements", tuple(self.add_elements))
        object.__setattr__(self, "remove_elements", tuple(self.remove_elements))

    def touched_relations(self) -> frozenset[str]:
        """Relation names whose fact sets this delta may change."""
        return frozenset(name for name, _ in self.inserts) | frozenset(
            name for name, _ in self.deletes
        )

    def touches_domain(self) -> bool:
        """True when the delta may change the active domain."""
        return bool(self.add_elements or self.remove_elements or self.inserts)

    def is_empty(self) -> bool:
        return not (
            self.inserts
            or self.deletes
            or self.add_elements
            or self.remove_elements
        )

    def touched_elements(self) -> frozenset[Element]:
        """Every element mentioned by any mutation in this delta."""
        elements: set[Element] = set(self.add_elements)
        elements.update(self.remove_elements)
        for _, values in self.inserts:
            elements.update(values)
        for _, values in self.deletes:
            elements.update(values)
        return frozenset(elements)

    def describe(self) -> str:
        parts = []
        if self.inserts:
            parts.append(
                "+" + " +".join(f"{n}{v!r}" for n, v in self.inserts)
            )
        if self.deletes:
            parts.append(
                "-" + " -".join(f"{n}{v!r}" for n, v in self.deletes)
            )
        if self.add_elements:
            parts.append(f"+dom{list(self.add_elements)!r}")
        if self.remove_elements:
            parts.append(f"-dom{list(self.remove_elements)!r}")
        return " ".join(parts) if parts else "(empty delta)"


class Structure:
    """An immutable finite relational structure.

    >>> sigma = Schema.from_arities({"E": 2})
    >>> d = Structure(sigma, facts={"E": [(1, 2), (2, 1)]})
    >>> sorted(d.domain)
    [1, 2]
    >>> d.fact_count("E")
    2
    """

    __slots__ = ("_schema", "_facts", "_constants", "_domain", "_fingerprints", "_context_fp")

    def __init__(
        self,
        schema: Schema,
        facts: Mapping[str, Iterable[tuple]] | None = None,
        constants: Mapping[str, Element] | None = None,
        domain: Iterable[Element] = (),
    ) -> None:
        self._schema = schema
        normalized: dict[str, frozenset[tuple]] = {}
        elements: set[Element] = set(domain)
        for name, tuples in (facts or {}).items():
            if name not in schema:
                raise SchemaError(f"fact uses undeclared relation {name!r}")
            bucket = set()
            for values in tuples:
                values = tuple(values)
                schema.check_tuple(name, values)
                bucket.add(values)
                elements.update(values)
            if bucket:
                normalized[name] = frozenset(bucket)
        self._constants: dict[str, Element] = dict(constants or {})
        elements.update(self._constants.values())
        self._facts = normalized
        self._domain = frozenset(elements)
        # Lazily-filled content-fingerprint memos (see relation_fingerprint).
        self._fingerprints: dict[str, int] = {}
        self._context_fp: int | None = None

    # -- basic accessors -------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def domain(self) -> frozenset:
        """The active domain ``V_D``."""
        return self._domain

    @property
    def constants(self) -> Mapping[str, Element]:
        return dict(self._constants)

    def interpret(self, constant_name: str) -> Element:
        """The element interpreting ``constant_name`` (``a_D`` in the paper)."""
        try:
            return self._constants[constant_name]
        except KeyError:
            raise ConstantError(
                f"structure does not interpret constant {constant_name!r}"
            ) from None

    def interprets(self, constant_name: str) -> bool:
        return constant_name in self._constants

    def facts(self, relation: str) -> frozenset[tuple]:
        """All tuples of ``relation`` (empty if the relation has no facts)."""
        self._schema.symbol(relation)
        return self._facts.get(relation, frozenset())

    def all_facts(self) -> Iterator[Fact]:
        for name in sorted(self._facts):
            for values in sorted(self._facts[name], key=repr):
                yield name, values

    def fact_count(self, relation: str | None = None) -> int:
        """Number of facts of ``relation``, or total facts when ``None``."""
        if relation is None:
            return sum(len(bucket) for bucket in self._facts.values())
        return len(self.facts(relation))

    def has_fact(self, relation: str, values: tuple) -> bool:
        return tuple(values) in self.facts(relation)

    def is_nontrivial(self) -> bool:
        """Non-triviality per Section 1.2: ``♠`` and ``♥`` differ.

        A structure that does not interpret both constants is *not*
        non-trivial: the definition requires the database to "contain two
        different constants".
        """
        if SPADE not in self._constants or HEART not in self._constants:
            return False
        return self._constants[SPADE] != self._constants[HEART]

    # -- content fingerprints ---------------------------------------------

    def relation_fingerprint(self, relation: str) -> int:
        """A 128-bit content fingerprint of one relation's fact set.

        Defined as the XOR of a per-symbol base (covering name and arity)
        with the digest of every fact — order-independent, and updated in
        O(|delta|) by :meth:`apply_delta` (XOR is its own inverse).  Stable
        across processes: built on :mod:`hashlib`, not the salted ``hash``.
        """
        fingerprint = self._fingerprints.get(relation)
        if fingerprint is None:
            fingerprint = _relation_base(self._schema.symbol(relation))
            for values in self._facts.get(relation, ()):
                fingerprint ^= _fact_digest(relation, values)
            self._fingerprints[relation] = fingerprint
        return fingerprint

    def context_fingerprint(self) -> int:
        """Fingerprint of the non-relational content: constants + domain."""
        if self._context_fp is None:
            self._context_fp = _digest(
                (
                    "context",
                    sorted(self._constants.items()),
                    sorted(self._domain, key=repr),
                )
            )
        return self._context_fp

    def fingerprint_vector(
        self, relations: Iterable[str] | None = None
    ) -> tuple[tuple[str, int | None], ...]:
        """The ``(relation, fingerprint)`` vector cache entries depend on.

        ``relations`` restricts the vector to the relations a consumer
        actually reads (``None`` for the whole schema); names absent from
        the schema map to ``None`` rather than raising, so a dependency on
        a *missing* relation is itself recorded.  The final entry, under
        :data:`CONTEXT_FINGERPRINT_KEY`, covers constants and domain.
        """
        if relations is None:
            names: Iterable[str] = self._schema.relation_names
        else:
            names = sorted(set(relations))
        entries: list[tuple[str, int | None]] = []
        for name in names:
            if name in self._schema:
                entries.append((name, self.relation_fingerprint(name)))
            else:
                entries.append((name, None))
        entries.append((CONTEXT_FINGERPRINT_KEY, self.context_fingerprint()))
        return tuple(entries)

    def fingerprint(self) -> str:
        """A short stable hex digest of the full fingerprint vector."""
        return hashlib.blake2b(
            repr(self.fingerprint_vector()).encode("utf-8", "backslashreplace"),
            digest_size=8,
        ).hexdigest()

    # -- functional updates ----------------------------------------------

    def apply_delta(self, delta: "Delta") -> "Structure":
        """Apply a :class:`Delta`, touching only what the delta touches.

        Returns a new structure sharing every untouched fact set (and its
        cached fingerprint) with ``self``; work is proportional to the
        delta, not to the database.  See :class:`Delta` for the mutation
        semantics.

        >>> sigma = Schema.from_arities({"E": 2})
        >>> d = Structure(sigma, facts={"E": [(1, 2)]})
        >>> d2 = d.apply_delta(Delta(inserts=[("E", (2, 3))]))
        >>> sorted(d2.facts("E"))
        [(1, 2), (2, 3)]
        >>> d.fact_count("E")  # the original is untouched
        1
        """
        if delta.is_empty():
            return self
        touched = delta.touched_relations()
        for name in touched:
            if name not in self._schema:
                raise SchemaError(f"delta uses undeclared relation {name!r}")
        new_facts = dict(self._facts)
        new_fps = dict(self._fingerprints)
        elements: set[Element] = set(self._domain)
        for name in touched:
            old_bucket = self._facts.get(name, frozenset())
            inserted = set()
            deleted = set()
            for relation, values in delta.inserts:
                if relation == name:
                    self._schema.check_tuple(name, values)
                    inserted.add(values)
            for relation, values in delta.deletes:
                if relation == name:
                    self._schema.check_tuple(name, values)
                    deleted.add(values)
            new_bucket = (old_bucket | inserted) - deleted
            for values in inserted - deleted:
                elements.update(values)
            if new_bucket:
                new_facts[name] = frozenset(new_bucket)
            else:
                new_facts.pop(name, None)
            cached = self._fingerprints.get(name)
            if cached is not None:
                fingerprint = cached
                for values in new_bucket - old_bucket:
                    fingerprint ^= _fact_digest(name, values)
                for values in old_bucket - new_bucket:
                    fingerprint ^= _fact_digest(name, values)
                new_fps[name] = fingerprint
            else:
                new_fps.pop(name, None)
        elements.update(delta.add_elements)
        removed_elements = set(delta.remove_elements) & elements
        if removed_elements:
            for element in removed_elements:
                if element in self._constants.values():
                    raise SchemaError(
                        f"cannot remove element {element!r}: it interprets "
                        f"a constant"
                    )
            used: set[Element] = set()
            for bucket in new_facts.values():
                for values in bucket:
                    used.update(values)
            still_used = removed_elements & used
            if still_used:
                raise SchemaError(
                    "cannot remove elements still used by facts: "
                    f"{sorted(still_used, key=repr)!r}"
                )
            elements -= removed_elements
        new_domain = frozenset(elements)
        result = Structure.__new__(Structure)
        result._schema = self._schema
        result._facts = new_facts
        result._constants = dict(self._constants)
        result._domain = new_domain
        result._fingerprints = new_fps
        result._context_fp = (
            self._context_fp if new_domain == self._domain else None
        )
        return result

    def with_fact(self, relation: str, values: tuple) -> "Structure":
        facts = {name: set(bucket) for name, bucket in self._facts.items()}
        facts.setdefault(relation, set()).add(tuple(values))
        return Structure(self._schema, facts, self._constants, self._domain)

    def without_fact(self, relation: str, values: tuple) -> "Structure":
        facts = {name: set(bucket) for name, bucket in self._facts.items()}
        facts.get(relation, set()).discard(tuple(values))
        return Structure(self._schema, facts, self._constants, self._domain)

    def with_constant(self, name: str, element: Element) -> "Structure":
        constants = dict(self._constants)
        constants[name] = element
        return Structure(self._schema, self._facts, constants, self._domain)

    def with_element(self, element: Element) -> "Structure":
        return Structure(
            self._schema, self._facts, self._constants, self._domain | {element}
        )

    def with_schema(self, schema: Schema) -> "Structure":
        """Reinterpret over a larger schema (all existing facts must fit)."""
        return Structure(schema, self._facts, self._constants, self._domain)

    # -- restriction and quotients ----------------------------------------

    def restrict(self, relation_names: Iterable[str]) -> "Structure":
        """``D ↾ Σ₀``: drop all facts of relations outside ``relation_names``.

        Keeps the domain and the constants intact, exactly as Definition 13
        needs ("by ``D ↾ Σ₀`` we mean the database resulting from D by
        removing from it all atoms of the relation X").
        """
        keep = set(relation_names)
        schema = self._schema.restrict(keep)
        facts = {name: bucket for name, bucket in self._facts.items() if name in keep}
        return Structure(schema, facts, self._constants, self._domain)

    def relabel(self, mapping: Mapping[Element, Element]) -> "Structure":
        """Apply an element mapping (the quotient when non-injective).

        Elements absent from ``mapping`` are kept as-is.  A non-injective
        mapping yields the homomorphic image — this is how the test-suite
        manufactures the paper's *seriously incorrect* databases
        (Definition 13: a homomorphic image of ``D_Arena`` that identifies
        some of its elements).
        """

        def image(element: Element) -> Element:
            return mapping.get(element, element)

        facts = {
            name: {tuple(image(value) for value in values) for values in bucket}
            for name, bucket in self._facts.items()
        }
        constants = {name: image(e) for name, e in self._constants.items()}
        domain = {image(e) for e in self._domain}
        return Structure(self._schema, facts, constants, domain)

    # -- comparisons -------------------------------------------------------

    def extends(self, other: "Structure") -> bool:
        """True when every fact of ``other`` is a fact of ``self``.

        Constants of ``other`` must be interpreted identically by ``self``.
        This is the ``⊇`` of Definition 13 (inclusion of relational
        structures).
        """
        for name, element in other._constants.items():
            if self._constants.get(name) != element:
                return False
        for name, bucket in other._facts.items():
            if name not in self._schema:
                return False
            if not bucket <= self.facts(name):
                return False
        return True

    def same_facts(self, other: "Structure") -> bool:
        """True when both structures have exactly the same fact sets."""
        return self._facts == other._facts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._schema == other._schema
            and self._facts == other._facts
            and self._constants == other._constants
            and self._domain == other._domain
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._schema,
                frozenset(self._facts.items()),
                frozenset(self._constants.items()),
                self._domain,
            )
        )

    def __repr__(self) -> str:
        parts = [f"|dom|={len(self._domain)}", f"|facts|={self.fact_count()}"]
        if self._constants:
            parts.append(f"constants={sorted(self._constants)}")
        return f"Structure({', '.join(parts)})"

    def describe(self) -> str:
        """A multi-line human-readable listing of the structure."""
        lines = [f"domain ({len(self._domain)}): {sorted(self._domain, key=repr)}"]
        for name, element in sorted(self._constants.items()):
            lines.append(f"constant {name} -> {element!r}")
        for name, values in self.all_facts():
            lines.append(f"{name}{values!r}")
        return "\n".join(lines)


class StructureBuilder:
    """Mutable accumulator producing a :class:`Structure`.

    >>> builder = StructureBuilder(Schema.from_arities({"E": 2}))
    >>> builder.add_fact("E", (0, 1)).add_constant("spade", 0)  # doctest: +ELLIPSIS
    <repro.relational.structure.StructureBuilder object at ...>
    >>> builder.build().fact_count("E")
    1
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._facts: dict[str, set[tuple]] = {}
        self._constants: dict[str, Element] = {}
        self._domain: set[Element] = set()

    @property
    def schema(self) -> Schema:
        return self._schema

    def add_relation(self, name: str, arity: int) -> "StructureBuilder":
        self._schema = self._schema.union(Schema([RelationSymbol(name, arity)]))
        return self

    def add_fact(self, relation: str, values: tuple) -> "StructureBuilder":
        values = tuple(values)
        self._schema.check_tuple(relation, values)
        self._facts.setdefault(relation, set()).add(values)
        return self

    def add_facts(self, relation: str, tuples: Iterable[tuple]) -> "StructureBuilder":
        for values in tuples:
            self.add_fact(relation, values)
        return self

    def add_constant(self, name: str, element: Element) -> "StructureBuilder":
        existing = self._constants.get(name)
        if existing is not None and existing != element:
            raise ConstantError(
                f"constant {name!r} already interpreted as {existing!r}"
            )
        self._constants[name] = element
        return self

    def add_element(self, element: Element) -> "StructureBuilder":
        self._domain.add(element)
        return self

    def build(self) -> Structure:
        return Structure(self._schema, self._facts, self._constants, self._domain)
