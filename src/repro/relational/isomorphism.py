"""Structure isomorphism.

Exhaustive searches (gadget (≤) verification, bounded containment checks)
enumerate every structure over a small domain, but many candidates differ
only by a relabeling of elements — and every query count is invariant
under isomorphism.  This module provides an exact isomorphism test and an
iso-pruning filter for candidate streams.

The test is backtracking over element bijections with an invariant-based
pre-filter (per-element "color" profiles: how often an element occurs at
each position of each relation, plus constant names it interprets).
Exponential in the worst case, linear-ish on the tiny structures the
search procedures enumerate.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.relational.structure import Structure

__all__ = ["are_isomorphic", "find_isomorphism", "distinct_up_to_isomorphism"]

Element = Hashable


def _color(structure: Structure, element: Element) -> tuple:
    """An isomorphism-invariant fingerprint of one element."""
    occurrence_profile = []
    for name in structure.schema.relation_names:
        arity = structure.schema.arity(name)
        counts = [0] * arity
        for values in structure.facts(name):
            for position, value in enumerate(values):
                if value == element:
                    counts[position] += 1
        occurrence_profile.append((name, tuple(counts)))
    interpreted = tuple(
        sorted(
            name
            for name, value in structure.constants.items()
            if value == element
        )
    )
    return (tuple(occurrence_profile), interpreted)


def _profile(structure: Structure) -> tuple:
    """A whole-structure invariant: sorted multiset of element colors."""
    return (
        structure.schema,
        tuple(sorted(structure.fact_count(n) for n in structure.schema.relation_names)),
        tuple(sorted(map(repr, (_color(structure, e) for e in structure.domain)))),
    )


def find_isomorphism(
    left: Structure, right: Structure
) -> dict[Element, Element] | None:
    """An element bijection mapping ``left`` onto ``right`` exactly.

    Constants must map to constants of the same name.  Returns the witness
    mapping or ``None``.
    """
    if left.schema != right.schema:
        return None
    if len(left.domain) != len(right.domain):
        return None
    for name in left.schema.relation_names:
        if left.fact_count(name) != right.fact_count(name):
            return None

    left_elements = sorted(left.domain, key=repr)
    left_colors = {e: _color(left, e) for e in left_elements}
    right_colors: dict[tuple, list[Element]] = {}
    for element in right.domain:
        right_colors.setdefault(_color(right, element), []).append(element)
    for element in left_elements:
        if left_colors[element] not in right_colors:
            return None

    # Most-constrained-first: rare colors first.
    left_elements.sort(key=lambda e: (len(right_colors[left_colors[e]]), repr(e)))

    mapping: dict[Element, Element] = {}
    used: set[Element] = set()

    def consistent_so_far(element: Element, image: Element) -> bool:
        """Check all facts whose support is fully mapped after this pair."""
        trial = dict(mapping)
        trial[element] = image
        for name in left.schema.relation_names:
            for values in left.facts(name):
                if element not in values:
                    continue
                if any(value not in trial for value in values):
                    continue
                mapped = tuple(trial[value] for value in values)
                if not right.has_fact(name, mapped):
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(left_elements):
            return True
        element = left_elements[index]
        for image in right_colors[left_colors[element]]:
            if image in used:
                continue
            if not consistent_so_far(element, image):
                continue
            mapping[element] = image
            used.add(image)
            if backtrack(index + 1):
                return True
            del mapping[element]
            used.discard(image)
        return False

    if backtrack(0):
        # Fact counts are equal and the mapping preserves facts injectively,
        # so the image fact sets coincide; constants were matched by color.
        return dict(mapping)
    return None


def are_isomorphic(left: Structure, right: Structure) -> bool:
    return find_isomorphism(left, right) is not None


def distinct_up_to_isomorphism(
    structures: Iterable[Structure],
) -> Iterator[Structure]:
    """Filter a stream, keeping one representative per isomorphism class.

    Intended for the small-domain exhaustive streams of
    :mod:`repro.decision.search`; memory grows with the number of classes.
    """
    kept: dict[tuple, list[Structure]] = {}
    for structure in structures:
        key = _profile(structure)
        bucket = kept.setdefault(key, [])
        if any(are_isomorphic(structure, seen) for seen in bucket):
            continue
        bucket.append(structure)
        yield structure
