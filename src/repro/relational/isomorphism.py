"""Structure isomorphism.

Exhaustive searches (gadget (≤) verification, bounded containment checks)
enumerate every structure over a small domain, but many candidates differ
only by a relabeling of elements — and every query count is invariant
under isomorphism.  This module provides an exact isomorphism test and an
iso-pruning filter for candidate streams.

The test is backtracking over element bijections with an invariant-based
pre-filter (per-element "color" profiles: how often an element occurs at
each position of each relation, plus constant names it interprets).
Exponential in the worst case, linear-ish on the tiny structures the
search procedures enumerate.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Mapping, TypeVar

from repro.relational.structure import Structure

__all__ = [
    "are_isomorphic",
    "find_isomorphism",
    "distinct_up_to_isomorphism",
    "refine_colors",
]

Element = Hashable
Item = TypeVar("Item")


def _compress(colors: Mapping[Item, Hashable]) -> dict[Item, int]:
    """Replace color values by their rank among the sorted distinct values.

    Keeps every color a small integer, so signatures stay cheap to build
    and compare across refinement rounds (naive ``(old, sig)`` nesting
    grows exponentially).  Ranking by the sorted ``repr`` of the distinct
    values is deterministic and isomorphism-invariant: two inputs with
    equal color-value multisets compress to equal rank assignments.
    """
    ranks = {
        value: rank
        for rank, value in enumerate(sorted(set(colors.values()), key=repr))
    }
    return {item: ranks[value] for item, value in colors.items()}


def refine_colors(
    initial: Mapping[Item, Hashable],
    signature: Callable[[Item, Mapping[Item, int]], Hashable],
) -> dict[Item, int]:
    """Iterated partition refinement (1-WL) to a stable integer coloring.

    Starting from ``initial`` colors, each round recolors every item with
    ``(old_color, signature(item, colors))`` — compressed back to integer
    ranks — until the induced partition stops splitting.  ``signature``
    must be invariant under isomorphism of whatever incidence the caller
    encodes (it sees the current colors, not item identities), which makes
    the final colors isomorphism-invariant too: two isomorphic inputs
    produce equal color multisets, and corresponding items get equal
    integers.  Refinement never merges classes, so the loop terminates
    after at most ``len(initial)`` rounds.

    Shared by the structure-isomorphism pre-filter below and the query
    canonicalization of :mod:`repro.homomorphism.cache`.
    """
    colors = _compress(initial)
    classes = len(set(colors.values()))
    for _ in range(len(colors)):
        refined = _compress(
            {item: (colors[item], signature(item, colors)) for item in colors}
        )
        refined_classes = len(set(refined.values()))
        if refined_classes == classes:
            return refined  # same partition: a fixed point
        colors, classes = refined, refined_classes
    return colors


def _interpreted(structure: Structure, element: Element) -> tuple[str, ...]:
    """Names of the constants the element interprets, sorted."""
    return tuple(
        sorted(
            name
            for name, value in structure.constants.items()
            if value == element
        )
    )


def _color(structure: Structure, element: Element) -> tuple:
    """An isomorphism-invariant fingerprint of one element."""
    occurrence_profile = []
    for name in structure.schema.relation_names:
        arity = structure.schema.arity(name)
        counts = [0] * arity
        for values in structure.facts(name):
            for position, value in enumerate(values):
                if value == element:
                    counts[position] += 1
        occurrence_profile.append((name, tuple(counts)))
    return (tuple(occurrence_profile), _interpreted(structure, element))


def _refined_colors(structure: Structure) -> dict[Element, Hashable]:
    """Stable 1-WL colors of the structure's elements.

    The occurrence-profile colors of :func:`_color` seed the refinement;
    each round then folds in the colors of co-occurring elements, so e.g.
    the two endpoints of the only asymmetric edge of an otherwise regular
    graph end up distinguished.  Strictly sharper than one round, still an
    isomorphism invariant.
    """
    incident: dict[Element, list[tuple[str, int, tuple]]] = {
        element: [] for element in structure.domain
    }
    for name in structure.schema.relation_names:
        for values in structure.facts(name):
            for position, value in enumerate(values):
                incident[value].append((name, position, values))

    def signature(element: Element, colors: Mapping[Element, Hashable]) -> tuple:
        return tuple(
            sorted(
                (
                    (name, position, tuple(colors[v] for v in values))
                    for name, position, values in incident[element]
                ),
                key=repr,
            )
        )

    initial = {element: _color(structure, element) for element in structure.domain}
    return refine_colors(initial, signature)


def _profile(structure: Structure) -> tuple:
    """A whole-structure invariant: sorted multiset of element colors."""
    return (
        structure.schema,
        tuple(sorted(structure.fact_count(n) for n in structure.schema.relation_names)),
        tuple(sorted(map(repr, _refined_colors(structure).values()))),
    )


def find_isomorphism(
    left: Structure, right: Structure
) -> dict[Element, Element] | None:
    """An element bijection mapping ``left`` onto ``right`` exactly.

    Constants must map to constants of the same name.  Returns the witness
    mapping or ``None``.
    """
    if left.schema != right.schema:
        return None
    if len(left.domain) != len(right.domain):
        return None
    for name in left.schema.relation_names:
        if left.fact_count(name) != right.fact_count(name):
            return None

    left_elements = sorted(left.domain, key=repr)
    # Refined ranks align corresponding elements of isomorphic structures;
    # the interpreted-constant names ride along explicitly because rank
    # compression is only guaranteed to agree across the two structures
    # when they *are* isomorphic, and constant matching must hold always.
    left_ranks = _refined_colors(left)
    right_ranks = _refined_colors(right)
    left_colors = {
        element: (left_ranks[element], _interpreted(left, element))
        for element in left.domain
    }
    right_colors: dict[Hashable, list[Element]] = {}
    for element in right.domain:
        color = (right_ranks[element], _interpreted(right, element))
        right_colors.setdefault(color, []).append(element)
    for element in left_elements:
        if left_colors[element] not in right_colors:
            return None

    # Most-constrained-first: rare colors first.
    left_elements.sort(key=lambda e: (len(right_colors[left_colors[e]]), repr(e)))

    mapping: dict[Element, Element] = {}
    used: set[Element] = set()

    def consistent_so_far(element: Element, image: Element) -> bool:
        """Check all facts whose support is fully mapped after this pair."""
        trial = dict(mapping)
        trial[element] = image
        for name in left.schema.relation_names:
            for values in left.facts(name):
                if element not in values:
                    continue
                if any(value not in trial for value in values):
                    continue
                mapped = tuple(trial[value] for value in values)
                if not right.has_fact(name, mapped):
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(left_elements):
            return True
        element = left_elements[index]
        for image in right_colors[left_colors[element]]:
            if image in used:
                continue
            if not consistent_so_far(element, image):
                continue
            mapping[element] = image
            used.add(image)
            if backtrack(index + 1):
                return True
            del mapping[element]
            used.discard(image)
        return False

    if backtrack(0):
        # Fact counts are equal and the mapping preserves facts injectively,
        # so the image fact sets coincide; constants were matched by color.
        return dict(mapping)
    return None


def are_isomorphic(left: Structure, right: Structure) -> bool:
    return find_isomorphism(left, right) is not None


def distinct_up_to_isomorphism(
    structures: Iterable[Structure],
) -> Iterator[Structure]:
    """Filter a stream, keeping one representative per isomorphism class.

    Intended for the small-domain exhaustive streams of
    :mod:`repro.decision.search`; memory grows with the number of classes.
    """
    kept: dict[tuple, list[Structure]] = {}
    for structure in structures:
        key = _profile(structure)
        bucket = kept.setdefault(key, [])
        if any(are_isomorphic(structure, seen) for seen in bucket):
            continue
        bucket.append(structure)
        yield structure
