"""Operations on structures: union, product, blow-up, power.

Section 5.1 of the paper recalls two standard graph operations, which it
applies to arbitrary relational structures:

* ``blowup(D, k)`` — replace every element by ``k`` interchangeable copies;
* ``D₁ × D₂`` — the categorical product (atoms hold component-wise), with
  ``D^×k`` the ``k``-fold power.

Both enter Lemma 22 (counting identities for CQs without inequality) and
the proof of Theorem 5.  Section 3 additionally evaluates queries over the
union ``D₁ ∪ D₂`` of databases over *disjoint schemas* sharing the two
non-triviality constants; :func:`disjoint_union` implements exactly that
merge.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.errors import ConstantError
from repro.relational.structure import Delta, Structure

__all__ = [
    "apply_delta",
    "blowup",
    "disjoint_union",
    "power",
    "product",
    "structure_delta",
]

Element = Hashable


def apply_delta(structure: Structure, delta: Delta) -> Structure:
    """Functional form of :meth:`Structure.apply_delta`."""
    return structure.apply_delta(delta)


def structure_delta(old: Structure, new: Structure) -> Delta:
    """The :class:`Delta` turning ``old`` into ``new``.

    Both structures must share schema and constants (a delta cannot change
    either); ``old.apply_delta(structure_delta(old, new)) == new`` holds.
    """
    if old.schema != new.schema:
        raise ValueError("structure_delta requires identical schemas")
    if old.constants != new.constants:
        raise ValueError("structure_delta requires identical constants")
    inserts: list[tuple[str, tuple]] = []
    deletes: list[tuple[str, tuple]] = []
    for name in old.schema.relation_names:
        old_bucket = old.facts(name)
        new_bucket = new.facts(name)
        inserts.extend(
            (name, values) for values in sorted(new_bucket - old_bucket, key=repr)
        )
        deletes.extend(
            (name, values) for values in sorted(old_bucket - new_bucket, key=repr)
        )
    fact_elements: set[Element] = set()
    for name in new.schema.relation_names:
        for values in new.facts(name):
            fact_elements.update(values)
    add_elements = sorted(
        new.domain - old.domain - fact_elements, key=repr
    )
    remove_elements = sorted(old.domain - new.domain, key=repr)
    return Delta(
        inserts=tuple(inserts),
        deletes=tuple(deletes),
        add_elements=tuple(add_elements),
        remove_elements=tuple(remove_elements),
    )


def disjoint_union(left: Structure, right: Structure) -> Structure:
    """Union of two structures, identifying shared constants only.

    Elements interpreting at least one constant are merged by the *set of
    constant names* they interpret; all other elements are kept apart by
    tagging with ``0``/``1``.  If the two structures disagree on the
    grouping of constants (e.g. ``left`` identifies ``♠`` and ``♥`` while
    ``right`` separates them) the interpretation of some constant would
    become ambiguous and :class:`~repro.errors.ConstantError` is raised.

    This is the paper's ``D = D₁ ∪ D₂`` from the proof of Theorem 3: the
    schemas of the two parts are typically disjoint, the non-triviality
    constants are shared.
    """
    schema = left.schema.union(right.schema)

    def key_function(structure: Structure) -> Callable[[Element], Element]:
        owned: dict[Element, frozenset[str]] = {}
        for name, element in structure.constants.items():
            owned[element] = owned.get(element, frozenset()) | {name}
        groups = owned

        def key(element: Element, tag: int, groups=groups) -> Element:
            if element in groups:
                return ("const", tuple(sorted(groups[element])))
            return (tag, element)

        return key

    left_key = key_function(left)
    right_key = key_function(right)

    constants: dict[str, Element] = {}
    for tag, structure, keyer in ((0, left, left_key), (1, right, right_key)):
        for name, element in structure.constants.items():
            merged = keyer(element, tag)
            if name in constants and constants[name] != merged:
                raise ConstantError(
                    f"constant {name!r} would become ambiguous in the union: "
                    f"{constants[name]!r} vs {merged!r}"
                )
            constants[name] = merged

    facts: dict[str, set[tuple]] = {}
    domain: set[Element] = set()
    for tag, structure, keyer in ((0, left, left_key), (1, right, right_key)):
        for element in structure.domain:
            domain.add(keyer(element, tag))
        for name, values in structure.all_facts():
            facts.setdefault(name, set()).add(
                tuple(keyer(value, tag) for value in values)
            )
    return Structure(schema, facts, constants, domain)


def product(left: Structure, right: Structure) -> Structure:
    """The categorical product ``D₁ × D₂`` (Section 5.1).

    Elements are pairs; ``R((s,s'),(r,r'),…)`` is an atom iff ``R(s,r,…)``
    holds in ``D₁`` and ``R(s',r',…)`` holds in ``D₂``.  A constant is
    interpreted in the product only when both factors interpret it, and
    then component-wise — this keeps Lemma 22 (ii),
    ``φ(D^×k) = φ(D)^k``, true in the presence of constants.
    """
    schema = left.schema.union(right.schema)
    facts: dict[str, set[tuple]] = {}
    for name in schema.relation_names:
        left_tuples = left.facts(name) if name in left.schema else frozenset()
        right_tuples = right.facts(name) if name in right.schema else frozenset()
        bucket = {
            tuple(zip(lt, rt))
            for lt in left_tuples
            for rt in right_tuples
        }
        if bucket:
            facts[name] = bucket
    constants = {
        name: (left.interpret(name), right.interpret(name))
        for name in left.constants
        if right.interprets(name)
    }
    domain = {(a, b) for a in left.domain for b in right.domain}
    return Structure(schema, facts, constants, domain)


def power(structure: Structure, k: int) -> Structure:
    """``D^×k``: the product of ``k`` copies of ``D`` (``k ≥ 1``).

    Elements of the result are ``k``-tuples of elements of ``D`` (flattened,
    not nested pairs), so ``power(D, 1)`` is isomorphic to ``D`` with
    1-tuples as elements.
    """
    if k < 1:
        raise ValueError(f"power requires k >= 1, got {k}")
    facts: dict[str, set[tuple]] = {}
    for name in structure.schema.relation_names:
        base = structure.facts(name)
        if not base:
            continue
        bucket: set[tuple] = {tuple((v,) for v in values) for values in base}
        for _ in range(k - 1):
            bucket = {
                tuple(old + (new,) for old, new in zip(combined, values))
                for combined in bucket
                for values in base
            }
        facts[name] = bucket
    constants = {
        name: tuple([element] * k)
        for name, element in structure.constants.items()
    }
    domain = {tuple(point) for point in _cartesian(sorted(structure.domain, key=repr), k)}
    return Structure(structure.schema, facts, constants, domain)


def _cartesian(elements: list, k: int) -> list[tuple]:
    points: list[tuple] = [()]
    for _ in range(k):
        points = [point + (element,) for point in points for element in elements]
    return points


def blowup(structure: Structure, k: int) -> Structure:
    """``blowup(D, k)`` (Section 5.1).

    The element set becomes ``{(s, i) : s ∈ V_D, 1 ≤ i ≤ k}`` and
    ``R((s,i),(r,j),…)`` is an atom iff ``R(s,r,…)`` is.  Constants are
    pinned to copy ``1``; consequently Lemma 22 (i) reads
    ``φ(blowup(D,k)) = k^j · φ(D)`` with ``j`` the number of *variables*
    of ``φ`` (for constant-free queries that is all of ``V_φ``, exactly as
    printed in the paper).
    """
    if k < 1:
        raise ValueError(f"blowup requires k >= 1, got {k}")
    copies = range(1, k + 1)
    facts: dict[str, set[tuple]] = {}
    for name in structure.schema.relation_names:
        base = structure.facts(name)
        if not base:
            continue
        bucket: set[tuple] = set()
        for values in base:
            assignments: list[tuple] = [()]
            for value in values:
                assignments = [
                    partial + ((value, i),) for partial in assignments for i in copies
                ]
            bucket.update(assignments)
        facts[name] = bucket
    constants = {
        name: (element, 1) for name, element in structure.constants.items()
    }
    domain = {(element, i) for element in structure.domain for i in copies}
    return Structure(structure.schema, facts, constants, domain)
