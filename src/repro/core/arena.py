"""The Arena: ground queries pinning the shape of honest databases.

Section 4.4 defines ``Arena = Arena_π ∧ Arena_δ``, a conjunction of
*facts* over constants only, so ``Arena(D) ∈ {0, 1}``:

* ``Arena_π`` carries one constant ``a_m`` per monomial and one ``b_n`` per
  numerical variable, the ``R_d``-edges prescribed by the position relation
  ``𝒫``, the ``S_{m'}``-loops at every ``a_m``, and the tails
  ``S_m(a_m, a) ∧ S_m(a, a)``.
* ``Arena_δ`` (Section 4.6) adds the heart self-loop ``E(♥,♥)`` and an
  ``E``-cycle of length ``𝕝 = 𝗆 + 𝗇 + 2`` through ``♠`` and every
  ``Arena_π`` constant.

A database satisfying ``Arena`` is **correct** when its ``Σ₀``-part is
exactly the canonical structure ``D_Arena``, **slightly incorrect** when it
has extra ``Σ₀``-atoms (constants still distinct), and **seriously
incorrect** when it identifies constants (Definition 13).  The relation
``X`` encodes a valuation ``Ξ_D`` via out-degrees at the ``b_n``
(Definition 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.pi import X_RELATION, r_relation, s_relation
from repro.errors import ReductionError
from repro.naming import HEART, SPADE
from repro.polynomials.lemma11 import Lemma11Instance
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.structure import Structure

__all__ = [
    "Arena",
    "build_arena",
    "DatabaseKind",
    "E_RELATION",
]

#: Name of the cycle relation of ``Arena_δ``.
E_RELATION = "E"


class DatabaseKind(Enum):
    """Definition 13's classification (plus the trivial failure mode)."""

    NOT_ARENA = "not-arena"
    CORRECT = "correct"
    SLIGHTLY_INCORRECT = "slightly-incorrect"
    SERIOUSLY_INCORRECT = "seriously-incorrect"


def a_constant(m: int | None = None) -> Constant:
    """``a`` (no argument) or ``a_m`` — the per-monomial constants."""
    return Constant("a" if m is None else f"a_{m}")


def b_constant(n: int) -> Constant:
    """``b_n`` — the per-numerical-variable constants."""
    return Constant(f"b_{n}")


@dataclass(frozen=True)
class Arena:
    """All Arena components for one Lemma 11 instance."""

    instance: Lemma11Instance
    arena_pi: ConjunctiveQuery
    arena_delta: ConjunctiveQuery
    d_arena: Structure

    @property
    def arena(self) -> ConjunctiveQuery:
        """``Arena = Arena_π ∧ Arena_δ`` (ground, hence 0/1-valued)."""
        return self.arena_pi & self.arena_delta

    @property
    def cycle_length(self) -> int:
        """``𝕝 = 𝗆 + 𝗇 + 2``: the length of the ``Arena_δ`` cycle."""
        return self.instance.m + self.instance.n + 2

    @property
    def sigma0(self) -> Schema:
        """``Σ₀``: everything except the valuation relation ``X``."""
        return self.d_arena.schema.restrict(
            name
            for name in self.d_arena.schema.relation_names
            if name != X_RELATION
        )

    @property
    def rs_relations(self) -> tuple[str, ...]:
        """``Σ_RS = {S_1..S_m, R_1..R_d}`` (Section 4.5)."""
        instance = self.instance
        return tuple(
            [s_relation(m) for m in range(1, instance.m + 1)]
            + [r_relation(d) for d in range(1, instance.d + 1)]
        )

    @property
    def constants(self) -> tuple[Constant, ...]:
        """Every constant mentioned by ``Arena`` (including ♠ and ♥)."""
        instance = self.instance
        result = [Constant(SPADE), Constant(HEART), a_constant()]
        result.extend(a_constant(m) for m in range(1, instance.m + 1))
        result.extend(b_constant(n) for n in range(1, instance.n + 1))
        return tuple(result)

    # -- valuations (Definition 14) -----------------------------------------

    def valuation_of(self, structure: Structure) -> dict[int, int]:
        """``Ξ_D``: the number of ``X``-edges leaving each ``b_n``."""
        valuation: dict[int, int] = {}
        for n in range(1, self.instance.n + 1):
            source = structure.interpret(b_constant(n).name)
            valuation[n] = sum(
                1 for values in structure.facts(X_RELATION) if values[0] == source
            )
        return valuation

    def correct_database(self, valuation: dict[int, int]) -> Structure:
        """The correct database realizing a valuation ``Ξ``.

        ``D_Arena`` plus ``Ξ(x_n)`` fresh ``X``-successors of each ``b_n``.
        Every correct database with out-degree targets outside the arena
        arises this way up to isomorphism, which is all Lemma 16 needs.
        """
        structure = self.d_arena
        for n in range(1, self.instance.n + 1):
            value = valuation.get(n, 0)
            if value < 0:
                raise ReductionError(
                    f"valuations range over the naturals; x{n} = {value}"
                )
            source = structure.interpret(b_constant(n).name)
            for i in range(1, value + 1):
                structure = structure.with_fact(
                    X_RELATION, (source, ("xval", n, i))
                )
        return structure

    # -- Definition 13 classification ---------------------------------------------

    def classify(self, structure: Structure) -> DatabaseKind:
        """Correct / slightly incorrect / seriously incorrect / not-arena."""
        for constant in self.constants:
            if not structure.interprets(constant.name):
                return DatabaseKind.NOT_ARENA
        interpreted_facts: dict[str, set[tuple]] = {}
        for atom in self.arena.atoms:
            values = tuple(
                structure.interpret(term.name)  # type: ignore[union-attr]
                for term in atom.terms
            )
            if not structure.has_fact(atom.relation, values):
                return DatabaseKind.NOT_ARENA
            interpreted_facts.setdefault(atom.relation, set()).add(values)

        images = [structure.interpret(c.name) for c in self.constants]
        if len(set(images)) != len(images):
            return DatabaseKind.SERIOUSLY_INCORRECT

        for name in self.sigma0.relation_names:
            actual = structure.facts(name) if name in structure.schema else frozenset()
            if actual != frozenset(interpreted_facts.get(name, set())):
                return DatabaseKind.SLIGHTLY_INCORRECT
        return DatabaseKind.CORRECT


def build_arena(instance: Lemma11Instance) -> Arena:
    """Construct ``Arena_π``, ``Arena_δ`` and ``D_Arena`` (Sections 4.4/4.6)."""
    m_count, n_count, d_count = instance.m, instance.n, instance.d

    pi_atoms: list[Atom] = []
    for n, d, m in sorted(instance.position_relation()):
        pi_atoms.append(Atom(r_relation(d), (a_constant(m), b_constant(n))))
    for m in range(1, m_count + 1):
        for m_prime in range(1, m_count + 1):
            pi_atoms.append(
                Atom(s_relation(m_prime), (a_constant(m), a_constant(m)))
            )
    for m in range(1, m_count + 1):
        pi_atoms.append(Atom(s_relation(m), (a_constant(m), a_constant())))
        pi_atoms.append(Atom(s_relation(m), (a_constant(), a_constant())))
    arena_pi = ConjunctiveQuery(pi_atoms)

    spade, heart = Constant(SPADE), Constant(HEART)
    cycle: list[Constant] = [spade, a_constant()]
    cycle.extend(a_constant(m) for m in range(1, m_count + 1))
    cycle.extend(b_constant(n) for n in range(1, n_count + 1))
    delta_atoms = [Atom(E_RELATION, (heart, heart))]
    for source, target in zip(cycle, cycle[1:] + [cycle[0]]):
        delta_atoms.append(Atom(E_RELATION, (source, target)))
    arena_delta = ConjunctiveQuery(delta_atoms)

    schema = Schema(
        [RelationSymbol(E_RELATION, 2), RelationSymbol(X_RELATION, 2)]
        + [RelationSymbol(s_relation(m), 2) for m in range(1, m_count + 1)]
        + [RelationSymbol(r_relation(d), 2) for d in range(1, d_count + 1)]
    )
    canonical = (arena_pi & arena_delta).canonical_structure().with_schema(schema)

    arena = Arena(
        instance=instance,
        arena_pi=arena_pi,
        arena_delta=arena_delta,
        d_arena=canonical,
    )
    expected_length = len(cycle)
    if arena.cycle_length != expected_length:
        raise ReductionError(
            f"internal error: cycle length {expected_length} != "
            f"m + n + 2 = {arena.cycle_length}"
        )
    return arena
