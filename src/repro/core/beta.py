"""The workhorse gadget ``β_s, β_b`` of Section 3.1 (Lemma 5).

For a relation ``R`` of arity ``p ≥ 3``:

* ``β_s = CYCLIQ(x₁,x⃗) ∧ CYCLIQ(y₁,y⃗) ∧ CYCLIQ(♥,♥̄) ∧ CYCLIQ(♠,♥̄)``
* ``β_b = CYCLIQ(x₁,x⃗) ∧ CYCLIQ(y₁,y⃗) ∧ x₁ ≠ y₁``

(``♥̄`` is a tuple of ``p−1`` hearts; the two constant conjuncts force any
database with ``β_s(D) > 0`` to contain the homogeneous cyclique
``[♥,♥̄]`` and the normal cyclique ``[♠,♥̄]`` — the sets ``H`` and ``G`` of
the Lemma 9 case analysis.)

Lemma 5: the pair multiplies by ``(p+1)²/2p``.  Condition (=) is attained
on the canonical structure of the constant part: it carries ``p+1``
cycliques (the heart loop plus the ``p`` rotations of ``[♠,♥̄]``), of which
exactly one starts with ``♠``, giving ``β_s = (p+1)²`` and ``β_b = 2p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.cycliq import cycliq
from repro.core.multiplication import MultiplicationGadget
from repro.errors import ReductionError
from repro.queries.atoms import Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import HEART_C, SPADE_C, Variable

__all__ = ["BetaGadget", "beta_gadget"]


@dataclass(frozen=True)
class BetaGadget(MultiplicationGadget):
    """The Lemma 5 gadget for a specific arity ``p``."""

    p: int = 0
    relation: str = "R"


def beta_gadget(p: int, relation: str = "R_beta") -> BetaGadget:
    """Build ``β_s, β_b`` over a fresh relation of arity ``p ≥ 3``.

    >>> gadget = beta_gadget(3)
    >>> gadget.ratio
    Fraction(8, 3)
    >>> gadget.verify_equality()
    True
    """
    if p < 3:
        raise ReductionError(f"Lemma 5 requires arity p >= 3, got {p}")

    x_tuple = tuple(Variable(f"bx_{i}") for i in range(1, p + 1))
    y_tuple = tuple(Variable(f"by_{i}") for i in range(1, p + 1))
    heart_tuple = (HEART_C,) * p
    spade_heart_tuple = (SPADE_C,) + (HEART_C,) * (p - 1)

    constant_part = cycliq(relation, heart_tuple) & cycliq(
        relation, spade_heart_tuple
    )
    beta_s = cycliq(relation, x_tuple) & cycliq(relation, y_tuple) & constant_part
    beta_b = ConjunctiveQuery(
        (cycliq(relation, x_tuple) & cycliq(relation, y_tuple)).atoms,
        [Inequality(x_tuple[0], y_tuple[0])],
    )

    witness = constant_part.canonical_structure()

    return BetaGadget(
        query_s=beta_s,
        query_b=beta_b,
        ratio=Fraction((p + 1) ** 2, 2 * p),
        witness=witness,
        p=p,
        relation=relation,
    )
