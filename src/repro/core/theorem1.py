"""The Theorem 1 reduction: ``(c, P_s, P_b) ↦ (ℂ, φ_s, φ_b)``.

Assembles Sections 4.2–4.7: ``φ_s = Arena ∧̄ π_s`` and
``φ_b = π_b ∧̄ ζ_b ∧̄ δ_b``, with ``ℂ = c·C₁``.  The reduction's
correctness is the equivalence

* **ℛ**: some valuation ``Ξ`` has ``c·P_s(Ξ) > Ξ(x₁)^d·P_b(Ξ)``,  iff
* **𝔇**: some non-trivial database ``D`` has ``ℂ·φ_s(D) > φ_b(D)``,

whose constructive halves are executable here: a violating valuation is
turned into a counterexample database (and *verified* by exact counting),
and conversely any database can be classified (Definition 13) and its
induced valuation extracted (Definition 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.arena import Arena, DatabaseKind, build_arena
from repro.core.delta import DeltaComponents, build_delta
from repro.core.pi import build_pi_b, build_pi_s
from repro.core.zeta import ZetaComponents, build_zeta
from repro.errors import ReductionError
from repro.homomorphism.engine import count, count_at_least
from repro.obs.trace import span
from repro.polynomials.hilbert import HilbertReduction, hilbert_to_lemma11
from repro.polynomials.lemma11 import Lemma11Instance
from repro.polynomials.polynomial import Polynomial
from repro.queries.cq import ConjunctiveQuery
from repro.queries.product import QueryProduct
from repro.relational.structure import Structure

__all__ = ["Theorem1Reduction", "theorem1_reduction", "reduce_polynomial"]


@dataclass(frozen=True)
class Theorem1Reduction:
    """The output tuple ``[ℂ, φ_s, φ_b]`` plus every ingredient."""

    instance: Lemma11Instance
    arena: Arena
    pi_s: ConjunctiveQuery
    pi_b: ConjunctiveQuery
    zeta: ZetaComponents
    delta: DeltaComponents
    big_c: int
    phi_s: QueryProduct
    phi_b: QueryProduct

    # -- the Theorem 1 inequality ----------------------------------------

    def lhs(self, structure: Structure) -> int:
        """``ℂ · φ_s(D)``."""
        return self.big_c * count(self.phi_s, structure)

    def rhs(self, structure: Structure) -> int:
        """``φ_b(D)``."""
        return count(self.phi_b, structure)

    def holds_on(self, structure: Structure) -> bool:
        """Does ``ℂ·φ_s(D) ≤ φ_b(D)`` hold for this database?

        Evaluated threshold-style: ``φ_b`` carries outer exponents of
        magnitude ``ℂ``, so on cheating databases its exact value is
        astronomically large; ``count_at_least`` clears the comparison
        without materializing it.
        """
        return count_at_least(self.phi_b, structure, self.lhs(structure))

    # -- the ℛ ⇒ 𝔇 direction ------------------------------------------------

    def correct_database(self, valuation: Mapping[int, int]) -> Structure:
        """The correct database realizing a valuation (Section 4.4)."""
        return self.arena.correct_database(dict(valuation))

    def counterexample_from_valuation(
        self, valuation: Mapping[int, int]
    ) -> Structure:
        """Turn a Lemma 11 violation into a verified Theorem 1 violation.

        Raises :class:`~repro.errors.ReductionError` when the valuation
        does not violate the Lemma 11 inequality, or when — impossibly, if
        the implementation is right — the constructed database fails to
        violate the query inequality.
        """
        valuation = dict(valuation)
        if self.instance.holds_for(valuation):
            raise ReductionError(
                f"valuation {valuation} satisfies the Lemma 11 inequality; "
                "it yields no counterexample"
            )
        structure = self.correct_database(valuation)
        if self.holds_on(structure):
            raise ReductionError(
                "internal error: the correct database of a violating "
                "valuation does not violate ℂ·φ_s ≤ φ_b"
            )
        return structure

    def find_counterexample(self, max_value: int) -> Structure | None:
        """Grid-search valuations, returning a verified database or ``None``.

        This is (a bounded run of) the co-r.e. half of the problem: when the
        Lemma 11 instance is violated somewhere, a large enough grid finds
        the violation and the returned database witnesses **𝔇**.
        """
        with span("reduce.grid_search", grid=max_value) as current:
            violation = self.instance.find_counterexample(max_value)
            if violation is None:
                current.set(found=False)
                return None
            current.set(found=True, valuation=dict(violation))
            return self.counterexample_from_valuation(violation)

    # -- the 𝔇 ⇒ ℛ direction ----------------------------------------------------

    def classify(self, structure: Structure) -> DatabaseKind:
        return self.arena.classify(structure)

    def valuation_of(self, structure: Structure) -> dict[int, int]:
        return self.arena.valuation_of(structure)

    # -- reporting ------------------------------------------------------------

    def size_report(self) -> dict[str, int]:
        """Sizes of the output queries (atoms/variables/inequalities).

        Counts are for the factorized representation's *expansion*; they
        can be astronomical, which is the point — the queries exist
        syntactically but only their factorized form is materializable.
        """
        return {
            "C": self.big_c,
            "phi_s_atoms": self.phi_s.total_atom_count,
            "phi_s_variables": self.phi_s.total_variable_count,
            "phi_s_inequalities": self.phi_s.total_inequality_count,
            "phi_b_atoms": self.phi_b.total_atom_count,
            "phi_b_variables": self.phi_b.total_variable_count,
            "phi_b_inequalities": self.phi_b.total_inequality_count,
        }


def theorem1_reduction(instance: Lemma11Instance) -> Theorem1Reduction:
    """Build the Theorem 1 output for a Lemma 11 instance.

    >>> from repro.polynomials import Monomial, Lemma11Instance
    >>> instance = Lemma11Instance(
    ...     c=2, monomials=(Monomial.of(1),),
    ...     s_coefficients=(1,), b_coefficients=(1,))
    >>> reduction = theorem1_reduction(instance)
    >>> reduction.big_c > 0
    True
    """
    # The four construction steps each get a span carrying the sizes of
    # the gadget they emit (atoms / variables / inequalities), so a
    # ``--stats`` run shows where reduction time and query bulk come from.
    with span("reduce.arena") as step:
        arena = build_arena(instance)
        step.set(
            atoms=arena.arena.atom_count,
            variables=arena.arena.variable_count,
            inequalities=arena.arena.inequality_count,
        )
    with span("reduce.pi") as step:
        pi_s = build_pi_s(instance)
        pi_b = build_pi_b(instance)
        step.set(
            pi_s_atoms=pi_s.atom_count,
            pi_s_variables=pi_s.variable_count,
            pi_b_atoms=pi_b.atom_count,
            pi_b_variables=pi_b.variable_count,
            inequalities=pi_s.inequality_count + pi_b.inequality_count,
        )
    with span("reduce.zeta") as step:
        zeta = build_zeta(arena, instance.c)
        step.set(
            c1=zeta.c1,
            atoms=zeta.zeta_b.total_atom_count,
            variables=zeta.zeta_b.total_variable_count,
            inequalities=zeta.zeta_b.total_inequality_count,
        )
    big_c = instance.c * zeta.c1
    with span("reduce.delta") as step:
        delta = build_delta(arena, big_c)
        step.set(
            big_c=big_c,
            atoms=delta.delta_b.total_atom_count,
            variables=delta.delta_b.total_variable_count,
            inequalities=delta.delta_b.total_inequality_count,
        )

    phi_s = QueryProduct.of(arena.arena).disjoint_conj(QueryProduct.of(pi_s))
    phi_b = (
        QueryProduct.of(pi_b)
        .disjoint_conj(zeta.zeta_b)
        .disjoint_conj(delta.delta_b)
    )
    return Theorem1Reduction(
        instance=instance,
        arena=arena,
        pi_s=pi_s,
        pi_b=pi_b,
        zeta=zeta,
        delta=delta,
        big_c=big_c,
        phi_s=phi_s,
        phi_b=phi_b,
    )


def reduce_polynomial(
    q: Polynomial,
) -> tuple[HilbertReduction, Theorem1Reduction]:
    """Full pipeline: Hilbert-10 polynomial → Lemma 11 → Theorem 1 queries."""
    with span("reduce.pipeline"):
        with span("reduce.hilbert") as step:
            hilbert = hilbert_to_lemma11(q)
            step.set(
                c=hilbert.instance.c,
                monomials=len(hilbert.instance.monomials),
            )
        with span("reduce.theorem1") as step:
            reduction = theorem1_reduction(hilbert.instance)
            step.set(big_c=reduction.big_c)
    return hilbert, reduction
