"""Exact multiplication by a natural number ``c`` (end of Section 3.2).

Take ``p = 2c − 1`` and ``m = p + 1``; then

``(p+1)²/2p · (m−1)/m  =  (p+1)²/2p · p/(p+1)  =  (p+1)/2  =  c``

so composing :func:`repro.core.beta.beta_gadget` with
:func:`repro.core.gamma.gamma_gadget` via Lemma 4 yields queries
``α_s`` (no inequalities) and ``α_b`` (exactly one inequality) that
multiply by exactly ``c`` — the missing piece that turns Theorem 1 into
Theorem 3.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.beta import beta_gadget
from repro.core.gamma import gamma_gadget
from repro.core.multiplication import MultiplicationGadget, compose
from repro.errors import ReductionError

__all__ = ["alpha_gadget"]


def alpha_gadget(c: int, name_suffix: str = "") -> MultiplicationGadget:
    """Queries ``α_s, α_b`` multiplying by the natural number ``c ≥ 2``.

    ``α_s`` has no inequalities and ``α_b`` exactly one.  ``name_suffix``
    disambiguates relation names when several gadgets share a reduction.

    >>> gadget = alpha_gadget(2)
    >>> gadget.ratio
    Fraction(2, 1)
    >>> gadget.inequality_counts
    (0, 1)
    >>> gadget.verify_equality()
    True
    """
    if c < 2:
        raise ReductionError(f"alpha_gadget requires c >= 2, got {c}")
    p = 2 * c - 1
    m = p + 1
    beta = beta_gadget(p, relation=f"R_beta{name_suffix}")
    gamma = gamma_gadget(
        m,
        relation=f"P_gamma{name_suffix}",
        unary_a=f"A_gamma{name_suffix}",
        unary_b=f"B_gamma{name_suffix}",
    )
    gadget = compose(beta, gamma)
    if gadget.ratio != Fraction(c):
        raise ReductionError(
            f"internal error: composed ratio {gadget.ratio} != {c}"
        )
    return gadget
