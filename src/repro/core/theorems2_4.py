"""Theorems 2 and 4: the trivial-database variants, as decision problems.

Theorems 2 and 4 strengthen Theorems 1 and 3 by dropping the
non-triviality restriction:

* **Theorem 2**: given ``φ_s, φ_b`` (no inequalities) and naturals
  ``c, c'``, is ``c·φ_s(D) ≤ φ_b(D) + c'`` for **every** database ``D``?
  Undecidable.
* **Theorem 4**: given ``ρ_s`` (no inequalities) and ``ρ_b`` (at most one),
  is ``ρ_s(D) ≤ max(1, ρ_b(D))`` for **every** database ``D``?
  Undecidable.

The paper defers their proofs to the full version (they need "another
level of anti-cheating" for trivial databases), so no reduction is built
here — what *is* implemented is everything checkable about the problem
statements:

* the inequality shapes (:class:`Theorem2Instance`,
  :class:`Theorem4Instance`) with exact per-database evaluation and
  bounded verification over all small databases;
* the **well of positivity** (Section 1.2): the single-vertex database in
  which every atomic formula holds.  On it every inequality-free boolean
  CQ counts exactly 1, which is why Theorem 1 needs non-triviality, why
  Theorem 2 needs the additive constant ``c'``, and why Theorem 4 needs
  the ``max(1, ·)`` guard — all three facts are demonstrated by the test
  suite through this module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ReductionError
from repro.homomorphism.engine import count
from repro.queries.cq import ConjunctiveQuery
from repro.queries.product import QueryProduct
from repro.relational.schema import Schema
from repro.relational.structure import Structure

__all__ = [
    "well_of_positivity",
    "Theorem2Instance",
    "Theorem4Instance",
]


def well_of_positivity(schema: Schema, constants: tuple[str, ...] = ()) -> Structure:
    """The "well of positivity": one vertex satisfying every atom.

    Section 1.2: "a structure with a single vertex such that all atomic
    formulas are true in D for this vertex".  Every constant named in
    ``constants`` is interpreted as that vertex, so the well is always
    *trivial* (it cannot interpret ``♠`` and ``♥`` differently).

    For any inequality-free boolean CQ ``φ`` over ``schema``:
    ``φ(well) = 1`` — the unique all-to-the-vertex assignment.
    """
    vertex = "•"
    facts = {
        symbol.name: {(vertex,) * symbol.arity} for symbol in schema
    }
    interpretation = {name: vertex for name in constants}
    return Structure(schema, facts, interpretation, domain=[vertex])


@dataclass(frozen=True)
class Theorem2Instance:
    """An instance of the Theorem 2 problem: ``c·φ_s ≤ φ_b + c'`` over all D."""

    phi_s: ConjunctiveQuery | QueryProduct
    phi_b: ConjunctiveQuery | QueryProduct
    c: int
    c_prime: int

    def __post_init__(self) -> None:
        if self.c < 1 or self.c_prime < 0:
            raise ReductionError("Theorem 2 requires c >= 1 and c' >= 0")
        for query in (self.phi_s, self.phi_b):
            has_ineq = (
                query.has_inequalities()
                if isinstance(query, QueryProduct)
                else query.has_inequalities()
            )
            if has_ineq:
                raise ReductionError(
                    "Theorem 2 queries carry no inequalities"
                )

    def holds_on(self, structure: Structure) -> bool:
        return self.c * count(self.phi_s, structure) <= (
            count(self.phi_b, structure) + self.c_prime
        )

    def minimal_c_prime_on(self, structures) -> int:
        """The smallest ``c'`` making the inequality hold on a sample.

        Useful for exploring how the additive constant absorbs the "well
        of positivity": on trivial databases ``φ_s = φ_b = 1``, so
        ``c' = c − 1`` is always forced (and may not suffice elsewhere).
        """
        needed = 0
        for structure in structures:
            gap = self.c * count(self.phi_s, structure) - count(
                self.phi_b, structure
            )
            needed = max(needed, gap)
        return needed


@dataclass(frozen=True)
class Theorem4Instance:
    """An instance of the Theorem 4 problem: ``ρ_s ≤ max(1, ρ_b)`` over all D."""

    rho_s: ConjunctiveQuery
    rho_b: ConjunctiveQuery

    def __post_init__(self) -> None:
        if self.rho_s.has_inequalities():
            raise ReductionError("Theorem 4's s-query carries no inequalities")
        if self.rho_b.inequality_count > 1:
            raise ReductionError(
                "Theorem 4's b-query carries at most one inequality"
            )

    def holds_on(self, structure: Structure) -> bool:
        return count(self.rho_s, structure) <= max(
            1, count(self.rho_b, structure)
        )

    def max_guard_fires_on(self, structure: Structure) -> bool:
        """Did the ``max(1, ·)`` clause do any work on this database?

        True when ``ρ_b(D) = 0`` but ``ρ_s(D) ≤ 1`` keeps the instance
        alive — exactly the "well of positivity" situation the guard was
        introduced for.
        """
        return count(self.rho_b, structure) == 0 and count(
            self.rho_s, structure
        ) <= 1


def verify_instance_bounded(
    instance: Theorem2Instance | Theorem4Instance,
    schema: Schema,
    domain_size: int = 2,
) -> Structure | None:
    """First small database violating the instance, or ``None``.

    Enumerates **all** structures over ``{0..domain_size−1}`` including
    trivial ones — Theorems 2 and 4 quantify over every database.
    """
    domain = tuple(range(domain_size))
    relation_tuples = [
        (symbol.name, list(itertools.product(domain, repeat=symbol.arity)))
        for symbol in schema
    ]
    streams = [
        [frozenset(c) for size in range(len(tuples) + 1) for c in itertools.combinations(tuples, size)]
        for _, tuples in relation_tuples
    ]
    names = [name for name, _ in relation_tuples]
    for choice in itertools.product(*streams):
        structure = Structure(schema, dict(zip(names, choice)), domain=domain)
        if not instance.holds_on(structure):
            return structure
    return None
