"""The fine-tuning gadget ``γ_s, γ_b`` of Section 3.2 (Lemma 10).

``β`` can only multiply by numbers of the form ``(p+1)²/2p``; to hit an
exact natural number ``c`` one composes it with a pair multiplying by
``(m−1)/m`` — crucially **without** any inequality in ``γ_b`` (the budget
of one inequality is already spent in ``β_b``).

With ``P`` of arity ``m``, unary predicates ``A`` and ``B``:

* ``γ'_s = CYCLIQ_A(♠,♥̄) ∧ B(♠)``       (ground: a known ``A``-cyclique^B)
* ``γ''_s = CYCLIQ_B(x₁,x⃗) ∧ A(x₁)``     (counts ``B``-cycliques^A)
* ``γ'_b = CYCLIQ_A(y₁,y⃗) ∧ B(y₁)``      (counts ``A``-cycliques^B)
* ``γ''_b = CYCLIQ_B(x₁,x⃗)``             (counts all ``B``-cycliques)

and ``γ_s = γ'_s ∧̄ γ''_s``, ``γ_b = γ'_b ∧̄ γ''_b``.

The (=) witness is the disjoint union of the canonical structure of
``γ'_s`` with a fresh ``B``-cycle of length ``m`` whose first ``m−1``
members satisfy ``A``: there ``γ'`` counts are 1 and ``γ''`` counts are
``m−1`` versus ``m``.

The ground conjunct ``γ'_s`` uses the *mixed* tuple ``[♠,♥̄]`` — not an
all-♠ loop — because the (≤) proof's endgame needs the unique
``A``-cyclique^B to be non-homogeneous, which fails in a non-trivial
database exactly as the printed contradiction requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.cycliq import cycliq_u
from repro.core.multiplication import MultiplicationGadget
from repro.errors import ReductionError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import HEART_C, SPADE_C, Variable
from repro.relational.operations import disjoint_union

__all__ = ["GammaGadget", "gamma_gadget"]


@dataclass(frozen=True)
class GammaGadget(MultiplicationGadget):
    """The Lemma 10 gadget for a specific arity ``m``."""

    m: int = 0
    relation: str = "P"
    unary_a: str = "A"
    unary_b: str = "B"


def gamma_gadget(
    m: int,
    relation: str = "P_gamma",
    unary_a: str = "A_gamma",
    unary_b: str = "B_gamma",
) -> GammaGadget:
    """Build ``γ_s, γ_b`` multiplying by ``(m−1)/m`` (``m ≥ 3``).

    >>> gadget = gamma_gadget(4)
    >>> gadget.ratio
    Fraction(3, 4)
    >>> gadget.verify_equality()
    True
    """
    if m < 3:
        raise ReductionError(f"the gamma gadget requires arity m >= 3, got {m}")

    x_tuple = tuple(Variable(f"gx_{i}") for i in range(1, m + 1))
    y_tuple = tuple(Variable(f"gy_{i}") for i in range(1, m + 1))
    spade_heart_tuple = (SPADE_C,) + (HEART_C,) * (m - 1)

    gamma_s_prime = cycliq_u(relation, unary_a, spade_heart_tuple) & ConjunctiveQuery(
        [Atom(unary_b, (SPADE_C,))]
    )
    gamma_s_doubleprime = cycliq_u(relation, unary_b, x_tuple) & ConjunctiveQuery(
        [Atom(unary_a, (x_tuple[0],))]
    )
    gamma_b_prime = cycliq_u(relation, unary_a, y_tuple) & ConjunctiveQuery(
        [Atom(unary_b, (y_tuple[0],))]
    )
    gamma_b_doubleprime = cycliq_u(relation, unary_b, x_tuple)

    gamma_s = gamma_s_prime.disjoint_conj(gamma_s_doubleprime)
    gamma_b = gamma_b_prime.disjoint_conj(gamma_b_doubleprime)

    # The (=) witness: canonical structure of γ'_s, plus a disjoint
    # B-cycle of length m whose first m−1 members also satisfy A.
    fresh_cycle = cycliq_u(relation, unary_b, x_tuple) & ConjunctiveQuery(
        Atom(unary_a, (x_tuple[i],)) for i in range(m - 1)
    )
    witness = disjoint_union(
        gamma_s_prime.canonical_structure(),
        fresh_cycle.canonical_structure(),
    )

    return GammaGadget(
        query_s=gamma_s,
        query_b=gamma_b,
        ratio=Fraction(m - 1, m),
        witness=witness,
        m=m,
        relation=relation,
        unary_a=unary_a,
        unary_b=unary_b,
    )
