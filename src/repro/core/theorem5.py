"""Theorem 5: inequalities in the s-query can always be eliminated.

Section 5 proves that the problem "``ψ_s(D) ≤ ψ_b(D)`` for all ``D``", with
inequalities allowed in ``ψ_s`` but not in ``ψ_b``, is decidable **iff**
``QCP^bag_CQ`` itself is.  The engine is Lemma 23: with ``ψ'_s`` denoting
``ψ_s`` stripped of its inequalities,

``∃D. ψ_s(D) > ψ_b(D)``  ⟺  ``∃D₀. ψ'_s(D₀) > ψ_b(D₀)``,

whose non-trivial direction is constructive: amplify ``D₀`` by a product
power ``k`` (Lemma 22 (ii)) until ``ψ'_s`` dominates ``ψ_b`` by a factor
``> 2^{j+1}`` (``j = |Var(ψ_b)|``), then blow up by 2; Lemma 24 guarantees
the inequality-respecting homomorphisms are at least half of all of them.

This module implements the witness transfer *constructively and
verified*: the returned database is checked by exact counting, and the
search widens the blow-up factor for queries with several inequalities
(the paper's closing remark: use ``2p`` instead of ``2``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReductionError, SearchBudgetExceeded
from repro.homomorphism.engine import count
from repro.queries.cq import ConjunctiveQuery
from repro.relational.operations import blowup, power
from repro.relational.structure import Structure

__all__ = [
    "lemma24_holds",
    "transfer_witness",
    "Theorem5Transfer",
    "decide_via_relaxation",
]


def lemma24_holds(psi_s: ConjunctiveQuery, structure: Structure, factor: int = 2) -> bool:
    """Check Lemma 24 on a concrete structure by exact counting.

    For a single-inequality ``ψ_s``:
    ``ψ_s(blowup(D,2)) ≥ ψ'_s(blowup(D,2)) / 2``.  With ``q`` inequalities
    the generalized bound divides by ``2q`` at blow-up factor ``2q``
    (``factor`` lets the caller probe other blow-ups).
    """
    blown = blowup(structure, factor)
    with_ineqs = count(psi_s, blown)
    without = count(psi_s.without_inequalities(), blown)
    q = max(1, psi_s.inequality_count)
    return with_ineqs * 2 * q >= without


@dataclass(frozen=True)
class Theorem5Transfer:
    """A verified Lemma 23 witness transfer."""

    psi_s: ConjunctiveQuery
    psi_b: ConjunctiveQuery
    source: Structure
    product_power: int
    blowup_factor: int
    witness: Structure
    lhs: int
    rhs: int


def transfer_witness(
    psi_s: ConjunctiveQuery,
    psi_b: ConjunctiveQuery,
    source: Structure,
    max_power: int = 12,
) -> Theorem5Transfer:
    """Lemma 23, the (b) ⇒ (a) direction, constructively.

    Given ``D₀`` with ``ψ'_s(D₀) > ψ_b(D₀)``, find
    ``D = blowup(D₀^{×k}, β)`` with ``ψ_s(D) > ψ_b(D)``, verified by exact
    counting.  ``ψ_b`` must be inequality-free (Theorem 5's hypothesis).

    The search tries ``k = 1, 2, …`` with blow-up factors ``2, …, 2q+2``;
    the paper guarantees success once
    ``(ψ'_s(D₀)/ψ_b(D₀))^k > 2^{j+1}``, so small ``k`` suffice whenever the
    source gap is non-trivial.  Raises
    :class:`~repro.errors.SearchBudgetExceeded` past ``max_power``.
    """
    if psi_b.has_inequalities():
        raise ReductionError("Theorem 5 requires an inequality-free ψ_b")
    psi_s_prime = psi_s.without_inequalities()
    base_lhs = count(psi_s_prime, source)
    base_rhs = count(psi_b, source)
    if base_lhs <= base_rhs:
        raise ReductionError(
            f"ψ'_s(D₀) = {base_lhs} does not exceed ψ_b(D₀) = {base_rhs}; "
            "the source is no Lemma 23 witness"
        )
    factors = range(2, 2 * max(1, psi_s.inequality_count) + 3)
    for k in range(1, max_power + 1):
        amplified = power(source, k) if k > 1 else source
        for factor in factors:
            candidate = blowup(amplified, factor)
            lhs = count(psi_s, candidate)
            rhs = count(psi_b, candidate)
            if lhs > rhs:
                return Theorem5Transfer(
                    psi_s=psi_s,
                    psi_b=psi_b,
                    source=source,
                    product_power=k,
                    blowup_factor=factor,
                    witness=candidate,
                    lhs=lhs,
                    rhs=rhs,
                )
    raise SearchBudgetExceeded(
        f"no witness found up to product power {max_power}; "
        "increase max_power (Lemma 23 guarantees eventual success)"
    )


def decide_via_relaxation(
    psi_s: ConjunctiveQuery,
    psi_b: ConjunctiveQuery,
    relaxation_oracle,
    max_power: int = 12,
) -> tuple[bool, Structure | None]:
    """Theorem 5 as a reduction: decide via the inequality-free relaxation.

    ``relaxation_oracle(φ_s, φ_b)`` must answer the *inequality-free*
    containment question, returning either ``None`` ("contained
    everywhere") or a counterexample database ``D₀`` with
    ``φ_s(D₀) > φ_b(D₀)``.  Per Lemma 23 the answer for ``(ψ_s, ψ_b)`` —
    inequalities allowed in ``ψ_s``, none in ``ψ_b`` — is the same; in the
    negative case the returned witness is lifted through the blow-up
    amplifier and verified.

    Returns ``(contained, witness)`` where ``witness`` violates
    ``ψ_s(D) ≤ ψ_b(D)`` when ``contained`` is ``False``.

    This realizes the "decidable iff ``QCP^bag_CQ`` is decidable"
    statement operationally: plug in any (sound+complete) procedure for
    the open problem and the inequality-extended problem is solved too.
    In practice the oracle is a bounded verifier, so the outcome carries
    the oracle's caveats.
    """
    if psi_b.has_inequalities():
        raise ReductionError("Theorem 5 requires an inequality-free ψ_b")
    source = relaxation_oracle(psi_s.without_inequalities(), psi_b)
    if source is None:
        return True, None
    transfer = transfer_witness(psi_s, psi_b, source, max_power=max_power)
    return False, transfer.witness
