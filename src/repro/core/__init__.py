"""The paper's contribution: gadgets (Section 3) and reductions (Sections 4–5)."""

from repro.core.alpha import alpha_gadget
from repro.core.arena import Arena, DatabaseKind, build_arena
from repro.core.beta import BetaGadget, beta_gadget
from repro.core.cycliq import (
    CycliqueKind,
    all_cycliques,
    classify_cyclique,
    cyclass,
    cyclic_shift,
    cycliq,
    cycliq_u,
    is_cyclique,
    partition_cyclasses,
    rotations,
)
from repro.core.delta import DeltaComponents, build_delta, cycle_query
from repro.core.gamma import GammaGadget, gamma_gadget
from repro.core.multiplication import MultiplicationGadget, compose
from repro.core.pi import (
    build_pi_b,
    build_pi_s,
    lemma12_homomorphism,
    r_relation,
    s_relation,
)
from repro.core.theorem1 import (
    Theorem1Reduction,
    reduce_polynomial,
    theorem1_reduction,
)
from repro.core.theorem3 import Theorem3Reduction, theorem3_reduction
from repro.core.theorem5 import Theorem5Transfer, lemma24_holds, transfer_witness
from repro.core.constants_ban import free_constants, hard_ban, soft_ban
from repro.core.theorems2_4 import (
    Theorem2Instance,
    Theorem4Instance,
    verify_instance_bounded,
    well_of_positivity,
)
from repro.core.zeta import ZetaComponents, build_zeta

__all__ = [
    "Arena",
    "BetaGadget",
    "CycliqueKind",
    "DatabaseKind",
    "DeltaComponents",
    "GammaGadget",
    "MultiplicationGadget",
    "Theorem1Reduction",
    "Theorem2Instance",
    "Theorem3Reduction",
    "Theorem4Instance",
    "Theorem5Transfer",
    "ZetaComponents",
    "all_cycliques",
    "alpha_gadget",
    "beta_gadget",
    "build_arena",
    "build_delta",
    "build_pi_b",
    "build_pi_s",
    "build_zeta",
    "classify_cyclique",
    "compose",
    "cyclass",
    "cycle_query",
    "cyclic_shift",
    "free_constants",
    "hard_ban",
    "cycliq",
    "cycliq_u",
    "gamma_gadget",
    "is_cyclique",
    "lemma12_homomorphism",
    "lemma24_holds",
    "partition_cyclasses",
    "r_relation",
    "reduce_polynomial",
    "rotations",
    "s_relation",
    "soft_ban",
    "theorem1_reduction",
    "theorem3_reduction",
    "transfer_witness",
    "verify_instance_bounded",
    "well_of_positivity",
]
