"""The cycle-counting query ``δ_b`` (Section 4.6): punishing serious incorrectness.

``δ_{b,l}`` is the homomorphic ``l``-cycle query
``E(z₁,z₂) ∧ … ∧ E(z_l, z₁)``.  With ``𝕝 = 𝗆 + 𝗇 + 2`` the cycle length
of ``Arena_δ`` and ``L = {1, …, 𝕝−1} ∪ {𝕝+1}``,

``δ_b = (∧̄_{l∈L} δ_{b,l}) ↑ C``.

On a correct database the only ``E``-cycles are the heart self-loop and
the length-``𝕝`` arena cycle; since ``L`` omits exactly ``𝕝``, every
factor counts one homomorphic image (everything winds around the loop) and
``δ_b = 1`` (Lemma 20).  A seriously incorrect database identifies
constants and thereby creates either a short cycle (``l < 𝕝``) or a
loop-on-the-cycle configuration supporting length ``𝕝+1``, giving some
factor ≥ 2 and hence ``δ_b ≥ 2^C ≥ C`` (Lemma 21).  The outer exponent
``C`` is huge, so ``δ_b`` is kept factorized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arena import E_RELATION, Arena
from repro.errors import ReductionError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.product import QueryProduct
from repro.queries.terms import Variable

__all__ = ["DeltaComponents", "build_delta", "cycle_query"]


def cycle_query(length: int, relation: str = E_RELATION, prefix: str = "z") -> ConjunctiveQuery:
    """``δ_{b,l}``: the directed ``l``-cycle as a CQ (``l = 1`` is a loop).

    Counts *homomorphic images* of the cycle — walks of length ``l`` that
    return to their start — not just simple cycles.
    """
    if length < 1:
        raise ReductionError(f"cycle length must be >= 1, got {length}")
    variables = [Variable(f"{prefix}{length}_{i}") for i in range(1, length + 1)]
    atoms = [
        Atom(relation, (variables[i], variables[(i + 1) % length]))
        for i in range(length)
    ]
    return ConjunctiveQuery(atoms)


@dataclass(frozen=True)
class DeltaComponents:
    """``δ_b`` together with its label set and outer exponent."""

    cycle_length: int
    labels: tuple[int, ...]
    big_c: int
    delta_b: QueryProduct

    def label_queries(self) -> tuple[ConjunctiveQuery, ...]:
        return tuple(cycle_query(label) for label in self.labels)


def build_delta(arena: Arena, big_c: int) -> DeltaComponents:
    """Construct ``δ_b = (∧̄_{l∈L} δ_{b,l}) ↑ C`` for the arena's ``𝕝``."""
    if big_c < 1:
        raise ReductionError(f"the exponent C must be >= 1, got {big_c}")
    cycle_length = arena.cycle_length
    labels = tuple(
        label for label in range(1, cycle_length + 2) if label != cycle_length
    )
    delta_b = QueryProduct(
        (cycle_query(label), big_c) for label in labels
    )
    return DeltaComponents(
        cycle_length=cycle_length,
        labels=labels,
        big_c=big_c,
        delta_b=delta_b,
    )
