"""The anti-cheating query ``ζ_b`` (Section 4.5): punishing slight incorrectness.

For each relation ``P ∈ Σ_RS = {S_1..S_𝗆, R_1..R_𝖽}`` let ``j^P`` be the
number of ``P``-atoms in ``Arena`` and ``j`` their maximum.  Choose the
smallest ``k`` with ``((j+1)/j)^k ≥ c`` and set

``ζ^P = P(w, v) ↑ k``,   ``ζ_b = ∧̄_P ζ^P``,   ``C₁ = ζ_b(D_Arena)``,
``C = c · C₁``.

Then (Lemmas 17–18): on a correct database ``ζ_b = C₁``; whenever
``D ⊨ Arena``, ``ζ_b(D) ≥ 1``; and on a *slightly incorrect* database —
one with at least one extra ``Σ₀``-atom — ``ζ_b(D) ≥ c·C₁``, because some
relation has ``j^P + 1`` atoms and ``((j^P+1)/j^P)^k ≥ ((j+1)/j)^k ≥ c``.

``ζ_b`` and the constants it induces are kept in factorized form: ``k``
grows like ``j·ln c`` and ``C₁`` is a product of ``k``-th powers, easily
astronomical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arena import Arena
from repro.errors import ReductionError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.product import QueryProduct
from repro.queries.terms import Variable

__all__ = ["ZetaComponents", "build_zeta"]


@dataclass(frozen=True)
class ZetaComponents:
    """``ζ_b`` with all the constants of Section 4.5."""

    atoms_per_relation: dict[str, int]
    j: int
    k: int
    zeta_b: QueryProduct
    c1: int

    def expected_on_correct(self) -> int:
        """Lemma 17: ``ζ_b(D) = C₁`` on every correct database."""
        return self.c1


def smallest_k(j: int, c: int) -> int:
    """The smallest ``k ≥ 0`` with ``((j+1)/j)^k ≥ c`` (exact arithmetic)."""
    if j < 1:
        raise ReductionError(f"j must be >= 1, got {j}")
    k = 0
    while (j + 1) ** k < c * j**k:
        k += 1
    return k


def build_zeta(arena: Arena, c: int) -> ZetaComponents:
    """Construct ``ζ_b`` and the constants ``j``, ``k``, ``C₁`` for ``c``."""
    if c < 2:
        raise ReductionError(f"Lemma 11 guarantees c >= 2, got {c}")
    atoms_per_relation: dict[str, int] = {}
    for relation in arena.rs_relations:
        count = arena.d_arena.fact_count(relation)
        if count < 1:
            raise ReductionError(
                f"Arena has no atoms of {relation!r}; "
                "every Σ_RS relation must occur"
            )
        atoms_per_relation[relation] = count
    j = max(atoms_per_relation.values())
    k = smallest_k(j, c)

    factors = []
    for relation in arena.rs_relations:
        edge = ConjunctiveQuery(
            [Atom(relation, (Variable(f"w_{relation}"), Variable(f"v_{relation}")))]
        )
        factors.append((edge, k))
    zeta_b = QueryProduct(factors)

    c1 = 1
    for relation in arena.rs_relations:
        c1 *= atoms_per_relation[relation] ** k

    return ZetaComponents(
        atoms_per_relation=atoms_per_relation,
        j=j,
        k=k,
        zeta_b=zeta_b,
        c1=c1,
    )
