"""Multiplication gadgets (Definition 3) and their composition (Lemma 4).

A pair of queries ``ρ_s, ρ_b`` *multiplies by* a rational ``q > 0`` when

* **(=)** some non-trivial database ``D`` has ``ρ_s(D) = q·ρ_b(D) ≠ 0``, and
* **(≤)** every non-trivial database ``D`` has ``ρ_s(D) ≤ q·ρ_b(D)``.

A :class:`MultiplicationGadget` packages the two queries, the claimed
ratio, and the equality witness; it can *certify* the (=) condition by
exact evaluation and *probe* the (≤) condition over any stream of
candidate databases.  Lemma 4 — gadgets over disjoint schemas compose
multiplicatively — is :func:`compose`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.errors import ReductionError
from repro.homomorphism.engine import count
from repro.queries.cq import ConjunctiveQuery
from repro.relational.operations import disjoint_union
from repro.relational.structure import Structure

__all__ = ["MultiplicationGadget", "compose"]


@dataclass(frozen=True)
class MultiplicationGadget:
    """Queries ``ρ_s``/``ρ_b`` claimed to multiply by ``ratio``."""

    query_s: ConjunctiveQuery
    query_b: ConjunctiveQuery
    ratio: Fraction
    witness: Structure

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise ReductionError(f"ratio must be positive, got {self.ratio}")

    # -- Definition 3 (=) ------------------------------------------------

    def verify_equality(self) -> bool:
        """Check condition (=) on the packaged witness, exactly.

        Requires the witness to be non-trivial and
        ``ρ_s(D) = q·ρ_b(D) ≠ 0``.
        """
        if not self.witness.is_nontrivial():
            return False
        value_s = count(self.query_s, self.witness)
        value_b = count(self.query_b, self.witness)
        if value_s == 0:
            return False
        return Fraction(value_s) == self.ratio * value_b

    def witness_counts(self) -> tuple[int, int]:
        """``(ρ_s(witness), ρ_b(witness))`` for reporting."""
        return count(self.query_s, self.witness), count(self.query_b, self.witness)

    # -- Definition 3 (≤) -------------------------------------------------

    def upper_bound_violation(
        self, candidates: Iterable[Structure]
    ) -> Structure | None:
        """First non-trivial candidate with ``ρ_s(D) > q·ρ_b(D)``, if any.

        A ``None`` result does not *prove* (≤) — the condition quantifies
        over all databases — but the paper's proofs are finite combinatorial
        arguments, and the experiment suite checks exhaustively generated
        small structures plus randomized ones.
        """
        for candidate in candidates:
            if not candidate.is_nontrivial():
                continue
            value_s = count(self.query_s, candidate)
            value_b = count(self.query_b, candidate)
            if Fraction(value_s) > self.ratio * value_b:
                return candidate
        return None

    # -- metadata -------------------------------------------------------------

    @property
    def inequality_counts(self) -> tuple[int, int]:
        """``(#inequalities in ρ_s, #inequalities in ρ_b)``."""
        return self.query_s.inequality_count, self.query_b.inequality_count

    def __str__(self) -> str:
        return (
            f"MultiplicationGadget(ratio={self.ratio}, "
            f"|rho_s|={self.query_s.atom_count} atoms, "
            f"|rho_b|={self.query_b.atom_count} atoms, "
            f"inequalities={self.inequality_counts})"
        )


def compose(
    first: MultiplicationGadget, second: MultiplicationGadget
) -> MultiplicationGadget:
    """Lemma 4: gadgets over disjoint schemas multiply their ratios.

    ``(ρ_s ∧̄ ρ'_s, ρ_b ∧̄ ρ'_b)`` multiplies by ``q·q'``; the combined
    witness is the union of the two witnesses (sharing only the
    non-triviality constants), on which both factors attain equality.
    """
    schema_one = first.query_s.schema.union(first.query_b.schema)
    schema_two = second.query_s.schema.union(second.query_b.schema)
    if not schema_one.is_disjoint_from(schema_two):
        shared = set(schema_one.relation_names) & set(schema_two.relation_names)
        raise ReductionError(
            f"Lemma 4 requires disjoint schemas; shared relations: {sorted(shared)}"
        )
    return MultiplicationGadget(
        query_s=first.query_s.disjoint_conj(second.query_s),
        query_b=first.query_b.disjoint_conj(second.query_b),
        ratio=first.ratio * second.ratio,
        witness=disjoint_union(first.witness, second.witness),
    )
