"""The polynomial-encoding queries ``π_s`` and ``π_b`` (Section 4.3).

Both queries are stars centred at the variable ``x``.  For each monomial
``T_m`` there is an ``S_m``-loop at ``x`` and an ``S_m``-ray whose length
encodes the monomial's coefficient; for each degree position ``d`` there is
a length-two ray ``R_d(x, y_d) ∧ X(y_d, z_d)`` whose ``X``-edge picks up
the valuation.  ``π_b`` carries ``d`` additional rays through ``R_1``,
which contribute the factor ``Ξ(x₁)^d`` (Lemma 15).

**Ray length.** The displayed formula in Section 4.3 draws the ``S_m``-ray
with ``c`` edges, but Appendix A's homomorphism count — ``c_{s,m}`` images
per ray, "the edge mapped to ``S_m(a_m,a)`` can be chosen in ``c_{s,m}−1``
ways" plus the all-loop image — requires ``c − 1`` edges.  We implement
``c − 1`` edges (a coefficient-1 ray is just the loop), which makes
Lemma 15 an exact identity; experiment E5 verifies it numerically.

Lemma 12 (``π_s(D) ≤ π_b(D)`` for *every* D) is witnessed by the explicit
onto homomorphism :func:`lemma12_homomorphism`.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ReductionError
from repro.polynomials.lemma11 import Lemma11Instance
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Term, Variable

__all__ = [
    "CENTER",
    "build_pi_s",
    "build_pi_b",
    "lemma12_homomorphism",
    "s_relation",
    "r_relation",
    "X_RELATION",
]

#: The centre variable of both stars.
CENTER = Variable("x")

#: Name of the valuation relation (the only relation outside Σ₀).
X_RELATION = "X"


def s_relation(m: int) -> str:
    """The relation ``S_m`` attached to monomial ``T_m`` (1-based)."""
    return f"S_{m}"


def r_relation(d: int) -> str:
    """The relation ``R_d`` attached to degree position ``d`` (1-based)."""
    return f"R_{d}"


def _ray_variable(m: int, k: int) -> Variable:
    return Variable(f"xr_{m}_{k}")


def _ray_atoms(m: int, coefficient: int) -> list[Atom]:
    """The ``S_m``-loop at ``x`` plus a ray of ``coefficient − 1`` edges.

    Ray shape (for ``c ≥ 2``): ``x → xr_{c−1} → xr_{c−2} → … → xr_1``.
    In a correct database rooted at ``a_m`` this path has exactly ``c``
    homomorphic images (Appendix A, equation (***)).
    """
    relation = s_relation(m)
    atoms = [Atom(relation, (CENTER, CENTER))]
    if coefficient >= 2:
        atoms.append(Atom(relation, (CENTER, _ray_variable(m, coefficient - 1))))
        for k in range(coefficient - 2, 0, -1):
            atoms.append(
                Atom(relation, (_ray_variable(m, k + 1), _ray_variable(m, k)))
            )
    return atoms


def _valuation_rays(instance: Lemma11Instance) -> list[Atom]:
    atoms: list[Atom] = []
    for d in range(1, instance.d + 1):
        y = Variable(f"y_{d}")
        z = Variable(f"z_{d}")
        atoms.append(Atom(r_relation(d), (CENTER, y)))
        atoms.append(Atom(X_RELATION, (y, z)))
    return atoms


def build_pi_s(instance: Lemma11Instance) -> ConjunctiveQuery:
    """``π_s``: encodes ``P_s`` (Lemma 15, first identity)."""
    atoms: list[Atom] = []
    for m, coefficient in enumerate(instance.s_coefficients, start=1):
        atoms.extend(_ray_atoms(m, coefficient))
    atoms.extend(_valuation_rays(instance))
    return ConjunctiveQuery(atoms)


def build_pi_b(instance: Lemma11Instance) -> ConjunctiveQuery:
    """``π_b``: encodes ``x₁^d · P_b`` (Lemma 15, second identity).

    Besides the ``S_m``-rays for the (larger) ``P_b`` coefficients it has
    ``d`` extra rays ``R_1(x, y'_d) ∧ X(y'_d, z'_d)``; since ``x₁`` is the
    first variable of every monomial, in a correct database these all pass
    through ``b₁`` and contribute ``Ξ(x₁)^d``.
    """
    atoms: list[Atom] = []
    for m, coefficient in enumerate(instance.b_coefficients, start=1):
        atoms.extend(_ray_atoms(m, coefficient))
    atoms.extend(_valuation_rays(instance))
    for d in range(1, instance.d + 1):
        y = Variable(f"yp_{d}")
        z = Variable(f"zp_{d}")
        atoms.append(Atom(r_relation(1), (CENTER, y)))
        atoms.append(Atom(X_RELATION, (y, z)))
    return ConjunctiveQuery(atoms)


def lemma12_homomorphism(instance: Lemma11Instance) -> Mapping[Variable, Term]:
    """The onto query homomorphism ``π_b → π_s`` from the proof of Lemma 12.

    Identity on the shared variables; the surplus ray variables collapse to
    the centre ``x`` (absorbed by the ``S_m``-loops — the only place the
    paper uses ``c_{s,m} ≤ c_{b,m}``), and the primed rays fold onto
    ``(y₁, z₁)``.  Its existence implies ``π_s(D) ≤ π_b(D)`` for every
    database ``D``.
    """
    pi_b = build_pi_b(instance)
    pi_s = build_pi_s(instance)
    shared = pi_s.variables
    mapping: dict[Variable, Term] = {}
    for variable in pi_b.variables:
        if variable in shared:
            mapping[variable] = variable
        elif variable.name.startswith("xr_"):
            mapping[variable] = CENTER
        elif variable.name.startswith("yp_"):
            mapping[variable] = Variable("y_1")
        elif variable.name.startswith("zp_"):
            mapping[variable] = Variable("z_1")
        else:
            raise ReductionError(
                f"unexpected variable {variable} in pi_b"
            )
    return mapping
