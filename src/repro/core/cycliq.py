"""CYCLIQ queries and the combinatorics of cycliques (Section 3.1).

For a relation symbol ``R`` of arity ``p ≥ 3`` the query
``CYCLIQ(x₁,…,x_p)`` is the conjunction of all ``p`` cyclic rotations of
``R(x₁,…,x_p)``.  A tuple of elements satisfying it is a *cyclique*
(Definition 6); cycliques are grouped into *cyclasses* by the cyclic-shift
equivalence ``≈`` and classified (Definition 7) as

* **homogeneous** — the cyclass is a singleton (e.g. constant tuples),
* **degenerate** — non-homogeneous with ``|cyclass| < p`` (Lemma 8 then
  forces ``|cyclass| ≤ p/2``),
* **normal** — a full orbit of size ``p``.

The ``CYCLIQ_U`` variant (Section 3.2) additionally demands a unary
predicate ``U`` on every member of the tuple.
"""

from __future__ import annotations

from enum import Enum
from typing import Hashable, Iterable, Sequence

from repro.errors import QueryError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Term
from repro.relational.structure import Structure

__all__ = [
    "cycliq",
    "cycliq_u",
    "CycliqueKind",
    "rotations",
    "cyclic_shift",
    "cyclass",
    "is_cyclique",
    "all_cycliques",
    "classify_cyclique",
]

Element = Hashable


def _check_terms(terms: Sequence[Term], minimum: int) -> tuple[Term, ...]:
    terms = tuple(terms)
    if len(terms) < minimum:
        raise QueryError(
            f"CYCLIQ needs arity >= {minimum}, got {len(terms)} terms"
        )
    return terms


def cycliq(relation: str, terms: Sequence[Term]) -> ConjunctiveQuery:
    """``CYCLIQ(t₁,…,t_p)``: all ``p`` cyclic rotations of ``R(t₁,…,t_p)``.

    The paper requires arity ``p ≥ 3``; we allow ``p ≥ 1`` (the degenerate
    sizes are occasionally convenient in tests) and leave the ``≥ 3``
    requirement to the gadget constructors.
    """
    terms = _check_terms(terms, 1)
    return ConjunctiveQuery(
        Atom(relation, rotation) for rotation in rotations(terms)
    )


def cycliq_u(
    relation: str, unary: str, terms: Sequence[Term]
) -> ConjunctiveQuery:
    """``CYCLIQ_U(t₁,…,t_m)``: the rotations of ``P`` plus ``U(tᵢ)`` for all i.

    Section 3.2's building block for the ``γ`` gadget.
    """
    terms = _check_terms(terms, 1)
    atoms = [Atom(relation, rotation) for rotation in rotations(terms)]
    atoms.extend(Atom(unary, (term,)) for term in terms)
    return ConjunctiveQuery(atoms)


def rotations(values: Sequence) -> list[tuple]:
    """All cyclic rotations of a tuple, starting with the tuple itself."""
    values = tuple(values)
    return [values[k:] + values[:k] for k in range(len(values))]


def cyclic_shift(values: Sequence, k: int) -> tuple:
    """The cyclic ``k``-shift of a tuple (Definition 6)."""
    values = tuple(values)
    if not values:
        return values
    k %= len(values)
    return values[k:] + values[:k]


def cyclass(values: Sequence) -> frozenset[tuple]:
    """The ``≈``-equivalence class of a tuple: the set of its rotations."""
    return frozenset(rotations(values))


def is_cyclique(
    structure: Structure,
    relation: str,
    values: Sequence[Element],
    unary: str | None = None,
) -> bool:
    """Is the tuple a cyclique of ``R`` in ``D`` (Definition 6)?

    With ``unary`` given, checks the ``CYCLIQ_U`` variant (every member of
    the tuple must additionally satisfy the unary predicate).
    """
    values = tuple(values)
    if not all(
        structure.has_fact(relation, rotation) for rotation in rotations(values)
    ):
        return False
    if unary is not None:
        return all(structure.has_fact(unary, (value,)) for value in values)
    return True


def all_cycliques(
    structure: Structure, relation: str, unary: str | None = None
) -> set[tuple]:
    """Every cyclique of ``R`` (optionally ``CYCLIQ_U``) in the structure.

    A tuple is a cyclique iff all its rotations are facts, so it suffices
    to filter the facts of ``R`` themselves.
    """
    return {
        values
        for values in structure.facts(relation)
        if is_cyclique(structure, relation, values, unary=unary)
    }


class CycliqueKind(Enum):
    """Definition 7's trichotomy of cycliques."""

    HOMOGENEOUS = "homogeneous"
    DEGENERATE = "degenerate"
    NORMAL = "normal"


def classify_cyclique(values: Sequence) -> CycliqueKind:
    """Classify a cyclique by the size of its cyclass (Definition 7).

    The classification is purely combinatorial (it does not look at the
    structure): homogeneous iff the orbit is a singleton, normal iff the
    orbit has full size ``p``, degenerate otherwise.
    """
    values = tuple(values)
    orbit_size = len(cyclass(values))
    if orbit_size == 1:
        return CycliqueKind.HOMOGENEOUS
    if orbit_size < len(values):
        return CycliqueKind.DEGENERATE
    return CycliqueKind.NORMAL


def partition_cyclasses(cycliques: Iterable[tuple]) -> list[frozenset[tuple]]:
    """Partition a set of cycliques into cyclasses."""
    remaining = set(cycliques)
    classes: list[frozenset[tuple]] = []
    while remaining:
        representative = next(iter(remaining))
        orbit = cyclass(representative) & remaining
        classes.append(frozenset(orbit))
        remaining -= orbit
    return sorted(classes, key=lambda cls: sorted(map(repr, cls)))
