"""Section 2.3: trading constants for free variables.

The paper's queries use constants (``♠``, ``♥``, the arena's ``a_m``,
``b_n``).  Section 2.3 observes that constants are inessential: reading a
tuple ``a`` of constants as a tuple of **free variables** instead, boolean
containment with constants coincides with answer-multiset containment of
the resulting open queries —

    ``φ_b`` contains ``φ_s``  iff  ``φ'_b`` contains ``φ'_s``

for any (sub)set of the shared constants, under either semantics.

This module implements the translation in both directions and the two
"ban" regimes the paper discusses:

* **soft ban** — every constant except ``♠``/``♥`` is freed (Theorems 1
  and 3 "survive almost intact");
* **hard ban** — ``♠``/``♥`` are freed too, and the s-query gains the
  inequality ``♠ ≠ ♥`` to re-express non-triviality (Theorem 3 survives
  with that one extra inequality).
"""

from __future__ import annotations

from repro.naming import HEART, NameSupply, SPADE
from repro.queries.atoms import Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.open_query import OpenQuery
from repro.queries.terms import Constant, Term, Variable

__all__ = [
    "free_constants",
    "soft_ban",
    "hard_ban",
]


def free_constants(
    query: ConjunctiveQuery,
    names: tuple[str, ...] | None = None,
) -> OpenQuery:
    """Turn (some) constants into free variables (Section 2.3).

    ``names`` selects which constants to free (default: all of them, in
    sorted order).  The freed variables form the head of the resulting
    open query, one per distinct constant, ordered by constant name — so
    two queries freed with the same ``names`` stay comparable as answer
    multisets.
    """
    present = sorted(constant.name for constant in query.constants)
    to_free = list(names) if names is not None else present
    supply = NameSupply({v.name for v in query.variables})
    mapping: dict[Constant, Variable] = {}
    head: list[Variable] = []
    for name in to_free:
        variable = Variable(supply.fresh(f"free_{name}"))
        mapping[Constant(name)] = variable
        head.append(variable)

    def image(term: Term) -> Term:
        if isinstance(term, Constant) and term in mapping:
            return mapping[term]
        return term

    atoms = [
        atom.__class__(
            atom.relation, tuple(image(term) for term in atom.terms)
        )
        for atom in query.atoms
    ]
    inequalities = [
        Inequality(image(ineq.left), image(ineq.right))
        for ineq in query.inequalities
    ]
    body = ConjunctiveQuery(atoms, inequalities)
    head_present = [v for c, v in sorted(mapping.items(), key=lambda kv: kv[0].name) if v in body.variables]
    return OpenQuery(body, head_present)


def soft_ban(query: ConjunctiveQuery) -> OpenQuery:
    """Free every constant except the non-triviality pair ``♠``/``♥``."""
    names = tuple(
        sorted(
            constant.name
            for constant in query.constants
            if constant.name not in (SPADE, HEART)
        )
    )
    return free_constants(query, names)


def hard_ban(
    query: ConjunctiveQuery, add_nontriviality_inequality: bool = False
) -> OpenQuery:
    """Free every constant; optionally add ``♠ ≠ ♥`` (the s-query fix).

    Per Section 2.3, under the hard ban Theorem 3 survives "with the
    additional inequality ``♠ ≠ ♥`` in the s-query": with the constants
    gone, non-triviality must be demanded by the query itself.
    """
    freed = free_constants(query)
    if not add_nontriviality_inequality:
        return freed
    head_by_origin = dict(zip(
        sorted(constant.name for constant in query.constants),
        freed.head,
    ))
    spade = head_by_origin.get(SPADE)
    heart = head_by_origin.get(HEART)
    if spade is None or heart is None:
        return freed
    body = ConjunctiveQuery(
        freed.body.atoms,
        tuple(freed.body.inequalities) + (Inequality(spade, heart),),
    )
    return OpenQuery(body, freed.head)
