"""The Theorem 3 reduction: undecidability with a single inequality.

Section 3 shows how to trade the multiplicative constant ``ℂ`` of
Theorem 1 for one inequality: take ``α_s, α_b`` multiplying by ``ℂ``
(:func:`repro.core.alpha.alpha_gadget`) over a schema disjoint from the
Theorem 1 output and set

``ψ_s = α_s ∧̄ φ_s``    (no inequalities),
``ψ_b = α_b ∧̄ φ_b``    (exactly **one** inequality).

Then ``∃ non-trivial D: ℂ·φ_s(D) > φ_b(D)`` iff
``∃ non-trivial D: ψ_s(D) > ψ_b(D)``; the forward direction is
constructive — ``D = D₁ ∪ D₂`` where ``D₂`` is the gadget's equality
witness — and is verified by exact counting here.

The gadget's arity grows linearly with ``ℂ`` (``p = 2ℂ−1``), so the
materialized reduction is practical only for small ``ℂ``; that suffices to
*run* the construction (the undecidability statement of course needs
arbitrary instances, which stay representable in factorized form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.alpha import alpha_gadget
from repro.core.multiplication import MultiplicationGadget
from repro.core.theorem1 import Theorem1Reduction, theorem1_reduction
from repro.errors import ReductionError
from repro.homomorphism.engine import count
from repro.polynomials.lemma11 import Lemma11Instance
from repro.queries.product import QueryProduct
from repro.relational.operations import disjoint_union
from repro.relational.structure import Structure

__all__ = ["Theorem3Reduction", "theorem3_reduction"]

#: Refuse to build gadgets with relation arity beyond this bound.
DEFAULT_ARITY_BUDGET = 2_000


@dataclass(frozen=True)
class Theorem3Reduction:
    """The output pair ``(ψ_s, ψ_b)`` plus the Theorem 1 ingredients."""

    theorem1: Theorem1Reduction
    gadget: MultiplicationGadget
    psi_s: QueryProduct
    psi_b: QueryProduct

    @property
    def instance(self) -> Lemma11Instance:
        return self.theorem1.instance

    @property
    def inequality_counts(self) -> tuple[int, int]:
        """``(#inequalities in ψ_s, #inequalities in ψ_b)`` — ``(0, 1)``."""
        return (
            self.psi_s.total_inequality_count,
            self.psi_b.total_inequality_count,
        )

    def lhs(self, structure: Structure) -> int:
        return count(self.psi_s, structure)

    def rhs(self, structure: Structure) -> int:
        return count(self.psi_b, structure)

    def holds_on(self, structure: Structure) -> bool:
        """Does ``ψ_s(D) ≤ ψ_b(D)`` hold for this database?"""
        return self.lhs(structure) <= self.rhs(structure)

    def counterexample_from_valuation(
        self, valuation: Mapping[int, int]
    ) -> Structure:
        """``D = D₁ ∪ D₂`` per the (i) ⇒ (ii) direction of Section 3.

        ``D₁`` is the correct database of a violating valuation, ``D₂`` the
        gadget's equality witness.  The result is verified to satisfy
        ``ψ_s(D) > ψ_b(D)`` by exact counting.
        """
        d1 = self.theorem1.counterexample_from_valuation(valuation)
        d2 = self.gadget.witness
        combined = disjoint_union(d1, d2)
        if self.holds_on(combined):
            raise ReductionError(
                "internal error: the combined database does not violate "
                "ψ_s ≤ ψ_b"
            )
        return combined

    def find_counterexample(self, max_value: int) -> Structure | None:
        """Grid-search valuations for a verified ``ψ_s(D) > ψ_b(D)`` witness."""
        violation = self.instance.find_counterexample(max_value)
        if violation is None:
            return None
        return self.counterexample_from_valuation(violation)


def theorem3_reduction(
    instance: Lemma11Instance,
    arity_budget: int = DEFAULT_ARITY_BUDGET,
) -> Theorem3Reduction:
    """Build ``(ψ_s, ψ_b)`` from a Lemma 11 instance.

    The alpha gadget needs a relation of arity ``2ℂ−1``; instances whose
    ``ℂ`` exceeds ``arity_budget`` are rejected (raise
    :class:`~repro.errors.ReductionError`) rather than silently exploding.
    """
    theorem1 = theorem1_reduction(instance)
    big_c = theorem1.big_c
    if 2 * big_c - 1 > arity_budget:
        raise ReductionError(
            f"the alpha gadget for ℂ = {big_c} needs relation arity "
            f"{2 * big_c - 1}, beyond the budget of {arity_budget}; "
            "use a smaller Lemma 11 instance for a materialized run"
        )
    gadget = alpha_gadget(big_c, name_suffix="_t3")
    psi_s = QueryProduct.of(gadget.query_s).disjoint_conj(theorem1.phi_s)
    psi_b = QueryProduct.of(gadget.query_b).disjoint_conj(theorem1.phi_b)
    return Theorem3Reduction(
        theorem1=theorem1,
        gadget=gadget,
        psi_s=psi_s,
        psi_b=psi_b,
    )
