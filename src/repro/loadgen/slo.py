"""Service-level objectives over recorded load runs, and the CI gate.

Two distinct checks, deliberately separate:

* :func:`evaluate_slo` judges one run against *absolute* declared
  objectives (p95 ceiling, minimum throughput, shed-rate ceiling) — the
  contract a deployment promises, independent of any baseline.
* :func:`check_regression` judges a fresh run against the *checked-in
  baseline* (``benchmarks/BENCH_load.json``) with generous ratios, so CI
  fails on a real regression but not on runner jitter: latency may grow
  by ``p95_ratio`` (and is ignored entirely below ``p95_floor_ms`` —
  sub-floor numbers are scheduler noise), throughput may drop to
  ``throughput_ratio`` of baseline, shed rate may rise by ``shed_slack``.

Both return a list of human-readable violation strings — empty means
pass — so the CLI/CI layer only has to print and exit non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DEFAULT_SLOS",
    "ScenarioSLO",
    "check_regression",
    "evaluate_slo",
]


@dataclass(frozen=True)
class ScenarioSLO:
    """Absolute objectives one scenario must meet."""

    scenario: str
    #: Ceiling on server-side p95 end-to-end latency.
    p95_ms_max: float
    #: Floor on completed requests per wall second.
    throughput_rps_min: float
    #: Ceiling on the shed fraction (``shed / requests``).
    shed_rate_max: float

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "p95_ms_max": self.p95_ms_max,
            "throughput_rps_min": self.throughput_rps_min,
            "shed_rate_max": self.shed_rate_max,
        }


#: Deliberately loose defaults: they catch order-of-magnitude breakage
#: (a lost cache, an accidental O(n²) in the hot path, runaway shedding)
#: on any development machine, while the *regression* check against the
#: checked-in baseline does the fine-grained guarding.
DEFAULT_SLOS = {
    slo.scenario: slo
    for slo in (
        ScenarioSLO("zipf-duplicates", p95_ms_max=2_000.0,
                    throughput_rps_min=5.0, shed_rate_max=0.05),
        ScenarioSLO("multi-tenant", p95_ms_max=2_000.0,
                    throughput_rps_min=5.0, shed_rate_max=0.05),
        ScenarioSLO("adversarial-tail", p95_ms_max=10_000.0,
                    throughput_rps_min=2.0, shed_rate_max=0.10),
        # The deadline scenario sheds nothing but *must* time some
        # requests out; its throughput floor is low because 504s do not
        # count as completed.
        ScenarioSLO("deadline-spread", p95_ms_max=5_000.0,
                    throughput_rps_min=1.0, shed_rate_max=0.05),
        # Containment verdicts are cached and duplicate-heavy, so the
        # scenario should sustain evaluate-class throughput.
        ScenarioSLO("contain", p95_ms_max=2_000.0,
                    throughput_rps_min=5.0, shed_rate_max=0.05),
    )
}


def evaluate_slo(row: dict, slo: ScenarioSLO) -> list[str]:
    """Violations of the absolute objectives in one recorded row."""
    violations: list[str] = []
    p95 = row.get("p95_ms")
    if p95 is None:
        # A run that recorded no latency at all must not pass a latency
        # objective by omission.
        violations.append(f"{slo.scenario}: no p95 recorded")
    elif p95 > slo.p95_ms_max:
        violations.append(
            f"{slo.scenario}: p95 {p95:.1f} ms exceeds SLO "
            f"{slo.p95_ms_max:.1f} ms"
        )
    throughput = row.get("throughput_rps", 0.0)
    if throughput < slo.throughput_rps_min:
        violations.append(
            f"{slo.scenario}: throughput {throughput:.2f} rps below SLO "
            f"{slo.throughput_rps_min:.2f} rps"
        )
    shed_rate = row.get("shed_rate", 0.0)
    if shed_rate > slo.shed_rate_max:
        violations.append(
            f"{slo.scenario}: shed rate {shed_rate:.2%} exceeds SLO "
            f"{slo.shed_rate_max:.2%}"
        )
    return violations


def check_regression(
    current: dict,
    baseline: dict,
    p95_ratio: float = 1.5,
    throughput_ratio: float = 0.6,
    shed_slack: float = 0.10,
    p95_floor_ms: float = 5.0,
) -> list[str]:
    """Violations of ``current`` against the checked-in ``baseline``.

    Both arguments are BENCH_load-shaped documents
    (``{"scenarios": [row, ...]}``).  Scenarios present only on one side
    are reported: a vanished scenario silently exempts itself from the
    gate otherwise.
    """
    for label, value in (
        ("p95_ratio", p95_ratio),
        ("throughput_ratio", throughput_ratio),
    ):
        if value <= 0:
            raise ValueError(f"{label} must be positive, got {value}")
    current_rows = {row["scenario"]: row for row in current.get("scenarios", [])}
    baseline_rows = {
        row["scenario"]: row for row in baseline.get("scenarios", [])
    }
    violations: list[str] = []
    for name in sorted(set(baseline_rows) - set(current_rows)):
        violations.append(f"{name}: present in baseline but not in this run")
    for name in sorted(set(current_rows) - set(baseline_rows)):
        violations.append(f"{name}: present in this run but not in baseline")
    for name in sorted(set(current_rows) & set(baseline_rows)):
        row, base = current_rows[name], baseline_rows[name]
        p95, base_p95 = row.get("p95_ms"), base.get("p95_ms")
        if (
            p95 is not None
            and base_p95 is not None
            and p95 > p95_floor_ms
            and p95 > base_p95 * p95_ratio
        ):
            violations.append(
                f"{name}: p95 {p95:.1f} ms > {p95_ratio:.1f}x baseline "
                f"{base_p95:.1f} ms"
            )
        throughput = row.get("throughput_rps", 0.0)
        base_throughput = base.get("throughput_rps", 0.0)
        if base_throughput > 0 and throughput < base_throughput * throughput_ratio:
            violations.append(
                f"{name}: throughput {throughput:.2f} rps < "
                f"{throughput_ratio:.0%} of baseline {base_throughput:.2f} rps"
            )
        shed_rate = row.get("shed_rate", 0.0)
        base_shed = base.get("shed_rate", 0.0)
        if shed_rate > base_shed + shed_slack:
            violations.append(
                f"{name}: shed rate {shed_rate:.2%} > baseline "
                f"{base_shed:.2%} + {shed_slack:.0%} slack"
            )
    return violations
