"""Fitting the planner's cost scales from measured evaluations.

The cost model compares engines in abstract "fact visits"; what ``auto``
actually needs is for ``scale_e × visits_e`` to rank engines by wall
time.  This module measures that mapping on the seeded case stream the
fuzzer and load generator already share: every cq case is evaluated by
*every* safe engine (forced, not planned), pairing the engine's
structural visit estimate with its measured seconds, and
:func:`repro.planner.fit_constants` turns the samples into per-engine
scales (ratio of totals, normalized to the backtracking engine).

Determinism: the *samples'* visit sides and the case stream are pure
functions of the seed; the seconds are machine-dependent, which is the
point — ``bagcq calibrate`` fits constants for the machine it runs on.
The round-trip guarantee tested in ``tests/test_calibrate.py`` is that a
fitted :class:`~repro.planner.CostConstants` survives
``to_dict → JSON → from_dict`` bit-for-bit and that plan selection under
the reloaded constants equals selection under the fitted ones.
"""

from __future__ import annotations

import time

from repro.homomorphism.engine import count
from repro.planner import CostConstants, analyze_component, fit_constants
from repro.planner.cost import eligible_engines, estimate_visits
from repro.qa.generators import case_at

__all__ = ["calibrate", "collect_samples"]


def collect_samples(
    case_count: int = 40, seed: int = 0, repeat: int = 3
) -> list[tuple[str, float, float]]:
    """``(engine, visits, seconds)`` samples over the seeded case stream.

    Each case contributes one sample per engine that is safe for *every*
    connected component (a forced engine runs whole-query).  ``repeat``
    evaluations amortize timer granularity; visits are per single
    evaluation, so seconds are divided back down.
    """
    if case_count < 1:
        raise ValueError(f"case_count must be >= 1, got {case_count}")
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    samples: list[tuple[str, float, float]] = []
    index = 0
    collected = 0
    while collected < case_count:
        case = case_at(index, seed)
        index += 1
        if case.kind != "cq" or case.query is None or case.structure is None:
            continue
        collected += 1
        components = case.query.connected_components()
        profiles = [
            analyze_component(component) for component in components
        ]
        safe: set[str] | None = None
        for component, profile in zip(components, profiles):
            engines = set(
                eligible_engines(component, profile, case.structure)
            )
            safe = engines if safe is None else safe & engines
        for engine in sorted(safe or ()):
            visits = sum(
                estimate_visits(engine, profile, case.structure)
                for profile in profiles
            )
            started = time.perf_counter()
            for _ in range(repeat):
                count(case.query, case.structure, engine=engine)
            seconds = (time.perf_counter() - started) / repeat
            samples.append((engine, visits, seconds))
    return samples


def calibrate(
    case_count: int = 40,
    seed: int = 0,
    repeat: int = 3,
    base: CostConstants | None = None,
) -> CostConstants:
    """Fitted cost constants for this machine (scales only; shapes kept)."""
    return fit_constants(collect_samples(case_count, seed, repeat), base)
