"""``repro.loadgen`` — seeded traffic replay against a live ``bagcq serve``.

The serving layer's behaviors worth measuring — coalescing under
duplicate-heavy traffic, shedding under overload, deadline enforcement
under adversarial tails — only show up under *traffic shapes*, not under
single requests.  This package generates those shapes deterministically
and measures the server's response:

* ``scenarios.py`` — five named, seeded scenarios built on the fuzzing
  corpus (:func:`repro.qa.generators.case_at`): ``zipf-duplicates``
  (rank-weighted duplicate queries → coalescing + cache), ``multi-tenant``
  (interleaved per-tenant pools), ``adversarial-tail`` (cheap traffic
  with a CYCLIQ/gadget-heavy tail), ``deadline-spread`` (deadlines from
  1 ms to 30 s → a deterministic mix of 200s and 504s), ``contain``
  (duplicate-heavy set-semantics containment pairs → ContainmentCache).
* ``runner.py`` — closed-loop threaded replay through
  :class:`~repro.service.ServiceClient`; per-scenario p50/p95/p99 come
  from *server-side* histogram deltas (``/metrics`` before/after), so
  results are attributable even on a shared server.
* ``slo.py`` — declared objectives per scenario plus the regression
  check the CI gate runs against the checked-in ``BENCH_load.json``.
* ``calibrate.py`` — fits the planner's per-engine cost scales
  (:func:`repro.planner.fit_constants`) from measured wall time on the
  same seeded case stream.

CLI: ``bagcq loadgen`` replays scenarios, ``bagcq slo`` checks a run
against the objectives/baseline, ``bagcq calibrate`` fits and prints
cost constants.  Experiment E18 (``benchmarks/test_bench_e18_load.py``)
records the checked-in baseline.
"""

from repro.loadgen.calibrate import calibrate, collect_samples
from repro.loadgen.runner import RequestOutcome, ScenarioResult, run_scenario
from repro.loadgen.scenarios import (
    SCENARIO_NAMES,
    ScheduledRequest,
    Scenario,
    build_scenario,
)
from repro.loadgen.slo import (
    DEFAULT_SLOS,
    ScenarioSLO,
    check_regression,
    evaluate_slo,
)

__all__ = [
    "DEFAULT_SLOS",
    "RequestOutcome",
    "SCENARIO_NAMES",
    "Scenario",
    "ScenarioResult",
    "ScenarioSLO",
    "ScheduledRequest",
    "build_scenario",
    "calibrate",
    "check_regression",
    "collect_samples",
    "evaluate_slo",
    "run_scenario",
]
