"""Named, seeded traffic scenarios: pure functions of ``(name, seed)``.

Every scenario is a tuple of :class:`ScheduledRequest` values built from
the fuzzing corpus's pure per-index generator
(:func:`repro.qa.generators.case_at`), so a scenario replays bit-for-bit
from its seed — the same property the qa corpus relies on, reused here
for load.  No wall-clock offsets: replay is *closed-loop* (each worker
sends its next request when the previous one answers), which keeps
results machine-speed-relative instead of schedule-relative and needs no
timer coordination across workers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.alpha import alpha_gadget
from repro.core.cycliq import cycliq
from repro.qa.generators import FuzzCase, case_at
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.relational.structure import Structure

__all__ = [
    "SCENARIO_NAMES",
    "Scenario",
    "ScheduledRequest",
    "build_scenario",
]


@dataclass(frozen=True)
class ScheduledRequest:
    """One request of a scenario: payload, owner, and deadline."""

    index: int
    tenant: int
    kind: str  # "cq" | "ucq" | "contain"
    #: The evaluation database; ``None`` for containment requests,
    #: which are pure query-vs-query decisions.
    structure: Structure | None = None
    query: ConjunctiveQuery | None = None
    disjuncts: tuple[tuple[ConjunctiveQuery, int], ...] = ()
    #: Containment only: the bigger side (``query`` is the smaller side).
    against: ConjunctiveQuery | None = None
    deadline_ms: int | None = None


@dataclass(frozen=True)
class Scenario:
    """A named traffic shape: its workers and its full schedule."""

    name: str
    seed: int
    clients: int
    schedule: tuple[ScheduledRequest, ...]

    @property
    def requests(self) -> int:
        return len(self.schedule)


def _evaluable_cases(seed: int, count: int, start: int = 0) -> list[FuzzCase]:
    """The first ``count`` cq/ucq cases of the stream (gadget kind has no
    standalone structure, so it is skipped here and used explicitly by
    the adversarial scenario)."""
    cases: list[FuzzCase] = []
    index = start
    while len(cases) < count:
        case = case_at(index, seed)
        if case.kind in ("cq", "ucq"):
            cases.append(case)
        index += 1
    return cases


def _request_from_case(
    index: int, tenant: int, case: FuzzCase, deadline_ms: int | None = None
) -> ScheduledRequest:
    assert case.structure is not None
    if case.kind == "ucq":
        return ScheduledRequest(
            index=index,
            tenant=tenant,
            kind="ucq",
            structure=case.structure,
            disjuncts=case.disjuncts,
            deadline_ms=deadline_ms,
        )
    assert case.query is not None
    return ScheduledRequest(
        index=index,
        tenant=tenant,
        kind="cq",
        structure=case.structure,
        query=case.query,
        deadline_ms=deadline_ms,
    )


def _zipf_weights(size: int, exponent: float = 1.1) -> list[float]:
    return [1.0 / (rank**exponent) for rank in range(1, size + 1)]


def _zipf_duplicates(seed: int, requests: int, clients: int) -> Scenario:
    """A small pool sampled rank-weighted: most traffic hits few queries.

    The shape the count cache and single-flight coalescing exist for —
    expect high ``service.coalesced`` + cache hits, low p95.
    """
    rng = random.Random(seed)
    pool = _evaluable_cases(seed, 24)
    weights = _zipf_weights(len(pool))
    schedule = tuple(
        _request_from_case(index, tenant=index % clients, case=case)
        for index, case in enumerate(
            rng.choices(pool, weights=weights, k=requests)
        )
    )
    return Scenario("zipf-duplicates", seed, clients, schedule)


def _case_fingerprint(case: FuzzCase) -> str:
    if case.kind == "ucq":
        payload = " | ".join(
            f"{multiplicity}*{disjunct}" for disjunct, multiplicity in case.disjuncts
        )
    else:
        payload = str(case.query)
    return f"{case.kind}:{payload}"


def _multi_tenant(seed: int, requests: int, clients: int) -> Scenario:
    """Each tenant owns a disjoint pool; traffic interleaves round-robin.

    Tenants never share queries (colliding cases from the per-tenant
    streams are skipped), so coalescing cannot help across them — this
    measures fair progress under heterogeneous interleaving.
    """
    claimed: set[str] = set()
    pools: list[list[FuzzCase]] = []
    for tenant in range(clients):
        pool: list[FuzzCase] = []
        index = 0
        while len(pool) < 12:
            case = case_at(index, (seed << 8) ^ tenant)
            index += 1
            if case.kind not in ("cq", "ucq"):
                continue
            fingerprint = _case_fingerprint(case)
            if fingerprint in claimed:
                continue
            claimed.add(fingerprint)
            pool.append(case)
        pools.append(pool)
    rngs = [random.Random((seed << 16) ^ tenant) for tenant in range(clients)]
    schedule = tuple(
        _request_from_case(
            index,
            tenant=index % clients,
            case=rngs[index % clients].choice(pools[index % clients]),
        )
        for index in range(requests)
    )
    return Scenario("multi-tenant", seed, clients, schedule)


def _adversarial_tail(seed: int, requests: int, clients: int) -> Scenario:
    """Mostly cheap traffic with a deliberately heavy tail.

    Every 5th request is adversarial: a ternary CYCLIQ on a dense
    structure (cyclic, so the planner cannot use the acyclic engine) or
    an α-gadget pair evaluated on its own witness.  The tail is what
    stretches p95/p99 away from p50.
    """
    rng = random.Random(seed)
    cheap = _evaluable_cases(seed, 20)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    cyc = cycliq("T", (x, y, z))
    # A dense ternary structure: every T-tuple over a 4-element domain.
    domain = tuple(range(4))
    dense = Structure(
        cheap[0].structure.schema,
        {
            "T": {
                (a, b, c) for a in domain for b in domain for c in domain
            }
        },
        {},
        domain,
    )
    gadgets = [alpha_gadget(c) for c in (2, 3, 4)]
    schedule = []
    for index in range(requests):
        tenant = index % clients
        if index % 5 == 4:
            if (index // 5) % 2 == 0:
                schedule.append(
                    ScheduledRequest(
                        index=index,
                        tenant=tenant,
                        kind="cq",
                        structure=dense,
                        query=cyc,
                    )
                )
            else:
                gadget = gadgets[(index // 10) % len(gadgets)]
                schedule.append(
                    ScheduledRequest(
                        index=index,
                        tenant=tenant,
                        kind="cq",
                        structure=gadget.witness,
                        query=gadget.query_b,
                    )
                )
        else:
            schedule.append(
                _request_from_case(index, tenant, rng.choice(cheap))
            )
    return Scenario("adversarial-tail", seed, clients, tuple(schedule))


#: The deadline mix of the ``deadline-spread`` scenario, in ms.  The
#: 1 ms entry is effectively unmeetable for a cold evaluation — by
#: design, so the scenario always exercises the 504 path.
_DEADLINE_CHOICES_MS = (1, 10, 50, 200, 30_000)


def _deadline_spread(seed: int, requests: int, clients: int) -> Scenario:
    """The zipf pool replayed under a deterministic spread of deadlines."""
    rng = random.Random(seed)
    pool = _evaluable_cases(seed, 16)
    weights = _zipf_weights(len(pool))
    schedule = tuple(
        _request_from_case(
            index,
            tenant=index % clients,
            case=case,
            deadline_ms=_DEADLINE_CHOICES_MS[index % len(_DEADLINE_CHOICES_MS)],
        )
        for index, case in enumerate(
            rng.choices(pool, weights=weights, k=requests)
        )
    )
    return Scenario("deadline-spread", seed, clients, schedule)


def _contain(seed: int, requests: int, clients: int) -> Scenario:
    """Set-semantics containment traffic (``/contain``), duplicate-heavy.

    Pairs drawn zipf-weighted from a small pool of CQ sides: every 3rd
    pair is an identity (``q ⊆ q``, always positive, witness returned),
    the rest are cross pairs whose verdict the Chandra–Merlin engine
    decides.  Duplicates exercise the ContainmentCache and per-verdict
    single-flight exactly the way zipf-duplicates exercises the count
    cache.
    """
    rng = random.Random(seed)
    # Chandra-Merlin only decides inequality-free CQs, and a cross pair
    # may put one side's constants outside the other's canonical
    # structure — so the pool is constant- and inequality-free.
    pool = [
        case.query
        for case in _evaluable_cases(seed, 60)
        if case.kind == "cq"
        and not case.query.has_inequalities()
        and not case.query.constants
    ][:12]
    weights = _zipf_weights(len(pool))
    schedule = []
    for index in range(requests):
        phi_s = rng.choices(pool, weights=weights, k=1)[0]
        if index % 3 == 2:
            phi_b = phi_s
        else:
            phi_b = rng.choices(pool, weights=weights, k=1)[0]
        schedule.append(
            ScheduledRequest(
                index=index,
                tenant=index % clients,
                kind="contain",
                query=phi_s,
                against=phi_b,
            )
        )
    return Scenario("contain", seed, clients, tuple(schedule))


_BUILDERS = {
    "zipf-duplicates": _zipf_duplicates,
    "multi-tenant": _multi_tenant,
    "adversarial-tail": _adversarial_tail,
    "deadline-spread": _deadline_spread,
    "contain": _contain,
}

SCENARIO_NAMES = tuple(_BUILDERS)


def build_scenario(
    name: str, seed: int = 0, requests: int = 120, clients: int = 4
) -> Scenario:
    """The named scenario for ``seed`` — a pure function of its arguments."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIO_NAMES)}"
        )
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    return builder(seed, requests, clients)
