"""Closed-loop scenario replay against a live server, with attribution.

One worker thread per tenant, each with its own seeded
:class:`~repro.service.ServiceClient` (``retries=0`` — a shed request
must *count* as shed, not be retried into a success), sending its slice
of the schedule as fast as the server answers.  Latency percentiles come
from the **server's** per-endpoint ``service.request_ms.*`` histograms
(summed over the endpoints the scenario actually hits), as the delta
between a ``/metrics`` scrape before and after the run: bucket counts
subtract exactly (the histogram is a sum of per-observation increments),
so a scenario's percentiles are attributable even when the server is
shared or long-lived.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.obs.metrics import quantile_from_bucket_counts
from repro.service.client import (
    DeadlineExceeded,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.loadgen.scenarios import Scenario, ScheduledRequest

__all__ = ["RequestOutcome", "ScenarioResult", "run_scenario"]

#: Which server histogram a scheduled request's latency lands in.
_ENDPOINT_BY_KIND = {"cq": "evaluate", "ucq": "evaluate", "contain": "contain"}


@dataclass(frozen=True)
class RequestOutcome:
    """What one scheduled request came back as."""

    index: int
    tenant: int
    status: str  # "ok" | "shed" | "deadline_exceeded" | "error:<kind>"
    latency_s: float


@dataclass
class ScenarioResult:
    """One scenario's measured aggregate (the E18/BENCH_load row)."""

    scenario: str
    seed: int
    requests: int
    clients: int
    completed: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    errors: int = 0
    wall_s: float = 0.0
    throughput_rps: float = 0.0
    p50_ms: float | None = None
    p95_ms: float | None = None
    p99_ms: float | None = None
    outcomes: list[RequestOutcome] = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """The stable row shape checked into ``BENCH_load.json``."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "requests": self.requests,
            "clients": self.clients,
            "completed": self.completed,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "shed_rate": round(self.shed_rate, 4),
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
        }


def _histogram_buckets(
    metrics_body: dict, endpoints: tuple[str, ...]
) -> tuple[dict[str, int], float | None]:
    """Summed bucket counts (and overall ``max_ms``) of the request
    histograms for ``endpoints``.  Summing is exact: every endpoint
    histogram shares the fixed bucket boundaries."""
    buckets: dict[str, int] = {}
    max_ms: float | None = None
    for endpoint in endpoints:
        snapshot = metrics_body.get("metrics", {}).get(
            f"service.request_ms.{endpoint}"
        )
        if not isinstance(snapshot, dict) or snapshot.get("type") != "histogram":
            continue
        for key, value in (snapshot.get("buckets") or {}).items():
            buckets[str(key)] = buckets.get(str(key), 0) + int(value)
        observed = snapshot.get("max_ms")
        if observed is not None:
            max_ms = observed if max_ms is None else max(max_ms, observed)
    return buckets, max_ms


def _bucket_delta(
    before: dict[str, int], after: dict[str, int]
) -> dict[str, int]:
    return {
        key: after[key] - before.get(key, 0)
        for key in after
        if after[key] - before.get(key, 0) > 0
    }


def _send(client: ServiceClient, request: ScheduledRequest) -> str:
    try:
        if request.kind == "contain":
            client.contain(
                request.query,
                request.against,
                deadline_ms=request.deadline_ms,
            )
        elif request.kind == "ucq":
            client.evaluate_ucq(
                list(request.disjuncts),
                request.structure,
                deadline_ms=request.deadline_ms,
            )
        else:
            client.evaluate(
                request.query,
                request.structure,
                deadline_ms=request.deadline_ms,
            )
        return "ok"
    except ServiceUnavailable:
        return "shed"
    except DeadlineExceeded:
        return "deadline_exceeded"
    except ServiceError as error:
        return f"error:{error.kind}"


def run_scenario(
    scenario: Scenario,
    base_url: str,
    timeout_s: float = 120.0,
    keep_outcomes: bool = False,
) -> ScenarioResult:
    """Replay ``scenario`` against ``base_url`` and measure the response."""
    probe = ServiceClient(base_url, retries=0, timeout_s=timeout_s)
    endpoints = tuple(
        dict.fromkeys(
            _ENDPOINT_BY_KIND.get(request.kind, "evaluate")
            for request in scenario.schedule
        )
    )
    before, _ = _histogram_buckets(probe.metrics(), endpoints)

    slices: dict[int, list[ScheduledRequest]] = {}
    for request in scenario.schedule:
        slices.setdefault(request.tenant, []).append(request)

    outcomes: list[RequestOutcome] = []
    outcome_lock = threading.Lock()

    def worker(tenant: int, requests: list[ScheduledRequest]) -> None:
        # The scenario name goes into the id seed: otherwise two
        # scenarios replayed against one server would mint identical
        # request-id sequences and the server would count the later
        # scenario's requests as retries of the earlier one's.
        client = ServiceClient(
            base_url,
            retries=0,
            timeout_s=timeout_s,
            seed=(scenario.seed << 8)
            ^ tenant
            ^ zlib.crc32(scenario.name.encode("utf-8")),
        )
        local: list[RequestOutcome] = []
        for request in requests:
            started = time.perf_counter()
            status = _send(client, request)
            local.append(
                RequestOutcome(
                    index=request.index,
                    tenant=tenant,
                    status=status,
                    latency_s=time.perf_counter() - started,
                )
            )
        with outcome_lock:
            outcomes.extend(local)

    threads = [
        threading.Thread(
            target=worker,
            args=(tenant, requests),
            name=f"loadgen-{scenario.name}-{tenant}",
        )
        for tenant, requests in sorted(slices.items())
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = max(time.perf_counter() - started, 1e-9)

    after, max_ms = _histogram_buckets(probe.metrics(), endpoints)
    delta = _bucket_delta(before, after)

    result = ScenarioResult(
        scenario=scenario.name,
        seed=scenario.seed,
        requests=scenario.requests,
        clients=scenario.clients,
        wall_s=wall_s,
    )
    for outcome in outcomes:
        if outcome.status == "ok":
            result.completed += 1
        elif outcome.status == "shed":
            result.shed += 1
        elif outcome.status == "deadline_exceeded":
            result.deadline_exceeded += 1
        else:
            result.errors += 1
    result.throughput_rps = result.completed / wall_s
    result.p50_ms = quantile_from_bucket_counts(delta, 0.50, max_ms)
    result.p95_ms = quantile_from_bucket_counts(delta, 0.95, max_ms)
    result.p99_ms = quantile_from_bucket_counts(delta, 0.99, max_ms)
    if keep_outcomes:
        result.outcomes = sorted(outcomes, key=lambda o: o.index)
    return result
