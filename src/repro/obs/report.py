"""Rendering a registry + trace to human-readable text and stable JSON.

The JSON shape is stable by construction: metric names sorted, span
attributes key-sorted, timer fields fixed.  Two runs of the same
deterministic computation differ only in durations, so downstream diffing
of counter values works with ``jq 'del(.. | .duration_ms?, .total_ms?)'``
style filters.
"""

from __future__ import annotations

import json

from repro.obs.metrics import Registry
from repro.obs.trace import Trace

__all__ = ["report_data", "render_text", "render_json", "stable_json_dumps"]

SCHEMA_VERSION = 1


def report_data(registry: Registry, trace: Trace) -> dict:
    """The whole observation as plain data (JSON-serializable)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "metrics": registry.snapshot(),
        "trace": trace.snapshot(),
    }


def stable_json_dumps(data, indent: int | None = 2) -> str:
    """The library's one stable-JSON writer: sorted keys, ``str`` fallback.

    Observability reports, ``bagcq explain --json``, and the service's
    ``/metrics`` endpoint all serialize through here, so their outputs
    diff cleanly and a consumer never meets two serialization dialects.
    """
    return json.dumps(data, indent=indent, sort_keys=True, default=str)


def render_json(registry: Registry, trace: Trace, indent: int | None = 2) -> str:
    """Stable JSON: sorted keys throughout, deterministic field order."""
    return stable_json_dumps(report_data(registry, trace), indent=indent)


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    rendered = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return f"  [{rendered}]"


def _format_duration(duration_ms: float | None) -> str:
    if duration_ms is None:
        return "?"
    if duration_ms >= 1000:
        return f"{duration_ms / 1000:.2f} s"
    return f"{duration_ms:.1f} ms"


def _render_span_lines(snapshot: dict, depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    lines.append(
        f"{indent}{snapshot['name']:<{max(1, 40 - 2 * depth)}} "
        f"{_format_duration(snapshot['duration_ms']):>10}"
        f"{_format_attrs(snapshot['attrs'])}"
    )
    for child in snapshot["children"]:
        _render_span_lines(child, depth + 1, lines)


def _render_metric(name: str, snapshot: dict) -> str:
    kind = snapshot["type"]
    if kind == "counter":
        return f"  {name:<42} {snapshot['value']:>14}"
    if kind == "gauge":
        value, peak = snapshot["value"], snapshot["max"]
        suffix = "" if value == peak else f"  (max {peak})"
        return f"  {name:<42} {value!s:>14}{suffix}"
    if kind == "histogram":
        return (
            f"  {name:<42} {snapshot['count']:>6} obs"
            f"  p50 {_format_duration(snapshot['p50_ms'])}"
            f"  p95 {_format_duration(snapshot['p95_ms'])}"
            f"  p99 {_format_duration(snapshot['p99_ms'])}"
        )
    # timer
    return (
        f"  {name:<42} {snapshot['count']:>6} obs"
        f"  total {_format_duration(snapshot['total_ms'])}"
        f"  mean {_format_duration(snapshot['mean_ms'])}"
    )


def render_text(registry: Registry, trace: Trace) -> str:
    """A fixed-width console report: span tree first, then metrics."""
    lines: list[str] = ["== observability report " + "=" * 40]
    span_snapshots = trace.snapshot()
    if span_snapshots:
        lines.append("-- spans " + "-" * 55)
        for root in span_snapshots:
            _render_span_lines(root, 0, lines)
    metric_snapshots = registry.snapshot()
    if metric_snapshots:
        lines.append("-- metrics " + "-" * 53)
        for name, snapshot in metric_snapshots.items():
            lines.append(_render_metric(name, snapshot))
    if not span_snapshots and not metric_snapshots:
        lines.append("(nothing recorded)")
    return "\n".join(lines)
