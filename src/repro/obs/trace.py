"""Hierarchical spans: where did the wall time go?

A :func:`span` context manager opens a named node in a trace tree,
records wall time, and nests under the innermost enclosing span.  When no
trace is being collected (the default), :func:`span` yields a shared
no-op object and records nothing — the disabled cost is one context-var
read per ``with`` block, and spans are only placed around coarse units
(reduction steps, searches, CLI commands), never inner loops.

Attributes attach structured data to a span: sizes of constructed
gadgets, search verdicts, budgets.  Set them at open time
(``span("reduce.zeta", c=3)``) or on the yielded span object
(``sp.set(atoms=17)``) once the values are known.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = ["FlightRecorder", "Span", "Trace", "span", "active_trace"]


class Span:
    """One node of a trace tree."""

    __slots__ = ("name", "attrs", "start", "duration", "children")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = dict(attrs or {})
        self.start: float | None = None
        self.duration: float | None = None
        self.children: list[Span] = []

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    @property
    def duration_ms(self) -> float | None:
        return None if self.duration is None else self.duration * 1000.0

    def snapshot(self) -> dict:
        """A stable plain-data view of this span and its subtree."""
        return {
            "name": self.name,
            "duration_ms": self.duration_ms,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
            "children": [child.snapshot() for child in self.children],
        }

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, children={len(self.children)})"


class _NoopSpan:
    """Stand-in yielded when tracing is disabled; absorbs all writes."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


class Trace:
    """A forest of root spans collected within one ``observe()`` scope."""

    def __init__(self) -> None:
        self.roots: list[Span] = []

    def find(self, name: str) -> Span | None:
        for root in self.roots:
            if root.name == name:
                return root
            found = root.find(name)
            if found is not None:
                return found
        return None

    def snapshot(self) -> list[dict]:
        return [root.snapshot() for root in self.roots]


class FlightRecorder:
    """A bounded ring buffer of the most recent completed request traces.

    The serving layer records one plain-data entry per finished request
    (``{"trace_id", "request_id", "endpoint", "status", "spans": ...}``)
    and exposes the buffer at ``GET /traces``.  Bounded so a busy server
    never grows memory with traffic: once ``capacity`` entries are held,
    each record evicts the oldest.  Entries are snapshots (plain dicts),
    so nothing retains live :class:`Span` objects.  Thread-safe.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, entry: dict) -> None:
        with self._lock:
            self._recorded += 1
            self._entries.append(entry)

    @property
    def recorded(self) -> int:
        """Entries ever recorded (evicted ones included)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Entries evicted to honor the capacity bound."""
        with self._lock:
            return self._recorded - len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> list[dict]:
        """Held entries, oldest first (shallow copies of the dicts)."""
        with self._lock:
            return [dict(entry) for entry in self._entries]


_TRACE: ContextVar[Trace | None] = ContextVar("repro_obs_trace", default=None)
_CURRENT: ContextVar[Span | None] = ContextVar(
    "repro_obs_current_span", default=None
)


def active_trace() -> Trace | None:
    """The trace of the innermost enclosing ``observe()`` scope, if any."""
    return _TRACE.get()


@contextmanager
def span(name: str, **attrs) -> Iterator[Span | _NoopSpan]:
    """Open a named span under the current one; no-op when not tracing."""
    trace = _TRACE.get()
    if trace is None:
        yield _NOOP
        return
    node = Span(name, attrs)
    parent = _CURRENT.get()
    if parent is None:
        trace.roots.append(node)
    else:
        parent.children.append(node)
    token = _CURRENT.set(node)
    node.start = time.perf_counter()
    try:
        yield node
    finally:
        node.duration = time.perf_counter() - node.start
        _CURRENT.reset(token)


def _activate(trace: Trace):
    """Install ``trace`` for collection; returns the reset tokens."""
    return (_TRACE.set(trace), _CURRENT.set(None))


def _deactivate(tokens) -> None:
    trace_token, current_token = tokens
    _CURRENT.reset(current_token)
    _TRACE.reset(trace_token)
