"""``repro.obs`` — zero-dependency observability: counters, spans, reports.

Usage::

    from repro.obs import observe, span

    with observe() as obs:
        with span("my.workload", shape="star"):
            count(query, structure)
    print(obs.render_text())          # console report
    data = obs.report()               # plain dict, stable JSON shape

Everything is **off by default**: the instrumented hot paths check for an
active registry once per evaluation and fall back to no-ops, so library
users who never call :func:`observe` pay (measurably) nothing.  Scopes
nest — an inner ``observe()`` shadows the outer one, so a sub-experiment
can take an isolated measurement without polluting the enclosing run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.metrics import (
    HISTOGRAM_BOUNDARIES_S,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Timer,
    active_registry,
    quantile_from_bucket_counts,
)
from repro.obs.report import render_json, render_text, report_data
from repro.obs.trace import FlightRecorder, Span, Trace, active_trace, span

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HISTOGRAM_BOUNDARIES_S",
    "Histogram",
    "Observation",
    "Registry",
    "Span",
    "Timer",
    "Trace",
    "activate",
    "active_registry",
    "active_trace",
    "observe",
    "quantile_from_bucket_counts",
    "span",
]


class Observation:
    """One registry + one trace, collected over an ``observe()`` scope."""

    __slots__ = ("registry", "trace")

    def __init__(self) -> None:
        self.registry = Registry()
        self.trace = Trace()

    def report(self) -> dict:
        return report_data(self.registry, self.trace)

    def render_text(self) -> str:
        return render_text(self.registry, self.trace)

    def render_json(self, indent: int | None = 2) -> str:
        return render_json(self.registry, self.trace, indent=indent)


@contextmanager
def activate(registry: Registry) -> Iterator[Registry]:
    """Install ``registry`` as the active one for the ``with`` block.

    The metrics half of :func:`observe`, public on its own for long-lived
    components that own a registry and must bind it in *other* threads —
    context vars do not cross thread boundaries, so a worker pool
    activates its server's registry explicitly (see
    ``repro.service.server``).  Re-entrant and nestable: the inner scope
    shadows the outer and is restored on exit.
    """
    token = _metrics._activate(registry)
    try:
        yield registry
    finally:
        _metrics._deactivate(token)


@contextmanager
def observe() -> Iterator[Observation]:
    """Collect metrics and spans for the duration of the ``with`` block.

    Returns the :class:`Observation`, which stays readable after the
    block exits.  Nested calls create fresh, isolated scopes.
    """
    observation = Observation()
    with activate(observation.registry):
        trace_tokens = _trace._activate(observation.trace)
        try:
            yield observation
        finally:
            _trace._deactivate(trace_tokens)
