"""Counters, gauges, timers, and the context-scoped :class:`Registry`.

Design constraints (see ``docs/OBSERVABILITY.md``):

* **Zero dependencies** — standard library only.
* **Negligible overhead when disabled.**  The hot paths (the backtracking
  counter expands millions of nodes) check :func:`active_registry` *once*
  per evaluation, keep plain-``int`` local tallies while enabled, and
  flush them into registry metrics at the end.  When no registry is
  active the per-node cost is one attribute load and a ``None`` test.
* **Context-var scoping.**  The active registry lives in a
  :class:`contextvars.ContextVar`, so nested :func:`repro.obs.observe`
  scopes shadow each other instead of colliding, and concurrent threads /
  async tasks each see their own registry.
* **Thread safety.**  Metric *creation* is guarded by a registry lock;
  each metric guards its own mutation.  (Hot paths never contend: they
  mutate local ints and take the lock once per flush.)
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "Registry",
    "active_registry",
    "add",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A point-in-time value; remembers the last and the maximum seen."""

    __slots__ = ("name", "_value", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float | int | None = None
        self._max: float | int | None = None
        self._lock = threading.Lock()

    def set(self, value: float | int) -> None:
        with self._lock:
            self._value = value
            if self._max is None or value > self._max:
                self._max = value

    def set_max(self, value: float | int) -> None:
        """Record ``value`` only if it exceeds the current maximum."""
        with self._lock:
            if self._max is None or value > self._max:
                self._max = value
                self._value = value

    @property
    def value(self) -> float | int | None:
        return self._value

    @property
    def max(self) -> float | int | None:
        return self._max

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value, "max": self._max}


class Timer:
    """A duration histogram: count / total / min / max over observations.

    Durations are recorded in seconds (floats); reports render
    milliseconds.  Use :meth:`time` as a context manager or feed
    measured durations to :meth:`observe`.
    """

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"timer {self.name!r} observed a negative duration")
        with self._lock:
            self._count += 1
            self._total += seconds
            if self._min is None or seconds < self._min:
                self._min = seconds
            if self._max is None or seconds > self._max:
                self._max = seconds

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "timer",
            "count": self._count,
            "total_ms": self._total * 1000.0,
            "mean_ms": self.mean * 1000.0,
            "min_ms": None if self._min is None else self._min * 1000.0,
            "max_ms": None if self._max is None else self._max * 1000.0,
        }


#: Alias — a :class:`Timer` *is* the library's duration histogram.
Histogram = Timer


class Registry:
    """A thread-safe, get-or-create store of named metrics.

    Names are dotted strings (``"bt.memo_hits"``); the prefix groups
    metrics by subsystem in reports.  Requesting an existing name with a
    different metric kind raises ``ValueError`` — silent type punning
    would corrupt reports.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Timer] = {}

    def _get_or_create(self, name: str, kind: type):
        # Fast path: plain dict read (atomic under the GIL).
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(name)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Counter | Gauge | Timer]:
        return iter(list(self._metrics.values()))

    def get(self, name: str) -> Counter | Gauge | Timer | None:
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict]:
        """A stable (name-sorted) plain-data view of every metric."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }


_REGISTRY: ContextVar[Registry | None] = ContextVar(
    "repro_obs_registry", default=None
)


def active_registry() -> Registry | None:
    """The registry of the innermost enclosing ``observe()`` scope, if any."""
    return _REGISTRY.get()


def add(name: str, amount: int = 1) -> None:
    """Increment a counter in the active registry; no-op when disabled.

    Convenience for warm (not hot) paths: one context-var read per call.
    Hot loops should instead hold the registry once and tally locally.
    """
    registry = _REGISTRY.get()
    if registry is not None:
        registry.counter(name).inc(amount)


def _activate(registry: Registry):
    """Install ``registry`` as the active one; returns the reset token."""
    return _REGISTRY.set(registry)


def _deactivate(token) -> None:
    _REGISTRY.reset(token)
