"""Counters, gauges, timers, and the context-scoped :class:`Registry`.

Design constraints (see ``docs/OBSERVABILITY.md``):

* **Zero dependencies** — standard library only.
* **Negligible overhead when disabled.**  The hot paths (the backtracking
  counter expands millions of nodes) check :func:`active_registry` *once*
  per evaluation, keep plain-``int`` local tallies while enabled, and
  flush them into registry metrics at the end.  When no registry is
  active the per-node cost is one attribute load and a ``None`` test.
* **Context-var scoping.**  The active registry lives in a
  :class:`contextvars.ContextVar`, so nested :func:`repro.obs.observe`
  scopes shadow each other instead of colliding, and concurrent threads /
  async tasks each see their own registry.
* **Thread safety.**  Metric *creation* is guarded by a registry lock;
  each metric guards its own mutation.  (Hot paths never contend: they
  mutate local ints and take the lock once per flush.)
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from math import ceil
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "HISTOGRAM_BOUNDARIES_S",
    "Registry",
    "active_registry",
    "add",
    "quantile_from_bucket_counts",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A point-in-time value; remembers the last and the maximum seen."""

    __slots__ = ("name", "_value", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float | int | None = None
        self._max: float | int | None = None
        self._lock = threading.Lock()

    def set(self, value: float | int) -> None:
        with self._lock:
            self._value = value
            if self._max is None or value > self._max:
                self._max = value

    def set_max(self, value: float | int) -> None:
        """Record ``value`` only if it exceeds the current maximum."""
        with self._lock:
            if self._max is None or value > self._max:
                self._max = value
                self._value = value

    @property
    def value(self) -> float | int | None:
        return self._value

    @property
    def max(self) -> float | int | None:
        return self._max

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value, "max": self._max}


class Timer:
    """A duration histogram: count / total / min / max over observations.

    Durations are recorded in seconds (floats); reports render
    milliseconds.  Use :meth:`time` as a context manager or feed
    measured durations to :meth:`observe`.
    """

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"timer {self.name!r} observed a negative duration")
        with self._lock:
            self._count += 1
            self._total += seconds
            if self._min is None or seconds < self._min:
                self._min = seconds
            if self._max is None or seconds > self._max:
                self._max = seconds

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "timer",
            "count": self._count,
            "total_ms": self._total * 1000.0,
            "mean_ms": self.mean * 1000.0,
            "min_ms": None if self._min is None else self._min * 1000.0,
            "max_ms": None if self._max is None else self._max * 1000.0,
        }


#: Fixed log-spaced bucket upper boundaries, in seconds: 8 per decade
#: from 100 µs to 100 s.  Fixed (never data-dependent) so two histograms
#: are always bucket-aligned and merge by plain element-wise addition.
HISTOGRAM_BOUNDARIES_S: tuple[float, ...] = tuple(
    round(10.0 ** (-4.0 + index / 8.0), 10) for index in range(49)
)

#: Snapshot key of the overflow bucket (observations above the last
#: boundary).
OVERFLOW_KEY = "inf"


def _boundary_key(boundary_s: float) -> str:
    """The stable snapshot key of one bucket: its boundary in ms."""
    return format(boundary_s * 1000.0, ".6g")


_BOUNDARY_KEYS = tuple(
    _boundary_key(boundary) for boundary in HISTOGRAM_BOUNDARIES_S
)
_KEY_TO_INDEX = {key: index for index, key in enumerate(_BOUNDARY_KEYS)}


def quantile_from_bucket_counts(
    buckets: dict[str, int], q: float, overflow_ms: float | None = None
) -> float | None:
    """Quantile (in ms) from a snapshot-shaped bucket dict, deterministically.

    ``buckets`` maps boundary keys (``_boundary_key`` output, plus
    ``"inf"``) to counts — the shape :meth:`Histogram.snapshot` emits and
    the shape a subtraction of two snapshots produces, which is how the
    load generator attributes per-scenario percentiles on a shared
    server.  The result is the upper boundary of the bucket containing
    the ``q``-th observation: an overestimate of at most one bucket
    (≤ 33 %, at 8 buckets per decade), stable under merge order.  The
    overflow bucket reports ``overflow_ms`` (pass the observed max) or
    the last finite boundary.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    total = sum(buckets.values())
    if total <= 0:
        return None
    rank = max(1, ceil(q * total))
    cumulative = 0
    for index, key in enumerate(_BOUNDARY_KEYS):
        cumulative += buckets.get(key, 0)
        if cumulative >= rank:
            return HISTOGRAM_BOUNDARIES_S[index] * 1000.0
    if overflow_ms is not None:
        return overflow_ms
    return HISTOGRAM_BOUNDARIES_S[-1] * 1000.0


class Histogram(Timer):
    """A streaming latency histogram over fixed log-spaced buckets.

    Extends :class:`Timer` (count / total / min / max) with a bucket
    array over :data:`HISTOGRAM_BOUNDARIES_S`, giving deterministic
    p50/p95/p99 extraction (bucket upper edge) and an order-independent
    :meth:`merge` — two histograms recorded on different shards combine
    into exactly the histogram of the combined stream.  Subclassing
    keeps it drop-in where a :class:`Timer` is expected; a registry name
    first created as a plain ``timer`` cannot be re-requested as a
    ``histogram`` (and the mismatch raises, as for every metric kind).
    """

    __slots__ = ("_bucket_counts",)

    def __init__(self, name: str) -> None:
        super().__init__(name)
        # One count per boundary plus the overflow bucket.
        self._bucket_counts = [0] * (len(HISTOGRAM_BOUNDARIES_S) + 1)

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(
                f"histogram {self.name!r} observed a negative duration"
            )
        index = bisect_left(HISTOGRAM_BOUNDARIES_S, seconds)
        with self._lock:
            self._count += 1
            self._total += seconds
            if self._min is None or seconds < self._min:
                self._min = seconds
            if self._max is None or seconds > self._max:
                self._max = seconds
            self._bucket_counts[index] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (element-wise, exact)."""
        if not isinstance(other, Histogram):
            raise TypeError(
                f"can only merge Histogram into Histogram, "
                f"got {type(other).__name__}"
            )
        with other._lock:
            other_counts = list(other._bucket_counts)
            other_count = other._count
            other_total = other._total
            other_min = other._min
            other_max = other._max
        with self._lock:
            self._count += other_count
            self._total += other_total
            if other_min is not None and (
                self._min is None or other_min < self._min
            ):
                self._min = other_min
            if other_max is not None and (
                self._max is None or other_max > self._max
            ):
                self._max = other_max
            for index, value in enumerate(other_counts):
                self._bucket_counts[index] += value

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile in **seconds** (upper bucket boundary)."""
        value_ms = quantile_from_bucket_counts(
            self.bucket_counts(),
            q,
            overflow_ms=None if self._max is None else self._max * 1000.0,
        )
        return None if value_ms is None else value_ms / 1000.0

    def bucket_counts(self) -> dict[str, int]:
        """Non-zero buckets keyed by boundary-in-ms (``"inf"`` overflow)."""
        with self._lock:
            counts = list(self._bucket_counts)
        result = {
            _BOUNDARY_KEYS[index]: value
            for index, value in enumerate(counts[:-1])
            if value
        }
        if counts[-1]:
            result[OVERFLOW_KEY] = counts[-1]
        return result

    def snapshot(self) -> dict:
        def _ms(quantile: float) -> float | None:
            value = self.quantile(quantile)
            return None if value is None else value * 1000.0

        return {
            "type": "histogram",
            "count": self._count,
            "total_ms": self._total * 1000.0,
            "mean_ms": self.mean * 1000.0,
            "min_ms": None if self._min is None else self._min * 1000.0,
            "max_ms": None if self._max is None else self._max * 1000.0,
            "p50_ms": _ms(0.50),
            "p95_ms": _ms(0.95),
            "p99_ms": _ms(0.99),
            "buckets": self.bucket_counts(),
        }


class Registry:
    """A thread-safe, get-or-create store of named metrics.

    Names are dotted strings (``"bt.memo_hits"``); the prefix groups
    metrics by subsystem in reports.  Requesting an existing name with a
    different metric kind raises ``ValueError`` — silent type punning
    would corrupt reports.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Timer] = {}

    def _get_or_create(self, name: str, kind: type):
        # Fast path: plain dict read (atomic under the GIL).
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(name)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Counter | Gauge | Timer]:
        return iter(list(self._metrics.values()))

    def get(self, name: str) -> Counter | Gauge | Timer | None:
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict]:
        """A stable (name-sorted) plain-data view of every metric."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }


_REGISTRY: ContextVar[Registry | None] = ContextVar(
    "repro_obs_registry", default=None
)


def active_registry() -> Registry | None:
    """The registry of the innermost enclosing ``observe()`` scope, if any."""
    return _REGISTRY.get()


def add(name: str, amount: int = 1) -> None:
    """Increment a counter in the active registry; no-op when disabled.

    Convenience for warm (not hot) paths: one context-var read per call.
    Hot loops should instead hold the registry once and tally locally.
    """
    registry = _REGISTRY.get()
    if registry is not None:
        registry.counter(name).inc(amount)


def _activate(registry: Registry):
    """Install ``registry`` as the active one; returns the reset token."""
    return _REGISTRY.set(registry)


def _deactivate(token) -> None:
    _REGISTRY.reset(token)
