"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`BagCQError`, so
callers can catch a single type at API boundaries.
"""

from __future__ import annotations


class BagCQError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(BagCQError):
    """A relation symbol is unknown, redeclared, or used with a wrong arity."""


class ArityError(SchemaError):
    """A tuple or atom does not match the arity of its relation symbol."""


class ConstantError(BagCQError):
    """A constant is missing an interpretation, or interpretations clash."""


class QueryError(BagCQError):
    """A conjunctive query is malformed."""


class ParseError(QueryError):
    """The textual query syntax could not be parsed."""


class PolynomialError(BagCQError):
    """A polynomial or a Lemma 11 instance is malformed."""


class Lemma11ViolationError(PolynomialError):
    """A pair of polynomials violates one of the side conditions of Lemma 11."""


class ReductionError(BagCQError):
    """A reduction step received input outside its contract."""


class EvaluationError(BagCQError):
    """A query could not be evaluated over a structure."""


class MaterializationError(BagCQError):
    """A factorized query is too large to expand into plain syntax."""


class SearchBudgetExceeded(BagCQError):
    """A semi-decision search procedure ran out of its configured budget."""
