"""Unified evaluation front-end: ``φ(D)`` for queries and query products.

:func:`count` is the library's single entry point for bag-semantics
evaluation.  It factorizes plain conjunctive queries into connected
components (counts multiply, see
:meth:`repro.queries.cq.ConjunctiveQuery.connected_components`), exploits
the lazy exponents of :class:`repro.queries.product.QueryProduct`
(``(θ↑k)(D) = θ(D)^k``, Definition 2), and dispatches each component to a
counting engine.

``engine`` selects that engine per component: one of the four explicit
engines (``"backtracking"``, ``"treewidth"``, ``"acyclic"``, or
``"compiled"`` — the specialized per-plan evaluators of
:mod:`repro.homomorphism.compiled`), or ``"auto"`` — the
:mod:`repro.planner` cost model picks the cheapest safe engine for each
component individually.  ``auto`` is a drop-in for the default: the
count is bit-identical (all engines agree exactly; the qa oracles
enforce it differentially), and the planner only ever selects an engine
that cannot raise where the backtracking engine would not.
"""

from __future__ import annotations

import itertools
from typing import Literal, Union

from repro.errors import EvaluationError
from repro.homomorphism.acyclic import count_homomorphisms_acyclic
from repro.homomorphism.backtracking import count_homomorphisms
from repro.homomorphism.compiled import count_homomorphisms_compiled
from repro.homomorphism.treewidth_dp import count_homomorphisms_td
from repro.obs import metrics as obs_metrics
from repro.queries.atoms import Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.product import QueryProduct
from repro.queries.terms import Constant, Term, Variable
from repro.queries.ucq import UnionOfConjunctiveQueries

__all__ = ["count", "evaluate", "count_ucq", "Engine"]

Engine = Literal["backtracking", "treewidth", "acyclic", "compiled", "auto"]
Countable = Union[ConjunctiveQuery, QueryProduct]

_ENGINES = {
    "backtracking": count_homomorphisms,
    "treewidth": count_homomorphisms_td,
    "acyclic": count_homomorphisms_acyclic,
    "compiled": count_homomorphisms_compiled,
}

#: Guard for the opt-in inclusion-exclusion path (2^q terms).
INCLUSION_EXCLUSION_LIMIT = 12


def _resolve_engine(engine: str):
    """The counting function for ``engine``, validated up front.

    Every public entry point calls this before touching the query, so an
    unknown engine fails fast even for :class:`QueryProduct` inputs whose
    factor evaluation would otherwise defer (or, for empty products and
    trivial bounds, entirely skip) the name check.  ``"auto"`` returns
    ``None``: the planner assigns a concrete engine per component at
    dispatch time.
    """
    if engine == "auto":
        return None
    try:
        return _ENGINES[engine]
    except KeyError:
        raise EvaluationError(
            f"unknown engine {engine!r}; choose from "
            f"{sorted([*_ENGINES, 'auto'])}"
        ) from None


def _tag_engine(error: EvaluationError, engine: str) -> EvaluationError:
    """Append the chosen engine to a mid-evaluation error, once."""
    if getattr(error, "engine", None) is not None:
        return error
    tagged = EvaluationError(f"{error} [engine: {engine}]")
    tagged.engine = engine  # type: ignore[attr-defined]
    return tagged


def count(
    query: Countable,
    structure,
    engine: Engine = "backtracking",
    use_inclusion_exclusion: bool = False,
    cache=None,
) -> int:
    """``φ(D)``: the number of homomorphisms from ``φ`` to ``D``.

    Accepts a :class:`ConjunctiveQuery` or a factorized
    :class:`QueryProduct`; returns an exact Python integer.

    ``engine`` picks the counting engine.  ``"auto"`` routes every
    connected component through the :mod:`repro.planner` cost model,
    which selects the cheapest safe engine per component (Yannakakis for
    acyclic shapes, tree-decomposition DP for wide-but-low-treewidth
    ones, backtracking otherwise); explicit names force one engine for
    all components, exactly as before.

    ``use_inclusion_exclusion`` switches queries with (few) inequalities to
    the alternative evaluation ``|Hom with all ≠| = Σ_{S⊆ineqs}
    (−1)^{|S|}·|Hom of the S-merged query|``, which restores the component
    factorization that inequalities break.  The default backtracking
    engine's subtree memoization handles those shapes at least as fast in
    every benchmarked case (see the E14 ablation), so the transform is
    opt-in; it remains valuable as an independent implementation for
    differential testing.

    ``cache`` opts into component-count reuse: pass a
    :class:`repro.homomorphism.cache.CountCache` and every connected
    component is looked up by its canonical (α-equivalence) form before
    being dispatched to an engine — repeated components across factors,
    calls, and structures then cost one evaluation.  Caching never changes
    the result; by default (``None``) nothing is cached.

    >>> from repro.queries import parse_query
    >>> from repro.relational import Schema, Structure
    >>> d = Structure(Schema.from_arities({"E": 2}), {"E": [(1, 2), (2, 1)]})
    >>> count(parse_query("E(x, y) & E(y, x)"), d)
    2
    """
    counter = _resolve_engine(engine)
    if isinstance(query, QueryProduct):
        registry = obs_metrics.active_registry()
        total = 1
        for factor, exponent in query:
            if registry is not None:
                registry.counter("engine.product_factors").inc()
            value = count(factor, structure, engine=engine, cache=cache)
            if value == 0:
                return 0
            total *= value**exponent
        return total
    if not isinstance(query, ConjunctiveQuery):
        raise EvaluationError(
            f"cannot evaluate object of type {type(query).__name__}"
        )
    try:
        if (
            use_inclusion_exclusion
            and engine == "backtracking"
            and 1 <= query.inequality_count <= INCLUSION_EXCLUSION_LIMIT
        ):
            return _count_inclusion_exclusion(query, structure)
        return _count_components(query, structure, counter, engine, cache)
    except EvaluationError as error:
        raise _tag_engine(error, engine) from error


def _count_components(
    query: ConjunctiveQuery,
    structure,
    counter,
    engine: str = "backtracking",
    cache=None,
) -> int:
    registry = obs_metrics.active_registry()
    components = query.connected_components()
    if len(components) <= 1:
        return _dispatch(query, structure, counter, engine, registry, cache)
    if registry is not None:
        registry.counter("engine.factorizations").inc()
    total = 1
    for component in components:
        total *= _dispatch(component, structure, counter, engine, registry, cache)
        if total == 0:
            return 0
    return total


def _dispatch(component, structure, counter, engine: str, registry, cache=None) -> int:
    """One engine invocation on one connected component.

    This is the plan-execution seam: with ``engine="auto"`` the
    :mod:`repro.planner` cost model assigns the concrete engine here, per
    component, and everything downstream (cache keys, dispatch counters,
    error tags) sees only that concrete engine — so an ``auto`` run that
    selects, say, ``acyclic`` is indistinguishable from an explicit
    ``acyclic`` run of the same component.
    """
    if engine == "auto":
        from repro.planner import select_for

        step = select_for(component, structure)
        engine = step.engine
        counter = _ENGINES[engine]
    key = None
    if cache is not None:
        from repro.homomorphism.cache import component_cache_key

        key = component_cache_key(component, structure, engine)
        hit = cache.lookup(key)
        if hit is not None:
            return hit
    try:
        if registry is None:
            value = counter(component, structure)
        else:
            registry.counter(f"engine.dispatch.{engine}").inc()
            with registry.histogram(f"engine.time.{engine}").time():
                value = counter(component, structure)
    except EvaluationError as error:
        raise _tag_engine(error, engine) from error
    if key is not None:
        cache.store(key, value)
    return value


def _count_inclusion_exclusion(query: ConjunctiveQuery, structure) -> int:
    """Inclusion-exclusion over the query's inequalities.

    Each subset ``S`` contributes ``(−1)^{|S|}`` times the count of the
    inequality-free query with the endpoints of every inequality in ``S``
    identified.  Identification of two *distinct constants* makes the term
    zero unless the structure interprets them equally.
    """
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter("engine.ie_calls").inc()
    inequalities = query.inequalities
    if any(ineq.is_trivially_false() for ineq in inequalities):
        return 0
    base = query.without_inequalities()
    domain_size = len(structure.domain)
    total = 0
    for size in range(len(inequalities) + 1):
        for subset in itertools.combinations(inequalities, size):
            merged = _merge_inequality_endpoints(
                base, subset, structure, query.variables
            )
            if merged is None:
                if registry is not None:
                    registry.counter("engine.ie_terms_unsatisfiable").inc()
                continue
            if registry is not None:
                registry.counter("engine.ie_terms").inc()
            merged_query, representatives = merged
            # Variables that survive merging but occur in no atom still
            # range freely over the whole active domain.
            dangling = sum(
                1
                for variable in representatives
                if variable not in merged_query.variables
            )
            term = _count_components(
                merged_query, structure, count_homomorphisms
            ) * domain_size**dangling
            total += term if size % 2 == 0 else -term
    return total


def _merge_inequality_endpoints(
    base: ConjunctiveQuery,
    subset: tuple[Inequality, ...],
    structure,
    original_variables: frozenset[Variable],
) -> tuple[ConjunctiveQuery, frozenset[Variable]] | None:
    """The query with each inequality's endpoints identified.

    Returns the merged query together with the set of surviving variable
    representatives of the *original* query's variables, or ``None`` when
    the identifications are unsatisfiable in this structure (two constants
    with different interpretations).
    """
    parent: dict[Term, Term] = {}

    def find(term: Term) -> Term:
        parent.setdefault(term, term)
        while parent[term] != term:
            parent[term] = parent[parent[term]]
            term = parent[term]
        return term

    def union(left: Term, right: Term) -> bool:
        root_left, root_right = find(left), find(right)
        if root_left == root_right:
            return True
        # Prefer constants as representatives so variables get substituted.
        if isinstance(root_left, Constant) and isinstance(root_right, Constant):
            if structure.interpret(root_left.name) != structure.interpret(
                root_right.name
            ):
                return False
            parent[root_right] = root_left
            return True
        if isinstance(root_right, Constant):
            root_left, root_right = root_right, root_left
        parent[root_right] = root_left
        return True

    for inequality in subset:
        if not union(inequality.left, inequality.right):
            return None
    mapping = {
        term: find(term)
        for term in list(parent)
        if isinstance(term, Variable) and find(term) != term
    }
    representatives = frozenset(
        image
        for image in (
            mapping.get(variable, variable) for variable in original_variables
        )
        if isinstance(image, Variable)
    )
    merged_query = base.rename(mapping) if mapping else base
    return merged_query, representatives


def evaluate(query: Countable, structure, engine: Engine = "backtracking") -> int:
    """Alias of :func:`count`, matching the paper's ``φ(D)`` notation."""
    return count(query, structure, engine=engine)


def count_at_least(
    query: Countable,
    structure,
    bound: int,
    engine: Engine = "backtracking",
    cache=None,
) -> bool:
    """Is ``φ(D) ≥ bound``, without materializing astronomical powers?

    The reductions of Section 4 produce factorized queries with outer
    exponents like ``C = c·C₁`` that can exceed ``10^{100}``.  On *correct*
    databases every ``δ_b`` factor counts 1 and exact evaluation is cheap,
    but on a cheating database a factor of 2 raised to ``C`` would not fit
    in memory.  This predicate multiplies factor-by-factor and stops as
    soon as the bound is provably cleared: a factor ``v ≥ 2`` with exponent
    ``e`` exceeds ``bound`` whenever ``e ≥ bound.bit_length()``, so
    exponents are capped before powering.
    """
    _resolve_engine(engine)
    if bound <= 0:
        return True
    if isinstance(query, ConjunctiveQuery):
        return count(query, structure, engine=engine, cache=cache) >= bound
    if not isinstance(query, QueryProduct):
        raise EvaluationError(
            f"cannot evaluate object of type {type(query).__name__}"
        )
    cap = bound.bit_length() + 1
    # Two passes: a factor later in the product may evaluate to 0 and
    # annihilate everything, so no bound can be declared cleared until
    # every factor is known nonzero.  (Returning True the moment the
    # running product reached ``bound`` was exactly the bug the repro.qa
    # fuzzer's count_at_least oracle caught: with ``bound = 1`` a single
    # nonzero factor short-circuited past a zero factor behind it.)
    values: list[tuple[int, int]] = []
    for factor, exponent in query:
        value = count(factor, structure, engine=engine, cache=cache)
        if value == 0:
            return False
        values.append((value, exponent))
    total = 1
    for value, exponent in values:
        if value > 1:
            total *= value ** min(exponent, cap)
            if total >= bound:
                return True
    return total >= bound


def count_ucq(
    ucq: UnionOfConjunctiveQueries,
    structure,
    engine: Engine = "backtracking",
    workers: int = 1,
    cache=None,
) -> int:
    """Bag-semantics value of a boolean UCQ: the sum over its disjuncts.

    ``workers`` / ``cache`` route the disjuncts through
    :func:`repro.homomorphism.batch.count_many`, so disjuncts that share
    α-equivalent components (common for the blown-up unions the Section 5
    encodings emit) are counted once, optionally in parallel.

    The serial path shares one fresh
    :class:`~repro.homomorphism.cache.CountCache` across the disjuncts
    for the same reason: identical (α-equivalent) components routinely
    appear in several disjuncts, and re-counting them per disjunct was
    pure waste.  Pass ``cache=False`` for the honest no-reuse baseline.
    """
    _resolve_engine(engine)
    if workers != 1 or cache is not None:
        from repro.homomorphism.batch import count_many

        disjuncts = list(ucq)
        values = count_many(
            [(query, structure) for query, _ in disjuncts],
            engine=engine,
            workers=workers,
            cache=cache,
        )
        return sum(
            multiplicity * value
            for (_, multiplicity), value in zip(disjuncts, values)
        )
    from repro.homomorphism.cache import CountCache

    shared = CountCache()
    return sum(
        multiplicity * count(query, structure, engine=engine, cache=shared)
        for query, multiplicity in ucq
    )
