"""Homomorphism counting, enumeration, and containment tests."""

from repro.homomorphism.acyclic import (
    count_homomorphisms_acyclic,
    is_acyclic,
    join_tree,
)
from repro.homomorphism.backtracking import (
    count_homomorphisms,
    enumerate_homomorphisms,
    exists_homomorphism,
    is_homomorphism,
)
from repro.homomorphism.batch import count_many
from repro.homomorphism.cache import CountCache, canonical_component
from repro.homomorphism.compiled import (
    compile_component,
    compiled_supported,
    count_homomorphisms_compiled,
    refresh_component,
)
from repro.homomorphism.delta import DeltaEvaluator, DeltaReport, delta_affects
from repro.homomorphism.containment import (
    bag_contained_on,
    bag_counterexample_on,
    set_contained,
)
from repro.homomorphism.engine import count, count_at_least, count_ucq, evaluate
from repro.homomorphism.surjective import (
    find_surjective_homomorphism,
    has_surjective_homomorphism,
    query_homomorphisms,
)
from repro.homomorphism.treewidth_dp import count_homomorphisms_td, query_treewidth

__all__ = [
    "CountCache",
    "DeltaEvaluator",
    "DeltaReport",
    "bag_contained_on",
    "bag_counterexample_on",
    "canonical_component",
    "compile_component",
    "compiled_supported",
    "count",
    "count_at_least",
    "count_homomorphisms",
    "count_many",
    "count_homomorphisms_acyclic",
    "count_homomorphisms_compiled",
    "count_homomorphisms_td",
    "count_ucq",
    "delta_affects",
    "enumerate_homomorphisms",
    "evaluate",
    "exists_homomorphism",
    "find_surjective_homomorphism",
    "has_surjective_homomorphism",
    "is_acyclic",
    "is_homomorphism",
    "join_tree",
    "query_homomorphisms",
    "query_treewidth",
    "refresh_component",
    "set_contained",
]
