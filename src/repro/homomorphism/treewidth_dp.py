"""Homomorphism counting by dynamic programming over a tree decomposition.

A second, independent counting engine used for differential testing against
the backtracking counter and for queries whose primal graph has small
treewidth (e.g. the long ``E``-cycles ``δ_{b,l}`` of Section 4.6, which a
naive backtracking search handles poorly on dense structures).

Algorithm: build the primal graph of the query (vertices = variables,
edges = co-occurrence in an atom or inequality), compute a tree
decomposition with networkx's min-fill-in heuristic, assign every atom and
inequality to one bag containing all its variables (such a bag exists
because an atom's variables form a clique in the primal graph), then count
by message passing from the leaves to the root:

``msg_child(σ) = Σ_{bag assignments β ⊇ σ satisfying the bag's constraints}
Π msg_grandchild(β|separator)``

The root's total is ``Σ_root-assignments Π child messages``.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_fill_in

from repro.errors import ConstantError, EvaluationError
from repro.obs import metrics as obs_metrics
from repro.queries.atoms import Atom, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Term, Variable
from repro.relational.structure import Structure

__all__ = ["count_homomorphisms_td", "query_treewidth"]

Element = Hashable


def query_treewidth(query: ConjunctiveQuery) -> int:
    """Width of the (heuristic) tree decomposition of the query's primal graph.

    An upper bound on the true treewidth; ``0`` for queries whose variables
    never co-occur.
    """
    graph = _primal_graph(query)
    if graph.number_of_nodes() == 0:
        return 0
    width, _ = treewidth_min_fill_in(graph)
    return width


def _primal_graph(query: ConjunctiveQuery) -> "nx.Graph":
    graph: nx.Graph = nx.Graph()
    graph.add_nodes_from(query.variables)
    for atom in query.atoms:
        atom_variables = list(set(atom.variables()))
        for i, first in enumerate(atom_variables):
            for second in atom_variables[i + 1 :]:
                graph.add_edge(first, second)
    for inequality in query.inequalities:
        ineq_variables = list(set(inequality.variables()))
        if len(ineq_variables) == 2:
            graph.add_edge(ineq_variables[0], ineq_variables[1])
    return graph


def count_homomorphisms_td(query: ConjunctiveQuery, structure: Structure) -> int:
    """``φ(D)`` via tree-decomposition dynamic programming.

    Exact; agrees with
    :func:`repro.homomorphism.backtracking.count_homomorphisms` on every
    input (the test suite enforces this differentially).
    """
    for constant in query.constants:
        if not structure.interprets(constant.name):
            raise ConstantError(
                f"structure does not interpret constant {constant.name!r}"
            )
    for atom in query.atoms:
        if atom.relation not in structure.schema:
            # Undeclared relations are interpreted as empty; an atom over
            # one can never be satisfied (the arity-1+ atom needs a fact).
            return 0
        if structure.schema.arity(atom.relation) != atom.arity:
            raise EvaluationError(
                f"arity mismatch for relation {atom.relation!r}: query "
                f"uses {atom.arity}, structure declares "
                f"{structure.schema.arity(atom.relation)}"
            )

    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter("td.calls").inc()
    if not _ground_holds(query, structure):
        return 0
    variables = sorted(query.variables)
    if not variables:
        return 1

    graph = _primal_graph(query)
    total = 1
    for component_nodes in nx.connected_components(graph):
        component = graph.subgraph(component_nodes).copy()
        if registry is not None:
            registry.counter("td.components").inc()
        total *= _count_component(query, structure, component, registry)
        if total == 0:
            return 0
    return total


def _ground_holds(query: ConjunctiveQuery, structure: Structure) -> bool:
    for atom in query.atoms:
        if not any(True for _ in atom.variables()):
            values = tuple(
                structure.interpret(term.name)  # type: ignore[union-attr]
                for term in atom.terms
            )
            if not structure.has_fact(atom.relation, values):
                return False
    for inequality in query.inequalities:
        if not any(True for _ in inequality.variables()):
            if structure.interpret(inequality.left.name) == structure.interpret(
                inequality.right.name
            ):
                return False
    return True


def _count_component(
    query: ConjunctiveQuery,
    structure: Structure,
    graph: "nx.Graph",
    registry: obs_metrics.Registry | None = None,
) -> int:
    component_variables = set(graph.nodes)
    atoms = [
        atom
        for atom in query.atoms
        if set(atom.variables()) and set(atom.variables()) <= component_variables
    ]
    inequalities = [
        ineq
        for ineq in query.inequalities
        if set(ineq.variables()) and set(ineq.variables()) <= component_variables
    ]

    _, decomposition = treewidth_min_fill_in(graph)
    if decomposition.number_of_nodes() == 0:
        decomposition.add_node(frozenset(component_variables))

    bags = list(decomposition.nodes)
    if registry is not None:
        registry.counter("td.bags").inc(len(bags))
        registry.gauge("td.width").set_max(
            max(len(bag) for bag in bags) - 1 if bags else 0
        )
    root = bags[0]
    order = list(nx.bfs_tree(decomposition, root).edges())
    children: dict[frozenset, list[frozenset]] = {bag: [] for bag in bags}
    parent: dict[frozenset, frozenset | None] = {root: None}
    for up, down in order:
        children[up].append(down)
        parent[down] = up

    # Assign every constraint to one bag containing all its variables,
    # preferring deeper bags so work happens near the leaves.
    depth: dict[frozenset, int] = {root: 0}
    for up, down in order:
        depth[down] = depth[up] + 1
    constraints_at: dict[frozenset, list[Atom | Inequality]] = {
        bag: [] for bag in bags
    }
    for constraint in [*atoms, *inequalities]:
        constraint_variables = set(
            constraint.variables()  # type: ignore[union-attr]
        )
        host = max(
            (bag for bag in bags if constraint_variables <= bag),
            key=lambda bag: depth[bag],
            default=None,
        )
        if host is None:
            raise EvaluationError(
                "tree decomposition does not cover a constraint; "
                "this indicates a bug in the primal graph construction"
            )
        constraints_at[host].append(constraint)

    unary_domain = _unary_domains(query, structure, component_variables)

    def bag_assignments(bag: frozenset, pinned: dict[Variable, Element]):
        free = sorted(v for v in bag if v not in pinned)
        stack: list[dict[Variable, Element]] = [dict(pinned)]
        for variable in free:
            stack = [
                {**partial, variable: value}
                for partial in stack
                for value in unary_domain[variable]
            ]
        return stack

    def satisfies(
        assignment: dict[Variable, Element],
        constraints: list[Atom | Inequality],
    ) -> bool:
        def image(term: Term) -> Element:
            if isinstance(term, Constant):
                return structure.interpret(term.name)
            return assignment[term]

        for constraint in constraints:
            if isinstance(constraint, Atom):
                values = tuple(image(term) for term in constraint.terms)
                if not structure.has_fact(constraint.relation, values):
                    return False
            else:
                if image(constraint.left) == image(constraint.right):
                    return False
        return True

    def message(bag: frozenset, separator_assignment: dict[Variable, Element]) -> int:
        total = 0
        for assignment in bag_assignments(bag, separator_assignment):
            if not satisfies(assignment, constraints_at[bag]):
                continue
            product = 1
            for child in children[bag]:
                separator = child & bag
                restricted = {v: assignment[v] for v in separator}
                product *= cached_message(child, restricted)
                if product == 0:
                    break
            total += product
        return total

    cache: dict[tuple[frozenset, tuple], int] = {}
    message_calls = 0

    def cached_message(
        bag: frozenset, separator_assignment: dict[Variable, Element]
    ) -> int:
        if registry is not None:
            nonlocal message_calls
            message_calls += 1
        key = (bag, tuple(sorted(separator_assignment.items(), key=lambda kv: kv[0])))
        if key not in cache:
            cache[key] = message(bag, separator_assignment)
        return cache[key]

    result = cached_message(root, {})
    if registry is not None:
        # The cache *is* the DP table: one entry per (bag, separator
        # assignment) message ever computed.
        registry.counter("td.message_calls").inc(message_calls)
        registry.counter("td.table_entries").inc(len(cache))
    return result


def _unary_domains(
    query: ConjunctiveQuery,
    structure: Structure,
    variables: set[Variable],
) -> dict[Variable, list[Element]]:
    """Initial candidate values per variable from single-atom projections."""
    domain = sorted(structure.domain, key=repr)
    result: dict[Variable, list[Element]] = {}
    for variable in variables:
        candidates: set | None = None
        for atom in query.atoms:
            if variable not in set(atom.variables()):
                continue
            positions = [
                index for index, term in enumerate(atom.terms) if term == variable
            ]
            allowed = set()
            for fact in structure.facts(atom.relation):
                value = fact[positions[0]]
                if all(fact[index] == value for index in positions[1:]):
                    constant_ok = all(
                        fact[index] == structure.interpret(term.name)
                        for index, term in enumerate(atom.terms)
                        if isinstance(term, Constant)
                    )
                    if constant_ok:
                        allowed.add(value)
            candidates = allowed if candidates is None else candidates & allowed
        if candidates is None:
            result[variable] = list(domain)
        else:
            result[variable] = sorted(candidates, key=repr)
    return result
