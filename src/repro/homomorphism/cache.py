"""A canonicalization-keyed LRU cache for component counts.

The reductions of Section 4 emit factorized queries whose connected
components repeat massively — ``φ ↑ k`` alone produces ``k`` copies of the
same component differing only in variable names — and every
lemma-certification or counterexample-search loop re-counts them on the
same structures.  Since ``φ(D)`` is invariant under bijective renaming of
``φ``'s variables, all those copies can share one evaluation.

:func:`canonical_component` renames a (connected-component) query into a
canonical form: α-equivalent components — equal up to a variable
renaming — map to the *same* canonical query, which then keys the cache.
The renaming is computed with the 1-WL color refinement of
:func:`repro.relational.isomorphism.refine_colors` extended to query
components (variables are colored by their atom/inequality incidence;
constants stay fixed, as homomorphisms fix them).

Soundness does not depend on the canonicalization being *complete*: a key
is the full canonically-renamed query, so two components share a key only
when their renamed forms are literally equal — and a bijective renaming
never changes a count.  An imperfect tie-break merely costs cache hits,
never correctness.

:class:`CountCache` is the bounded LRU that stores the results, shared
within a :func:`repro.homomorphism.batch.count_many` batch and reusable
across calls when passed explicitly.  Hits/misses/evictions are mirrored
into the active :mod:`repro.obs` registry as ``cache.*`` counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Mapping

from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Term, Variable
from repro.relational.isomorphism import refine_colors
from repro.relational.structure import Structure

__all__ = [
    "CountCache",
    "canonical_component",
    "component_cache_key",
    "component_fingerprint",
    "key_depends_on_domain",
    "key_relations",
]

#: Default bound on cached component counts (entries, not bytes).
DEFAULT_CACHE_SIZE = 4096

#: Tag marking the structure part of a cache key as a dependency
#: fingerprint (lets invalidation recognize its own key shape).
_FP_TAG = "§fp"

#: Marker for a constant the structure does not interpret (evaluating such
#: a component raises, and errors are never cached, but the key must still
#: be well-defined and distinct from every real interpretation).
_MISSING = ("§missing",)


def _term_code(term: Term, colors: Mapping[Variable, Hashable]):
    """A rename-invariant rendering of one term under the current colors."""
    if isinstance(term, Variable):
        return colors[term]
    return ("const", term.name)


def canonical_component(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The query with variables renamed to a canonical ``_c0, _c1, …``.

    α-equivalent queries (equal up to bijective variable renaming, with
    atoms in corresponding order) produce identical results; constants are
    never renamed.  The output is a plain :class:`ConjunctiveQuery`, so it
    is hashable and compares by its atom/inequality sets — exactly what a
    cache key needs.
    """
    variables = query.variables
    if not variables:
        return query

    occurrences: dict[Variable, list] = {v: [] for v in variables}
    for atom in query.atoms:
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                occurrences[term].append((atom, position))
    neighbors: dict[Variable, list[Term]] = {v: [] for v in variables}
    for inequality in query.inequalities:
        left, right = inequality.left, inequality.right
        if isinstance(left, Variable):
            neighbors[left].append(right)
        if isinstance(right, Variable):
            neighbors[right].append(left)

    def signature(variable: Variable, colors: Mapping[Variable, Hashable]):
        atom_part = tuple(
            sorted(
                (
                    (
                        atom.relation,
                        position,
                        tuple(_term_code(t, colors) for t in atom.terms),
                    )
                    for atom, position in occurrences[variable]
                ),
                key=repr,
            )
        )
        ineq_part = tuple(
            sorted(
                (_term_code(other, colors) for other in neighbors[variable]),
                key=repr,
            )
        )
        return (atom_part, ineq_part)

    initial = {
        variable: tuple(
            sorted(
                (atom.relation, position, atom.arity)
                for atom, position in occurrences[variable]
            )
        )
        for variable in variables
    }
    colors = refine_colors(initial, signature)

    # Canonical numbering: scan atoms (then inequalities) in the order of
    # their rename-invariant renderings and number variables on first
    # sight.  Ties between identically-rendered atoms fall back to the
    # query's stored order, which corresponds across renamed copies.
    sorted_atoms = sorted(
        query.atoms,
        key=lambda atom: repr(
            (atom.relation, tuple(_term_code(t, colors) for t in atom.terms))
        ),
    )
    sorted_inequalities = sorted(
        query.inequalities,
        key=lambda ineq: repr(
            (_term_code(ineq.left, colors), _term_code(ineq.right, colors))
        ),
    )
    mapping: dict[Variable, Variable] = {}
    for atom in sorted_atoms:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in mapping:
                mapping[term] = Variable(f"_c{len(mapping)}")
    for inequality in sorted_inequalities:
        for term in (inequality.left, inequality.right):
            if isinstance(term, Variable) and term not in mapping:
                mapping[term] = Variable(f"_c{len(mapping)}")
    return query.rename(mapping)


def component_fingerprint(
    component: ConjunctiveQuery, structure: Structure
) -> tuple:
    """The part of ``structure`` a component's count can depend on.

    ``count(component, structure)`` is fully determined by

    * the fact sets of the relations named by the component's atoms
      (captured as their content fingerprints; a relation missing from the
      schema is recorded as ``None`` — evaluation raises, and errors are
      never cached, so the marker only has to be distinct);
    * the interpretations of the constants the component mentions;
    * ``len(structure.domain)``, but *only* when some variable occurs in
      no atom (such variables range over the whole domain; inequalities
      compare them against values that are themselves domain members, so
      only the domain's size matters, never its identity).

    Keying cache entries by this instead of the whole structure makes
    entries survive every mutation that provably cannot change the count —
    relation-scoped invalidation falls out of the key itself.
    """
    relations = sorted({atom.relation for atom in component.atoms})
    rel_part = tuple(
        (
            name,
            structure.relation_fingerprint(name)
            if name in structure.schema
            else None,
        )
        for name in relations
    )
    const_part = tuple(
        (
            name,
            structure.constants[name]
            if structure.interprets(name)
            else _MISSING,
        )
        for name in sorted(c.name for c in component.constants)
    )
    atom_variables = {
        term
        for atom in component.atoms
        for term in atom.terms
        if isinstance(term, Variable)
    }
    dom_part = (
        len(structure.domain)
        if component.variables - atom_variables
        else None
    )
    return (_FP_TAG, rel_part, const_part, dom_part)


def component_cache_key(
    component: ConjunctiveQuery, structure: Structure, engine: str
) -> tuple:
    """The cache key of one ``(component, structure, engine)`` evaluation.

    The structure enters through :func:`component_fingerprint`: only the
    relations, constants and (when relevant) domain size the component can
    actually see.  The engine is part of the key on purpose: all engines
    agree on the value, but keeping them apart means a differential run
    never reads a number another engine computed.
    """
    return (
        canonical_component(component),
        component_fingerprint(component, structure),
        engine,
    )


def key_relations(key) -> frozenset[str] | None:
    """The relation names a :func:`component_cache_key` depends on.

    Returns ``None`` for keys of an unrecognized shape (foreign keys must
    be treated as depending on *everything* by relation-scoped
    invalidation).
    """
    if (
        isinstance(key, tuple)
        and len(key) == 3
        and isinstance(key[1], tuple)
        and len(key[1]) == 4
        and key[1][0] == _FP_TAG
    ):
        return frozenset(name for name, _ in key[1][1])
    return None


def key_depends_on_domain(key) -> bool:
    """True when a recognized key's count depends on the domain size."""
    if (
        isinstance(key, tuple)
        and len(key) == 3
        and isinstance(key[1], tuple)
        and len(key[1]) == 4
        and key[1][0] == _FP_TAG
    ):
        return key[1][3] is not None
    return True


class CountCache:
    """A bounded, thread-safe LRU map from cache keys to exact counts.

    >>> cache = CountCache(max_entries=2)
    >>> cache.store("a", 1); cache.store("b", 2); cache.store("c", 3)
    >>> cache.lookup("a") is None  # evicted, capacity 2
    True
    >>> cache.lookup("c")
    3
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise ValueError(f"cache needs max_entries >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._durable = None

    def attach_durable(self, durable) -> None:
        """Mirror this cache into a durable tier.

        ``durable`` (a :class:`repro.shard.persist.DurableCacheStore`)
        receives ``record_count(key, value)`` after every store and
        ``invalidate_relations(...)`` alongside every relation-scoped
        eviction, both *outside* this cache's lock — the hot path never
        blocks on disk I/O held under the lock.  Attaching replaces any
        previous tier; ``None`` detaches.
        """
        self._durable = durable

    def lookup(self, key) -> int | None:
        """The cached count, or ``None`` (counts are ints, never ``None``)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                obs_metrics.add("cache.hits")
                return self._entries[key]
            self._misses += 1
            obs_metrics.add("cache.misses")
            return None

    def note_reuse(self) -> None:
        """Record a hit that bypassed :meth:`lookup`.

        The batch evaluator deduplicates identical keys *within* one batch
        before their shared evaluation has finished; those reuses are hits
        in every sense that matters for the hit-rate report.
        """
        with self._lock:
            self._hits += 1
        obs_metrics.add("cache.hits")

    def store(self, key, value: int) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                obs_metrics.add("cache.evictions")
        if self._durable is not None:
            # Capacity evictions above do NOT touch the durable tier:
            # disk is the bigger cache, and a re-evicted entry restoring
            # from it is the point.  Only invalidation deletes files.
            self._durable.record_count(key, value)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def items(self) -> list[tuple]:
        """A point-in-time ``(key, value)`` snapshot (LRU order, coldest
        first).  Used by delta evaluation to migrate entries across
        database versions."""
        with self._lock:
            return list(self._entries.items())

    def discard(self, key) -> bool:
        """Drop one entry; True when it was present.  Not counted as an
        eviction (evictions measure capacity pressure, not invalidation)."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def invalidate_relations(
        self, relations, *, domain_changed: bool = False
    ) -> int:
        """Evict every entry whose key depends on one of ``relations``.

        Relation-scoped invalidation: an entry is dropped iff the relation
        names in its fingerprint intersect ``relations``, or (with
        ``domain_changed``) its count depends on the domain size.  Keys of
        an unrecognized shape are dropped conservatively.  Returns the
        number of entries evicted and mirrors it into the
        ``cache.invalidations`` counter.
        """
        touched = frozenset(relations)
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                depends = key_relations(key)
                if depends is None:
                    affected = True
                else:
                    affected = bool(depends & touched) or (
                        domain_changed and key_depends_on_domain(key)
                    )
                if affected:
                    del self._entries[key]
                    dropped += 1
        if dropped:
            obs_metrics.add("cache.invalidations", dropped)
        if self._durable is not None:
            # Unconditional (not gated on ``dropped``): the durable tier
            # can hold entries this process never loaded, and they are
            # just as stale after the mutation.
            self._durable.invalidate_relations(
                relations, domain_changed=domain_changed
            )
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_rate(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> dict:
        """A plain-data snapshot for reports and tests."""
        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"CountCache(entries={len(self._entries)}/{self._max_entries}, "
            f"hits={self._hits}, misses={self._misses})"
        )
