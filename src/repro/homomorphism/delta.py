"""Incremental (delta) evaluation over a versioned database.

The paper's component machinery makes view maintenance cheap: by Lemma 1
multiplicativity (``count(φ₁×φ₂, D) = count(φ₁, D) · count(φ₂, D)``) a
query's count factorizes over its connected components, and a fact
insert/delete can only perturb components whose relations — and, through
constants, specific elements — intersect it.  Every other cached factor
is still exact and is *reused*, not recomputed.

:class:`DeltaEvaluator` packages that discipline around one logical
database:

* :meth:`~DeltaEvaluator.apply` advances the database by a
  :class:`~repro.relational.structure.Delta`, bumping only the touched
  relations' fingerprints, then walks the bound
  :class:`~repro.homomorphism.cache.CountCache` and the planner's
  compiled-artifact store: entries provably unaffected by the delta are
  *migrated* to the new fingerprint key (the constant-intersection
  refinement of :func:`delta_affects`), affected entries are evicted,
  and compiled artifacts are incrementally refreshed via
  :func:`~repro.homomorphism.compiled.refresh_component` instead of
  being rebuilt.
* :meth:`~DeltaEvaluator.evaluate` counts through any engine with the
  bound cache; cache hits are exactly the Lemma-1 factors reused across
  versions, and misses are the components the mutation history actually
  affected.

Observability (under an active registry): ``delta.applied``,
``delta.invalidations``, ``delta.migrated``, ``delta.reused_factors``,
``delta.affected_components`` counters and ``delta.apply`` /
``delta.evaluate`` spans.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.homomorphism.cache import (
    CountCache,
    component_fingerprint,
    key_depends_on_domain,
    key_relations,
)
from repro.homomorphism.compiled import _effective_changes, refresh_component
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Variable
from repro.relational.structure import Delta, Structure

__all__ = ["DeltaEvaluator", "DeltaReport", "delta_affects"]


def _atom_can_match(atom, fact: tuple, structure: Structure) -> bool:
    """Can ``atom`` possibly be mapped onto ``fact``?

    Sound over-approximation: returns ``False`` only on a *proof* of
    impossibility — an arity mismatch, a constant position whose
    interpretation differs from the fact's value, or a repeated variable
    forced onto two different values.
    """
    if len(fact) != len(atom.terms):
        return False
    seen: dict[Variable, object] = {}
    for value, term in zip(fact, atom.terms):
        if isinstance(term, Constant):
            if not structure.interprets(term.name):
                return False
            if structure.interpret(term.name) != value:
                return False
        else:
            if term in seen and seen[term] != value:
                return False
            seen[term] = value
    return True


def delta_affects(
    component: ConjunctiveQuery,
    delta: Delta,
    structure: Structure,
    new_structure: Structure,
) -> bool:
    """Can applying ``delta`` to ``structure`` change the component's count?

    ``False`` is a proof of non-effect (the constant-intersection
    refinement): every fact the delta actually changes on the component's
    relations is matchable by *no* atom — each atom pins some position to
    a constant (or repeats a variable) in a way the fact contradicts —
    and the domain size is unchanged or irrelevant to the component.
    ``True`` merely means "cannot rule it out".
    """
    atom_variables = {
        term
        for atom in component.atoms
        for term in atom.terms
        if isinstance(term, Variable)
    }
    if component.variables - atom_variables and len(
        new_structure.domain
    ) != len(structure.domain):
        return True
    dependencies = {atom.relation for atom in component.atoms}
    for relation in delta.touched_relations() & dependencies:
        adds, removes = _effective_changes(structure, relation, delta)
        for fact in adds | removes:
            for atom in component.atoms:
                if atom.relation == relation and _atom_can_match(
                    atom, fact, structure
                ):
                    return True
    return False


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`DeltaEvaluator.apply` did."""

    version: int
    touched_relations: tuple[str, ...]
    domain_changed: bool
    invalidated: int
    migrated: int
    refreshed_artifacts: int
    fingerprint: str

    def describe(self) -> str:
        touched = ",".join(self.touched_relations) or "-"
        return (
            f"version={self.version} touched=[{touched}] "
            f"invalidated={self.invalidated} migrated={self.migrated} "
            f"refreshed_artifacts={self.refreshed_artifacts} "
            f"fingerprint={self.fingerprint}"
        )


class DeltaEvaluator:
    """A versioned database plus the caches that track it.

    ``cache`` may be shared (the service shares one per-server
    :class:`CountCache` across all named databases): keys embed relation
    fingerprints, so entries of other databases — or of *this* database
    at older versions — are never corrupted, only entries whose
    fingerprints match the pre-delta content are migrated or evicted.
    ``plan_cache`` defaults to the process-wide planner cache.
    """

    def __init__(
        self,
        structure: Structure,
        engine: str = "auto",
        cache: CountCache | None = None,
        plan_cache=None,
    ) -> None:
        self._structure = structure
        self._engine = engine
        self._cache = cache if cache is not None else CountCache()
        if plan_cache is None:
            from repro.planner.plan import default_plan_cache

            plan_cache = default_plan_cache()
        self._plan_cache = plan_cache
        self._version = 0
        self._lock = threading.Lock()

    @property
    def structure(self) -> Structure:
        return self._structure

    @property
    def version(self) -> int:
        return self._version

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def cache(self) -> CountCache:
        return self._cache

    # -- applying deltas --------------------------------------------------

    def _entry_is_current(self, key, structure: Structure) -> bool:
        """Does the entry's fingerprint vector match ``structure``?

        Distinguishes *this* database version's entries from entries of
        other databases (or older versions) sharing the cache; only
        current entries are migrated/evicted.  All three content parts
        must match — relations, constants, and domain size — or a
        coincidence on relation content alone could adopt an artifact
        whose constants this database never interpreted.
        """
        from repro.homomorphism.cache import _MISSING

        fingerprint = key[1]
        for name, fp in fingerprint[1]:
            if name in structure.schema:
                if fp != structure.relation_fingerprint(name):
                    return False
            elif fp is not None:
                return False
        for name, interpretation in fingerprint[2]:
            if structure.interprets(name):
                if interpretation != structure.constants[name]:
                    return False
            elif interpretation != _MISSING:
                return False
        if fingerprint[3] is not None and fingerprint[3] != len(
            structure.domain
        ):
            return False
        return True

    def _migrate_counts(
        self, delta: Delta, old: Structure, new: Structure
    ) -> tuple[int, int]:
        """Migrate/evict count-cache entries; ``(invalidated, migrated)``."""
        touched = delta.touched_relations()
        domain_changed = old.domain != new.domain
        invalidated = 0
        migrated = 0
        for key, value in self._cache.items():
            depends = key_relations(key)
            if depends is None:
                # Foreign key shape: conservatively drop.
                if self._cache.discard(key):
                    invalidated += 1
                continue
            affected = bool(depends & touched) or (
                domain_changed and key_depends_on_domain(key)
            )
            if not affected:
                continue  # key unchanged, entry stays exact
            if not self._entry_is_current(key, old):
                continue  # another database's (or version's) entry
            component = key[0]
            if not delta_affects(component, delta, old, new):
                new_key = (
                    component,
                    component_fingerprint(component, new),
                    key[2],
                )
                self._cache.store(new_key, value)
                self._cache.discard(key)
                migrated += 1
            elif self._cache.discard(key):
                invalidated += 1
        return invalidated, migrated

    def _migrate_compiled(
        self, delta: Delta, old: Structure, new: Structure
    ) -> int:
        """Incrementally refresh this database's compiled artifacts."""
        touched = delta.touched_relations()
        domain_changed = old.domain != new.domain
        refreshed = 0
        items = getattr(self._plan_cache, "compiled_items", None)
        if items is None:
            return 0
        for key, artifact in items():
            if not (isinstance(key, tuple) and len(key) == 2):
                continue
            component, fingerprint = key
            if not (
                isinstance(fingerprint, tuple)
                and len(fingerprint) == 4
                and fingerprint[0] == "§fp"
            ):
                continue
            depends = frozenset(name for name, _ in fingerprint[1])
            affected = bool(depends & touched) or (
                domain_changed and fingerprint[3] is not None
            )
            if not affected:
                continue  # new version hits the same key
            if not self._entry_is_current((component, fingerprint), old):
                continue
            new_artifact = refresh_component(artifact, new, delta)
            if new_artifact is None:
                continue  # pre-refresh artifact; a miss will recompile
            new_key = (component, component_fingerprint(component, new))
            self._plan_cache.store_compiled(new_key, new_artifact)
            refreshed += 1
        return refreshed

    def apply(self, delta: Delta) -> DeltaReport:
        """Advance the database by ``delta`` and re-home the caches.

        Work is relation-scoped throughout: untouched relations keep
        their fingerprints (and thus their cache keys), cache entries the
        constant-intersection refinement proves unaffected are re-keyed
        to the new version without recounting, compiled artifacts are
        refreshed index-incrementally, and only entries the delta may
        truly affect are evicted.
        """
        with self._lock:
            old = self._structure
            with span("delta.apply", relations=len(delta.touched_relations())):
                new = old.apply_delta(delta)
                invalidated, migrated = self._migrate_counts(delta, old, new)
                refreshed = self._migrate_compiled(delta, old, new)
                self._structure = new
                self._version += 1
                version = self._version
            obs_metrics.add("delta.applied")
            if invalidated:
                obs_metrics.add("delta.invalidations", invalidated)
            if migrated:
                obs_metrics.add("delta.migrated", migrated)
        return DeltaReport(
            version=version,
            touched_relations=tuple(sorted(delta.touched_relations())),
            domain_changed=old.domain != new.domain,
            invalidated=invalidated,
            migrated=migrated,
            refreshed_artifacts=refreshed,
            fingerprint=new.fingerprint(),
        )

    # -- evaluating -------------------------------------------------------

    def evaluate(self, query) -> int:
        """``count(query)`` on the current version, reusing cached factors.

        The Lemma-1 recombination happens inside
        :func:`repro.homomorphism.engine.count`: each connected
        component is looked up under its fingerprint key, so factors
        untouched since they were last counted are cache hits
        (``delta.reused_factors``) and only affected components are
        dispatched to an engine (``delta.affected_components``).
        """
        structure = self._structure
        hits_before = self._cache.hits
        misses_before = self._cache.misses
        from repro.homomorphism.engine import count

        with span("delta.evaluate", version=self._version):
            result = count(
                query, structure, engine=self._engine, cache=self._cache
            )
        reused = self._cache.hits - hits_before
        recounted = self._cache.misses - misses_before
        if reused:
            obs_metrics.add("delta.reused_factors", reused)
        if recounted:
            obs_metrics.add("delta.affected_components", recounted)
        return result

    def stats(self) -> dict:
        """A plain-data snapshot for reports and ``/healthz``."""
        return {
            "version": self._version,
            "engine": self._engine,
            "fingerprint": self._structure.fingerprint(),
            "fact_count": self._structure.fact_count(),
            "domain_size": len(self._structure.domain),
            "cache": self._cache.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"DeltaEvaluator(version={self._version}, "
            f"engine={self._engine!r}, {self._structure!r})"
        )
