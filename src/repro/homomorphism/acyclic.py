"""Yannakakis-style counting for acyclic conjunctive queries.

A third, independent counting engine specialized to α-acyclic queries —
the class whose bag-containment status [13] ties to open problems in
information theory, and the classical tractable island of query
evaluation.  The pipeline is textbook:

1. **GYO reduction** detects α-acyclicity and produces a *join tree*: the
   query's atoms are nodes, and for every variable the nodes containing it
   form a connected subtree.
2. **Weighted Yannakakis** counts homomorphisms bottom-up: each node
   starts with weight 1 per matching fact; a child's weights are
   aggregated over its private variables, grouped by the separator with
   its parent, and multiplied into the parent's matching facts.  The root
   total, times a domain factor for atom-free variables, is ``φ(D)``.

Complexity is ``O(|D|·|φ|)``-ish (linear-time combined complexity up to
sorting), versus the general engines' exponential worst case.  Queries
with inequalities or cyclic hypergraphs are rejected —
:func:`is_acyclic` lets callers route.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable

from repro.errors import EvaluationError
from repro.obs import metrics as obs_metrics
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Variable
from repro.relational.structure import Structure

__all__ = [
    "count_homomorphisms_acyclic",
    "is_acyclic",
    "join_tree",
    "matching_facts",
]

Element = Hashable


def join_tree(query: ConjunctiveQuery) -> list[tuple[int, int | None]] | None:
    """A join tree of the query's atoms via GYO reduction, or ``None``.

    Returns ``[(atom_index, parent_index_or_None), …]`` in a bottom-up
    (children before parents) order.  ``None`` means the query hypergraph
    is not α-acyclic.

    GYO: repeatedly remove an *ear* — an atom whose variables are either
    private to it or all contained in some other remaining atom (its
    *witness*, which becomes the parent).  Acyclic iff everything reduces.
    """
    atoms = list(query.atoms)
    if not atoms:
        return []
    variable_sets = [frozenset(atom.variables()) for atom in atoms]
    remaining = set(range(len(atoms)))
    order: list[tuple[int, int | None]] = []

    def occurrences() -> dict[Variable, int]:
        counts: Counter = Counter()
        for index in remaining:
            for variable in variable_sets[index]:
                counts[variable] += 1
        return counts

    while len(remaining) > 1:
        counts = occurrences()
        ear_found = False
        for index in sorted(remaining):
            shared = {
                variable
                for variable in variable_sets[index]
                if counts[variable] > 1
            }
            witness = None
            for other in sorted(remaining):
                if other == index:
                    continue
                if shared <= variable_sets[other]:
                    witness = other
                    break
            if witness is not None:
                order.append((index, witness))
                remaining.discard(index)
                ear_found = True
                break
        if not ear_found:
            return None
    root = next(iter(remaining))
    order.append((root, None))
    return order


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Is the query α-acyclic (GYO-reducible)?  Inequalities don't count."""
    return join_tree(query) is not None


def matching_facts(
    atom: Atom, structure: Structure
) -> list[tuple[dict[Variable, Element], tuple]]:
    """(variable binding, fact) pairs for facts consistent with the atom.

    Constants and repeated-variable positions are discharged here, so
    callers see only genuinely consistent facts.  Shared with the
    compiled engine's index builder (a relation absent from the schema
    is the empty relation, per the standard convention).
    """
    if atom.relation not in structure.schema:
        return []
    results = []
    for fact in structure.facts(atom.relation):
        binding: dict[Variable, Element] = {}
        ok = True
        for position, term in enumerate(atom.terms):
            value = fact[position]
            if isinstance(term, Constant):
                if structure.interpret(term.name) != value:
                    ok = False
                    break
            else:
                if binding.get(term, value) != value:
                    ok = False
                    break
                binding[term] = value
        if ok:
            results.append((binding, fact))
    return results


def count_homomorphisms_acyclic(
    query: ConjunctiveQuery, structure: Structure
) -> int:
    """``φ(D)`` for an α-acyclic, inequality-free CQ (Yannakakis counting).

    Raises :class:`~repro.errors.EvaluationError` when the query has
    inequalities or is not acyclic; agrees exactly with the general
    engines otherwise (enforced differentially by the test suite).
    """
    if query.has_inequalities():
        raise EvaluationError(
            "the acyclic engine handles CQs without inequalities"
        )
    for constant in query.constants:
        if not structure.interprets(constant.name):
            raise EvaluationError(
                f"structure does not interpret constant {constant.name!r}"
            )
    tree = join_tree(query)
    if tree is None:
        raise EvaluationError("query is not α-acyclic; use the general engines")
    atoms = list(query.atoms)
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter("ac.calls").inc()
    if not atoms:
        return 1

    # Per-atom tables: separator-binding → accumulated weight.  Processing
    # follows the GYO order (children first), so by the time a node is
    # processed every child message has been folded into it.
    variable_sets = [frozenset(atom.variables()) for atom in atoms]
    tables: dict[int, list[tuple[dict[Variable, Element], int]]] = {}
    for index, atom in enumerate(atoms):
        tables[index] = [
            (binding, 1) for binding, _ in matching_facts(atom, structure)
        ]
    if registry is not None:
        registry.counter("ac.atoms").inc(len(atoms))
        registry.counter("ac.facts_matched").inc(
            sum(len(rows) for rows in tables.values())
        )
        # One semi-join fold per non-root node of the join tree.
        registry.counter("ac.join_passes").inc(len(tree) - 1)

    total = None
    for index, parent in tree:
        rows = tables[index]
        if parent is None:
            # Root: aggregate everything.
            total = sum(weight for _, weight in rows)
            break
        separator = variable_sets[index] & variable_sets[parent]
        # Aggregate the child over its private variables.
        message: dict[tuple, int] = {}
        for binding, weight in rows:
            key = tuple(sorted((v.name, binding[v]) for v in separator))
            message[key] = message.get(key, 0) + weight
        # Fold into the parent (a parent row with no matching child rows
        # dies — the child atom is unsatisfiable under that binding).
        folded: list[tuple[dict[Variable, Element], int]] = []
        for binding, weight in tables[parent]:
            key = tuple(sorted((v.name, binding[v]) for v in separator))
            factor = message.get(key, 0)
            if factor:
                folded.append((binding, weight * factor))
        tables[parent] = folded

    assert total is not None
    if total == 0:
        return 0
    # Variables in no atom range freely over the domain.
    atom_variables = frozenset().union(*variable_sets) if variable_sets else frozenset()
    free = query.variables - atom_variables
    return total * len(structure.domain) ** len(free)
