"""Parallel batch evaluation: many independent ``count(φ, D)`` calls.

Every certification and counterexample-search loop in this reproduction
reduces to a pile of independent ``(query, structure)`` counting tasks.
:func:`count_many` evaluates such a pile as one unit:

1. **Decompose** every query into its connected components (for a
   :class:`~repro.queries.product.QueryProduct`, the components of each
   factor with the factor's exponent) — the unit of both caching and
   parallelism.
2. **Deduplicate** components through a canonicalization-keyed
   :class:`~repro.homomorphism.cache.CountCache` (α-equivalent components
   on the same structure share one evaluation), shared within the batch
   and — when a cache is passed in — across batches.
3. **Evaluate** the surviving unique components, serially for
   ``workers=1`` or fanned across a ``concurrent.futures`` process pool.
   With ``workers > 1`` the unique tasks are submitted *largest first*
   (descending :mod:`repro.planner` cost estimate — classic LPT bin
   packing), so one expensive component no longer serializes the tail of
   an arrival-ordered schedule.  Results are recombined in input order,
   so the output is deterministic and bit-identical to serial evaluation
   regardless of ``workers`` or submission order.

With ``engine="auto"`` every component is routed through the planner's
cost model individually, and the cache keys carry the *selected* engine —
an auto batch and an explicit batch that happen to pick the same engine
share cache entries, while differential runs across engines stay apart.

Under an active :func:`repro.obs.observe` scope the batch records
``batch.tasks`` / ``batch.evaluated`` / ``batch.calls`` counters, the
``batch.workers`` gauge, and (via the cache) ``cache.hits`` /
``cache.misses``.  Note that with ``workers > 1`` the per-engine counters
(``bt.*``, ``td.*``, ``ac.*``) are tallied inside the worker processes
and are *not* folded back into the parent's registry.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.errors import EvaluationError
from repro.homomorphism.cache import CountCache, component_cache_key
from repro.homomorphism.engine import Engine, _resolve_engine, count
from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery
from repro.queries.product import QueryProduct

__all__ = ["count_many"]

#: One decomposed unit of work: ``(component, structure, engine, use_ie)``.
_Task = tuple


def _count_component(task: _Task) -> int:
    """Evaluate one connected component (top-level, hence picklable)."""
    component, structure, engine, use_inclusion_exclusion = task
    return count(
        component,
        structure,
        engine=engine,
        use_inclusion_exclusion=use_inclusion_exclusion,
    )


def _component_terms(query):
    """Yield ``(component, exponent)`` pairs whose counts multiply to φ(D)."""
    if isinstance(query, QueryProduct):
        for factor, exponent in query:
            for component in factor.connected_components():
                yield component, exponent
    elif isinstance(query, ConjunctiveQuery):
        for component in query.connected_components():
            yield component, 1
    else:
        raise EvaluationError(
            f"cannot evaluate object of type {type(query).__name__}"
        )


def _evaluate_schedule(
    schedule: Sequence[_Task],
    workers: int,
    registry,
    costs: Sequence[float] | None = None,
) -> list[int]:
    """Evaluate unique tasks; pool for ``workers > 1``, largest first.

    ``costs`` (planner estimates, parallel to ``schedule``) reorder pool
    submission to descending cost — longest-processing-time-first bin
    packing — while results are always returned in schedule order.
    """
    if workers == 1 or len(schedule) <= 1:
        return [_count_component(task) for task in schedule]
    order = list(range(len(schedule)))
    if costs is not None:
        order.sort(key=lambda index: (-costs[index], index))
        if registry is not None:
            registry.counter("batch.cost_ordered").inc()
    max_workers = min(workers, len(schedule))
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            chunksize = max(1, len(schedule) // (4 * max_workers))
            mapped = list(
                pool.map(
                    _count_component,
                    [schedule[index] for index in order],
                    chunksize=chunksize,
                )
            )
    except (OSError, ImportError):
        # Pool-less environments (no fork, no semaphores) degrade to the
        # serial path rather than failing the whole batch.
        if registry is not None:
            registry.counter("batch.pool_fallbacks").inc()
        return [_count_component(task) for task in schedule]
    results: list[int] = [0] * len(schedule)
    for position, index in enumerate(order):
        results[index] = mapped[position]
    return results


def count_many(
    pairs: Iterable[tuple],
    engine: Engine = "backtracking",
    workers: int = 1,
    cache: CountCache | bool | None = None,
    use_inclusion_exclusion: bool = False,
) -> list[int]:
    """``[φ(D) for φ, D in pairs]`` as one deduplicated, parallel batch.

    ``pairs`` is a sequence of ``(query, structure)`` tasks; each query is
    a :class:`~repro.queries.cq.ConjunctiveQuery` or factorized
    :class:`~repro.queries.product.QueryProduct`.  Results come back in
    input order and are bit-identical to calling
    :func:`repro.homomorphism.engine.count` on each pair serially.

    ``engine`` may be ``"auto"``: each component is assigned the cheapest
    safe engine by the :mod:`repro.planner` cost model, and with
    ``workers > 1`` the same cost estimates schedule the pool largest
    task first (explicit engines are estimated for scheduling too).

    ``cache`` controls component-count reuse:

    * ``None`` (default) — a fresh :class:`CountCache` shared within this
      batch only;
    * a :class:`CountCache` — shared with the caller (and thus across
      batches);
    * ``False`` — no reuse at all: every component task is evaluated
      independently (the honest baseline for differential tests).

    ``workers=1`` evaluates serially in-process; ``workers > 1`` fans the
    unique component tasks across a process pool (queries and structures
    must pickle, which all repro value objects do).
    """
    counts_fn = _resolve_engine(engine)  # fail fast on unknown engines
    del counts_fn
    if workers < 1:
        raise ValueError(f"count_many needs workers >= 1, got {workers}")
    pairs = list(pairs)
    registry = obs_metrics.active_registry()

    active_cache: CountCache | None
    if cache is None:
        active_cache = CountCache()
    elif cache is False:
        active_cache = None
    elif isinstance(cache, CountCache):
        active_cache = cache
    else:
        raise TypeError(
            f"cache must be a CountCache, None, or False; got {cache!r}"
        )

    # Planner hooks: with engine="auto" every component needs a selection;
    # with an explicit engine, cost estimates are only worth computing
    # when a pool is going to be packed with them.
    estimate_for_packing = workers > 1
    if engine == "auto" or estimate_for_packing:
        from repro.planner import default_plan_cache, estimate_cost, select_for

        plan_cache = default_plan_cache()

    #: ``("value", v)`` for resolved counts, ``("slot", i)`` for scheduled.
    per_pair: list[list[tuple[tuple, int]]] = []
    schedule: list[_Task] = []
    costs: list[float] = []  # planner estimates, parallel to ``schedule``
    pending: dict[tuple, int] = {}  # cache key -> schedule slot
    tasks = 0
    for query, structure in pairs:
        entries: list[tuple[tuple, int]] = []
        for component, exponent in _component_terms(query):
            tasks += 1
            if engine == "auto":
                step = select_for(component, structure)
                concrete, est_cost = step.engine, step.est_cost
            else:
                concrete = engine
                est_cost = 0.0
                if estimate_for_packing:
                    profile, _ = plan_cache.profile(component)
                    est_cost = estimate_cost(concrete, profile, structure)
            task: _Task = (
                component,
                structure,
                concrete,
                use_inclusion_exclusion,
            )
            if active_cache is None:
                entries.append((("slot", len(schedule)), exponent))
                schedule.append(task)
                costs.append(est_cost)
                continue
            key = component_cache_key(component, structure, concrete)
            if key in pending:
                active_cache.note_reuse()
                entries.append((("slot", pending[key]), exponent))
                continue
            hit = active_cache.lookup(key)
            if hit is not None:
                entries.append((("value", hit), exponent))
                continue
            pending[key] = len(schedule)
            entries.append((("slot", len(schedule)), exponent))
            schedule.append(task)
            costs.append(est_cost)
        per_pair.append(entries)

    results = _evaluate_schedule(
        schedule,
        workers,
        registry,
        costs=costs if estimate_for_packing else None,
    )

    if active_cache is not None:
        for key, slot in pending.items():
            active_cache.store(key, results[slot])

    if registry is not None:
        registry.counter("batch.calls").inc()
        registry.counter("batch.tasks").inc(tasks)
        registry.counter("batch.evaluated").inc(len(schedule))
        registry.gauge("batch.workers").set(workers)

    counts: list[int] = []
    for entries in per_pair:
        total = 1
        for reference, exponent in entries:
            kind, payload = reference
            value = payload if kind == "value" else results[payload]
            if value == 0:
                total = 0
                break
            total *= value**exponent
        counts.append(total)
    return counts
