"""Surjective query homomorphisms (the engine behind Lemma 12).

Lemma 12's proof rests on a simple but powerful observation: if there is an
*onto* mapping ``h`` from the variables of ``ρ_b`` to the variables of
``ρ_s`` which is a homomorphism of queries, then ``ρ_s(D) ≤ ρ_b(D)`` for
every database ``D`` (because ``g ↦ g∘h`` injects ``Hom(ρ_s, D)`` into
``Hom(ρ_b, D)``).

This module searches for such witnesses, which gives a *sound, decidable,
sufficient* condition for bag containment — one of the few general positive
tools available while ``QCP^bag_CQ`` remains open.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.homomorphism.backtracking import enumerate_homomorphisms
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Term, Variable

__all__ = [
    "query_homomorphisms",
    "find_surjective_homomorphism",
    "has_surjective_homomorphism",
]


def query_homomorphisms(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Iterator[Mapping[Variable, Term]]:
    """All homomorphisms of queries ``source → target``.

    A query homomorphism maps variables of ``source`` to *terms* of
    ``target`` (constants to themselves) such that every atom of ``source``
    becomes an atom of ``target``.  Implemented as structure homomorphisms
    into the canonical structure of ``target`` (Section 2.1 identifies
    queries with their canonical structures).

    Inequalities of ``source`` are required to map to syntactically
    distinct terms, a conservative reading sufficient for all uses in the
    paper (none of the Lemma 12-style arguments involve inequalities in the
    source).
    """
    canonical = target.canonical_structure()
    for assignment in enumerate_homomorphisms(source, canonical):
        yield dict(assignment)


def find_surjective_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Mapping[Variable, Term] | None:
    """A query homomorphism ``source → target`` onto ``Var(target)``.

    Returns the witness mapping, or ``None`` when none exists.  Lemma 12
    instantiates this with ``source = π_b`` and ``target = π_s``.
    """
    targets = frozenset(target.variables)
    for mapping in query_homomorphisms(source, target):
        image = {term for term in mapping.values() if isinstance(term, Variable)}
        if targets <= image:
            return mapping
    return None


def has_surjective_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> bool:
    """Does an onto query homomorphism ``source → target`` exist?

    When true, ``target(D) ≤ source(D)`` holds for **every** database ``D``
    (the observation opening the proof of Lemma 12).
    """
    return find_surjective_homomorphism(source, target) is not None
