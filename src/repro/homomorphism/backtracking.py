"""Backtracking homomorphism counting and enumeration.

The bag-semantics value of a boolean CQ is ``φ(D) = |Hom(φ, D)|``
(Section 2.1).  This module counts and enumerates such homomorphisms by an
*atom-directed* backtracking join:

* fully-bound atoms are constant-time hash checks and are discharged
  eagerly;
* otherwise the partially-bound atom with the fewest consistent facts is
  selected, and each consistent fact extends the assignment to **all** of
  the atom's variables at once;
* an atom whose unbound variables occur nowhere else contributes the
  *number* of its consistent facts instead of being enumerated (every
  consistent fact induces a distinct assignment of those private
  variables), which keeps the star-shaped queries of Section 4 cheap even
  when the counts are huge;
* subtree counts are memoized on the (open atoms, visible bound values)
  boundary, so sibling branches that cannot influence a subproblem share
  one evaluation — this is what makes the high-arity CYCLIQ gadgets of
  Section 3 tractable;
* variables constrained only by inequalities are counted at the end by
  direct enumeration over the active domain.

Counts are exact Python integers.
"""

from __future__ import annotations

import sys
from typing import Hashable, Iterator, Mapping

from repro.errors import ConstantError, EvaluationError
from repro.obs import metrics as obs_metrics
from repro.queries.atoms import Atom, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Term, Variable
from repro.relational.structure import Structure

__all__ = [
    "count_homomorphisms",
    "ensure_stack_for",
    "enumerate_homomorphisms",
    "exists_homomorphism",
    "is_homomorphism",
]

Element = Hashable
Assignment = dict[Variable, Element]

_UNBOUND = object()


def ensure_stack_for(query: ConjunctiveQuery) -> None:
    """Raise the interpreter recursion limit to fit this query's search.

    The search recurses once per atom plus once per inequality-only
    variable; long-ray queries (π_b's coefficient chains, Section 4.3) can
    run thousands of atoms deep.  Public: the compiled engine's closure
    chains recurse once per atom too and share this bound.
    """
    needed = 4 * (query.atom_count + query.variable_count) + 1_000
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)


class _ObsStats:
    """Local tallies for one counting run, flushed to the registry at exit.

    Hot-loop increments touch plain ints on this object (no locks, no
    context-var reads); :meth:`flush` folds them into the active
    registry's ``bt.*`` metrics once per :func:`count_homomorphisms`.
    """

    __slots__ = ("nodes", "facts_scanned", "memo_hits", "memo_misses", "depth", "max_depth")

    def __init__(self) -> None:
        self.nodes = 0
        self.facts_scanned = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.depth = 0
        self.max_depth = 0

    def flush(self, registry: obs_metrics.Registry, problem: "_Problem") -> None:
        registry.counter("bt.calls").inc()
        registry.counter("bt.nodes").inc(self.nodes)
        registry.counter("bt.facts_scanned").inc(self.facts_scanned)
        registry.counter("bt.memo_hits").inc(self.memo_hits)
        registry.counter("bt.memo_misses").inc(self.memo_misses)
        registry.counter("bt.memo_entries").inc(len(problem._subtree_cache))
        registry.gauge("bt.max_depth").set_max(self.max_depth)


class _Problem:
    """Preprocessed matching problem: query × structure.

    The three optimization flags exist for the ablation benchmarks (E14):
    production callers leave them on.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        structure: Structure,
        subtree_memo: bool = True,
        component_split: bool = True,
        private_counting: bool = True,
    ) -> None:
        self.query = query
        self.structure = structure
        self.subtree_memo = subtree_memo
        self.component_split = component_split
        self.private_counting = private_counting
        # Populated by count_homomorphisms when an obs registry is active;
        # None keeps the disabled fast path to one attribute load + test.
        self.obs: _ObsStats | None = None
        for constant in query.constants:
            if not structure.interprets(constant.name):
                raise ConstantError(
                    f"structure does not interpret constant {constant.name!r} "
                    f"used by the query"
                )
        for atom in query.atoms:
            if atom.relation not in structure.schema:
                # A relation the structure does not declare is interpreted
                # as empty — the standard convention, and what containment
                # tests across schemas (Chandra-Merlin) rely on.
                continue
            if structure.schema.arity(atom.relation) != atom.arity:
                raise EvaluationError(
                    f"arity mismatch for relation {atom.relation!r}: query "
                    f"uses {atom.arity}, structure declares "
                    f"{structure.schema.arity(atom.relation)}"
                )
        self.domain = tuple(sorted(structure.domain, key=repr))
        self.atoms = list(query.atoms)
        self.atom_index = {id(atom): i for i, atom in enumerate(self.atoms)}
        self.fact_sets: dict[str, frozenset[tuple]] = {
            atom.relation: (
                structure.facts(atom.relation)
                if atom.relation in structure.schema
                else frozenset()
            )
            for atom in self.atoms
        }
        self.fact_lists: dict[str, tuple[tuple, ...]] = {
            relation: tuple(facts) for relation, facts in self.fact_sets.items()
        }
        # Per-atom templates: constants pre-resolved, variable positions listed.
        self.templates: list[list] = []
        self.var_positions: list[tuple[tuple[int, Variable], ...]] = []
        self.variables_of_atom: list[frozenset[Variable]] = []
        for atom in self.atoms:
            template: list = []
            positions: list[tuple[int, Variable]] = []
            for index, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    template.append(structure.interpret(term.name))
                else:
                    template.append(_UNBOUND)
                    positions.append((index, term))
            self.templates.append(template)
            self.var_positions.append(tuple(positions))
            self.variables_of_atom.append(
                frozenset(variable for _, variable in positions)
            )
        self.occurrences: dict[Variable, int] = {v: 0 for v in query.variables}
        for variables in self.variables_of_atom:
            for variable in variables:
                self.occurrences[variable] += 1
        self.inequalities = list(query.inequalities)
        self.inequality_partners: dict[Variable, list[Inequality]] = {
            v: [] for v in query.variables
        }
        for inequality in self.inequalities:
            for variable in set(inequality.variables()):
                self.inequality_partners[variable].append(inequality)
        self.free_variables = tuple(
            sorted(v for v, n in self.occurrences.items() if n == 0)
        )
        self._match_cache: dict[tuple, tuple[tuple, ...]] = {}
        self._subtree_cache: dict[tuple, int] = {}
        self._relevant_cache: dict[tuple[int, ...], tuple[Variable, ...]] = {}
        # Integer variable ids: the component split runs in inner loops and
        # int hashing is far cheaper than term hashing.
        self.variable_id: dict[Variable, int] = {
            variable: index
            for index, variable in enumerate(sorted(query.variables))
        }
        self.atom_var_ids: list[tuple[int, ...]] = [
            tuple(self.variable_id[variable] for variable in variables)
            for variables in self.variables_of_atom
        ]
        self.bound_ids: set[int] = set()

    # -- term resolution -------------------------------------------------------

    def resolve(self, term: Term, assignment: Assignment) -> Element:
        """The term's current image, or the ``_UNBOUND`` sentinel."""
        if isinstance(term, Constant):
            return self.structure.interpret(term.name)
        return assignment.get(term, _UNBOUND)

    # -- atom matching -------------------------------------------------------------

    def partial_tuple(self, atom_id: int, assignment: Assignment) -> list:
        """The atom's value tuple with ``_UNBOUND`` at unbound positions."""
        values = list(self.templates[atom_id])
        for position, variable in self.var_positions[atom_id]:
            values[position] = assignment.get(variable, _UNBOUND)
        return values

    def consistent_facts(
        self, atom: Atom, assignment: Assignment
    ) -> tuple[tuple, ...]:
        """Facts of the atom's relation matching all resolved positions.

        Positions holding the same (unbound) variable must agree within the
        fact.  Results are cached per (atom, resolved-positions) context:
        during a count the same atom is re-examined under few distinct
        bindings but from many sibling branches.
        """
        atom_id = self.atom_index[id(atom)]
        resolved = self.partial_tuple(atom_id, assignment)
        cache_key = (atom_id, tuple(resolved))
        cached = self._match_cache.get(cache_key)
        if cached is not None:
            return cached
        if self.obs is not None:
            self.obs.facts_scanned += len(self.fact_lists[atom.relation])
        first_position: dict[Variable, int] = {}
        duplicate_checks: list[tuple[int, int]] = []
        for position, variable in self.var_positions[atom_id]:
            if resolved[position] is _UNBOUND:
                if variable in first_position:
                    duplicate_checks.append((first_position[variable], position))
                else:
                    first_position[variable] = position
        constrained = [
            (index, expected)
            for index, expected in enumerate(resolved)
            if expected is not _UNBOUND
        ]
        matches = []
        for fact in self.fact_lists[atom.relation]:
            if any(fact[index] != expected for index, expected in constrained):
                continue
            if any(fact[i] != fact[j] for i, j in duplicate_checks):
                continue
            matches.append(fact)
        result = tuple(matches)
        self._match_cache[cache_key] = result
        return result

    def extend_with_fact(
        self, atom: Atom, fact: tuple, assignment: Assignment
    ) -> list[Variable] | None:
        """Bind the atom's unbound variables to the fact's values.

        Returns the newly bound variables, or ``None`` when an inequality
        is violated (in which case nothing was bound).
        """
        atom_id = self.atom_index[id(atom)]
        newly_bound: list[Variable] = []
        for position, variable in self.var_positions[atom_id]:
            if variable not in assignment:
                assignment[variable] = fact[position]
                self.bound_ids.add(self.variable_id[variable])
                newly_bound.append(variable)
        for variable in newly_bound:
            for inequality in self.inequality_partners[variable]:
                left = self.resolve(inequality.left, assignment)
                right = self.resolve(inequality.right, assignment)
                if left is not _UNBOUND and right is not _UNBOUND and left == right:
                    self.retract(newly_bound, assignment)
                    return None
        return newly_bound

    def retract(self, newly_bound: list[Variable], assignment: Assignment) -> None:
        for variable in newly_bound:
            del assignment[variable]
            self.bound_ids.discard(self.variable_id[variable])

    # -- boundary signatures for memoization -----------------------------------------

    def relevant_variables(
        self, atom_indices: tuple[int, ...]
    ) -> tuple[Variable, ...]:
        """Variables whose current values a subtree over these atoms can see.

        The union of the atoms' variables, the inequality partners of those
        variables, and the partners of the globally atom-free variables —
        precomputed once per distinct atom set, so subtree cache keys cost
        one dict lookup per variable.
        """
        cached = self._relevant_cache.get(atom_indices)
        if cached is not None:
            return cached
        # Insertion-ordered set; any order consistent within this problem
        # instance works as a cache-key layout.
        seen: dict[Variable, None] = {}
        for index in atom_indices:
            for variable in self.variables_of_atom[index]:
                seen.setdefault(variable, None)
        frontier = list(seen) + list(self.free_variables)
        for variable in frontier:
            for inequality in self.inequality_partners[variable]:
                for term in (inequality.left, inequality.right):
                    if isinstance(term, Variable):
                        seen.setdefault(term, None)
        result = tuple(seen)
        self._relevant_cache[atom_indices] = result
        return result

    # -- ground part ---------------------------------------------------------------------

    def ground_part_holds(self) -> bool:
        """Variable-free atoms and inequalities must hold outright."""
        for atom_id, atom in enumerate(self.atoms):
            if not self.var_positions[atom_id]:
                values = tuple(self.templates[atom_id])
                if values not in self.fact_sets[atom.relation]:
                    return False
        for inequality in self.inequalities:
            if not any(True for _ in inequality.variables()):
                if self.structure.interpret(
                    inequality.left.name
                ) == self.structure.interpret(inequality.right.name):
                    return False
        return True


def _split_atoms(
    problem: _Problem, atoms: list[Atom], assignment: Assignment
) -> list[Atom] | None:
    """The still-open atoms; ``None`` when a fully-bound atom fails."""
    open_atoms: list[Atom] = []
    for atom in atoms:
        atom_id = problem.atom_index[id(atom)]
        values = list(problem.templates[atom_id])
        bound = True
        for position, variable in problem.var_positions[atom_id]:
            value = assignment.get(variable, _UNBOUND)
            if value is _UNBOUND:
                bound = False
                break
            values[position] = value
        if bound:
            if tuple(values) not in problem.fact_sets[atom.relation]:
                return None
        else:
            open_atoms.append(atom)
    return open_atoms


def _select_atom(
    problem: _Problem, open_atoms: list[Atom], assignment: Assignment
) -> tuple[Atom, tuple[tuple, ...]]:
    """The open atom with the fewest consistent facts (fail-first)."""
    best: tuple[Atom, tuple[tuple, ...]] | None = None
    for atom in open_atoms:
        matches = problem.consistent_facts(atom, assignment)
        if best is None or len(matches) < len(best[1]):
            best = (atom, matches)
            if len(matches) <= 1:
                # Nothing beats a forced (or failed) atom; stop scanning.
                break
    assert best is not None
    return best


def _is_private(
    problem: _Problem,
    atom: Atom,
    open_atoms: list[Atom],
    assignment: Assignment,
) -> bool:
    """Do the atom's unbound variables occur in no other open atom and no
    inequality?  Then its consistent facts can be counted, not enumerated."""
    atom_id = problem.atom_index[id(atom)]
    unbound = {
        variable
        for variable in problem.variables_of_atom[atom_id]
        if variable not in assignment
    }
    if not unbound:
        return True
    for variable in unbound:
        if problem.inequality_partners[variable]:
            return False
    for other in open_atoms:
        if other is atom:
            continue
        other_id = problem.atom_index[id(other)]
        if problem.variables_of_atom[other_id] & unbound:
            return False
    return True


def _free_variable_count(
    problem: _Problem, assignment: Assignment, variables: list[Variable]
) -> int:
    """Assignments for variables constrained only by inequalities.

    Counted by plain enumeration over the domain (the inequality graph on
    such variables is tiny in practice).
    """
    if not variables:
        return 1
    total = 0
    variable, rest = variables[0], variables[1:]
    for value in problem.domain:
        assignment[variable] = value
        violated = False
        for inequality in problem.inequality_partners[variable]:
            left = problem.resolve(inequality.left, assignment)
            right = problem.resolve(inequality.right, assignment)
            if left is not _UNBOUND and right is not _UNBOUND and left == right:
                violated = True
                break
        if not violated:
            total += _free_variable_count(problem, assignment, rest)
        del assignment[variable]
    return total


def _subtree_key(
    problem: _Problem, assignment: Assignment, atoms: list[Atom]
) -> tuple:
    """Cache key: the open atoms plus every bound value they can observe.

    A subtree's count depends only on which atoms remain, the bound values
    at their positions, and the bound values of inequality partners of the
    still-unbound variables — not on how the assignment got there.
    """
    indices = tuple(problem.atom_index[id(atom)] for atom in atoms)
    relevant = problem.relevant_variables(indices)
    values = tuple(assignment.get(variable, _UNBOUND) for variable in relevant)
    return (indices, values)


def _count(problem: _Problem, assignment: Assignment, atoms: list[Atom]) -> int:
    if not problem.subtree_memo:
        return _count_uncached(problem, assignment, atoms)
    key = _subtree_key(problem, assignment, atoms)
    cached = problem._subtree_cache.get(key)
    obs = problem.obs
    if cached is not None:
        if obs is not None:
            obs.memo_hits += 1
        return cached
    if obs is not None:
        obs.memo_misses += 1
    result = _count_uncached(problem, assignment, atoms)
    problem._subtree_cache[key] = result
    return result


def _open_components(
    problem: _Problem, open_atoms: list[Atom], assignment: Assignment
) -> list[list[Atom]]:
    """Partition open atoms into components sharing *unbound* variables.

    Bound variables no longer connect anything: once the star centre ``x``
    of π_b is fixed, each coefficient ray becomes its own independent
    subproblem whose counts multiply.  Without this split the search
    interleaves the rays and the memo keys blow up combinatorially.
    """
    parent: dict[int, int] = {}
    bound_ids = problem.bound_ids

    def find(vid: int) -> int:
        root = parent.get(vid, vid)
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(vid, vid) != vid:
            parent[vid], vid = root, parent[vid]
        return root

    anchor: list[int] = []
    isolated: list[list[Atom]] = []
    for atom in open_atoms:
        atom_id = problem.atom_index[id(atom)]
        unbound = [
            vid for vid in problem.atom_var_ids[atom_id] if vid not in bound_ids
        ]
        if not unbound:
            isolated.append([atom])
            anchor.append(-1)
            continue
        first = find(unbound[0])
        anchor.append(unbound[0])
        for vid in unbound[1:]:
            parent[find(vid)] = first
            first = find(first)
    groups: dict[int, list[Atom]] = {}
    for atom, vid in zip(open_atoms, anchor):
        if vid >= 0:
            groups.setdefault(find(vid), []).append(atom)
    return isolated + list(groups.values())


def _count_uncached(
    problem: _Problem, assignment: Assignment, atoms: list[Atom]
) -> int:
    obs = problem.obs
    if obs is None:
        return _count_node(problem, assignment, atoms)
    obs.nodes += 1
    obs.depth += 1
    if obs.depth > obs.max_depth:
        obs.max_depth = obs.depth
    try:
        return _count_node(problem, assignment, atoms)
    finally:
        obs.depth -= 1


def _count_node(
    problem: _Problem, assignment: Assignment, atoms: list[Atom]
) -> int:
    open_atoms = _split_atoms(problem, atoms, assignment)
    if open_atoms is None:
        return 0
    if not open_atoms:
        if not problem.inequalities:
            return 1
        free = [
            variable
            for variable in problem.free_variables
            if variable not in assignment
        ]
        return _free_variable_count(problem, assignment, free)
    if (
        problem.component_split
        and not problem.inequalities
        and len(open_atoms) > 1
    ):
        components = _open_components(problem, open_atoms, assignment)
        if len(components) > 1:
            total = 1
            for component in components:
                total *= _count(problem, assignment, component)
                if total == 0:
                    return 0
            return total
    atom, matches = _select_atom(problem, open_atoms, assignment)
    if not matches:
        return 0
    rest = [other for other in open_atoms if other is not atom]
    if problem.private_counting and _is_private(problem, atom, open_atoms, assignment):
        # Each consistent fact induces a distinct assignment of the atom's
        # private variables and constrains nothing else: count and multiply.
        tail = _count(problem, assignment, rest)
        if tail == 0:
            return 0
        return len(matches) * tail
    total = 0
    for fact in matches:
        newly_bound = problem.extend_with_fact(atom, fact, assignment)
        if newly_bound is None:
            continue
        total += _count(problem, assignment, rest)
        problem.retract(newly_bound, assignment)
    return total


def count_homomorphisms(
    query: ConjunctiveQuery,
    structure: Structure,
    subtree_memo: bool = True,
    component_split: bool = True,
    private_counting: bool = True,
) -> int:
    """``φ(D) = |Hom(φ, D)|`` by atom-directed backtracking.

    Exact for any boolean CQ with inequalities; returns a Python ``int``
    (arbitrary precision).  The keyword flags disable individual
    optimizations for ablation studies; results are identical either way.
    """
    ensure_stack_for(query)
    problem = _Problem(
        query,
        structure,
        subtree_memo=subtree_memo,
        component_split=component_split,
        private_counting=private_counting,
    )
    registry = obs_metrics.active_registry()
    if registry is not None:
        problem.obs = _ObsStats()
    try:
        if not problem.ground_part_holds():
            return 0
        open_atoms = [
            atom
            for atom_id, atom in enumerate(problem.atoms)
            if problem.var_positions[atom_id]
        ]
        result = _count(problem, {}, open_atoms)
        if not problem.inequalities and problem.free_variables:
            # Atom-free variables are unconstrained: each ranges over V_D.
            result *= len(problem.domain) ** len(problem.free_variables)
        return result
    finally:
        if problem.obs is not None:
            problem.obs.flush(registry, problem)


def _enumerate(
    problem: _Problem, assignment: Assignment, atoms: list[Atom]
) -> Iterator[Assignment]:
    open_atoms = _split_atoms(problem, atoms, assignment)
    if open_atoms is None:
        return
    if not open_atoms:
        free = sorted(
            variable
            for variable in problem.query.variables
            if variable not in assignment
        )
        yield from _enumerate_free(problem, assignment, free)
        return
    atom, matches = _select_atom(problem, open_atoms, assignment)
    rest = [other for other in open_atoms if other is not atom]
    for fact in matches:
        newly_bound = problem.extend_with_fact(atom, fact, assignment)
        if newly_bound is None:
            continue
        yield from _enumerate(problem, assignment, rest)
        problem.retract(newly_bound, assignment)


def _enumerate_free(
    problem: _Problem, assignment: Assignment, variables: list[Variable]
) -> Iterator[Assignment]:
    if not variables:
        yield dict(assignment)
        return
    variable, rest = variables[0], variables[1:]
    for value in problem.domain:
        assignment[variable] = value
        violated = False
        for inequality in problem.inequality_partners[variable]:
            left = problem.resolve(inequality.left, assignment)
            right = problem.resolve(inequality.right, assignment)
            if left is not _UNBOUND and right is not _UNBOUND and left == right:
                violated = True
                break
        if not violated:
            yield from _enumerate_free(problem, assignment, rest)
        del assignment[variable]
    return


def enumerate_homomorphisms(
    query: ConjunctiveQuery, structure: Structure
) -> Iterator[Assignment]:
    """Yield every homomorphism as a ``{Variable: element}`` dict.

    The constants' (fixed) images are not included in the dict.  The order
    of enumeration is deterministic for a given structure but otherwise
    unspecified.
    """
    ensure_stack_for(query)
    problem = _Problem(query, structure)
    if not problem.ground_part_holds():
        return
    open_atoms = [
        atom
        for atom_id, atom in enumerate(problem.atoms)
        if problem.var_positions[atom_id]
    ]
    yield from _enumerate(problem, {}, open_atoms)


def exists_homomorphism(query: ConjunctiveQuery, structure: Structure) -> bool:
    """``D ⊨ φ``: is ``Hom(φ, D)`` non-empty?  (Early-exit search.)"""
    for _ in enumerate_homomorphisms(query, structure):
        return True
    return False


def is_homomorphism(
    mapping: Mapping[Variable, Element],
    query: ConjunctiveQuery,
    structure: Structure,
) -> bool:
    """Validate a candidate assignment against every atom and inequality."""
    for variable in query.variables:
        if variable not in mapping:
            return False
        if mapping[variable] not in structure.domain:
            return False

    def image(term: Term) -> Element:
        if isinstance(term, Constant):
            return structure.interpret(term.name)
        return mapping[term]

    for atom in query.atoms:
        if atom.relation not in structure.schema:
            return False
        values = tuple(image(term) for term in atom.terms)
        if not structure.has_fact(atom.relation, values):
            return False
    for inequality in query.inequalities:
        if image(inequality.left) == image(inequality.right):
            return False
    return True
