"""Set-semantics containment (Chandra–Merlin) and bag-containment helpers.

Under set semantics, containment of boolean CQs is the classical
homomorphism test of Chandra and Merlin [2]: ``φ_s ⊑_set φ_b`` iff there is
a homomorphism from ``φ_b`` into the canonical structure of ``φ_s``.
Chaudhuri and Vardi [1] observed that this equivalence *fails* under bag
semantics — the starting point of the whole paper — so this module also
provides the refutation-style helpers used to compare the two semantics
empirically.
"""

from __future__ import annotations

from typing import Iterable

from repro.homomorphism.engine import count
from repro.queries.cq import ConjunctiveQuery
from repro.relational.structure import Structure

__all__ = [
    "set_contained",
    "bag_contained_on",
    "bag_counterexample_on",
]


def set_contained(phi_s: ConjunctiveQuery, phi_b: ConjunctiveQuery) -> bool:
    """Chandra–Merlin test: is ``φ_s ⊆ φ_b`` under **set** semantics?

    For boolean CQs without inequalities this is sound and complete:
    ``φ_s(D) ≤ φ_b(D)`` in {0,1}-semantics for all ``D`` iff
    ``Hom(φ_b, canonical(φ_s)) ≠ ∅``.  Queries with inequalities raise
    :class:`~repro.errors.QueryError` (the classical test does not apply
    to them).

    This thin form predates :mod:`repro.containment_set`, which it now
    delegates to; use :func:`repro.containment_set.cq_containment` for
    engine selection, caching, witnesses, and absence certificates.
    """
    from repro.containment_set import cq_contained

    return cq_contained(phi_s, phi_b, engine="backtracking")


def bag_contained_on(
    phi_s,
    phi_b,
    structures: Iterable[Structure],
    multiplier: int = 1,
    additive: int = 0,
) -> bool:
    """Check ``multiplier·φ_s(D) ≤ φ_b(D) + additive`` on given databases.

    The general inequality shape covers Theorems 1 (``c·φ_s ≤ φ_b``),
    2 (``c·φ_s ≤ φ_b + c'``) and 3/4 (``multiplier = 1``).  This is a
    *necessary-condition* check: a ``False`` refutes containment, a
    ``True`` only says the sample found no counterexample.
    """
    return bag_counterexample_on(
        phi_s, phi_b, structures, multiplier=multiplier, additive=additive
    ) is None


def bag_counterexample_on(
    phi_s,
    phi_b,
    structures: Iterable[Structure],
    multiplier: int = 1,
    additive: int = 0,
) -> Structure | None:
    """First ``D`` in ``structures`` with ``multiplier·φ_s(D) > φ_b(D) + additive``."""
    for structure in structures:
        if multiplier * count(phi_s, structure) > count(phi_b, structure) + additive:
            return structure
    return None
