"""Per-plan compilation: specialized evaluators for one (component, D).

The interpreted engines re-discover the same structure on every call: the
backtracking engine re-scans relation fact lists to find consistent
facts, and the Yannakakis engine re-groups dict-of-int weight tables —
even though the planner already knows each component's shape before
evaluation.  This module *compiles* a connected component against a
structure once and reuses the artifact:

* **Fact indexes** — for every atom, a hash map from bound-variable
  prefix tuples to the candidate extensions, built in one pass over the
  relation's facts.  Runtime candidate discovery becomes one dict lookup
  instead of a fact-list scan.
* **Closure chains** (cyclic components) — the chosen variable order is
  baked into a flat chain of specialized closures, one per atom, each
  hard-wired to its key slots and newly-bound slots.  No atom selection,
  no assignment dicts, no retraction bookkeeping at runtime.
* **Array-based semiring aggregation** (α-acyclic components) — the
  Yannakakis bottom-up count runs over parallel ``array('q')`` weight
  columns with precomputed group ids per join pass, instead of
  dict-of-int message tables.  Counts that overflow 64-bit storage
  transparently re-run on plain Python ``int`` columns
  (``compiled.overflow_fallbacks``), so results stay exact.

Artifacts are cached in the planner's :class:`~repro.planner.analyze.
PlanCache` keyed by ``(canonical component, structure)`` — α-equivalent
components on the same database share one compilation, exactly as their
counts share one evaluation in
:class:`~repro.homomorphism.cache.CountCache` — so warm service traffic
pays the compile once.

**Totality.**  :func:`count_homomorphisms_compiled` never raises where
the backtracking engine would not: components outside the specializer's
envelope (inequalities, uninterpreted constants, arity mismatches — see
:func:`compiled_supported`, mirrored by the planner's eligibility gates)
fall back to the interpreter, which raises exactly the interpreter's
error classes.  ``engine="compiled"`` is therefore a drop-in for the
default engine on *every* input, and the qa ``cross_engine`` oracle
enforces bit-identity differentially.
"""

from __future__ import annotations

from array import array
from typing import Callable, Hashable

from repro.errors import BagCQError
from repro.homomorphism.acyclic import join_tree, matching_facts
from repro.homomorphism.backtracking import count_homomorphisms, ensure_stack_for
from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Variable
from repro.relational.structure import Structure

__all__ = [
    "CompiledComponent",
    "compile_component",
    "compiled_supported",
    "count_homomorphisms_compiled",
    "refresh_component",
]

Element = Hashable


def compiled_supported(query: ConjunctiveQuery, structure: Structure) -> bool:
    """Is the component inside the specializer's envelope?

    The gates mirror :func:`repro.planner.cost.eligible_engines` (and the
    acyclic engine's preconditions, minus GYO-reducibility — the compiler
    handles cyclic shapes through the closure chain):

    * no inequalities — the index keys and closure chains assume pure
      relational joins;
    * every constant interpreted by the structure — the interpreter
      raises :class:`~repro.errors.ConstantError` here, and the fallback
      must preserve that class;
    * atom arities matching the structure's schema — ditto for
      :class:`~repro.errors.EvaluationError`.

    Outside the envelope :func:`count_homomorphisms_compiled` falls back
    to the interpreter rather than erroring.
    """
    if query.inequalities:
        return False
    for constant in query.constants:
        if not structure.interprets(constant.name):
            return False
    for atom in query.atoms:
        if (
            atom.relation in structure.schema
            and structure.schema.arity(atom.relation) != atom.arity
        ):
            return False
    return True


def _facts_of(structure: Structure, relation: str) -> tuple[tuple, ...]:
    """The relation's facts, with missing relations interpreted as empty."""
    if relation not in structure.schema:
        return ()
    return tuple(structure.facts(relation))


class CompiledComponent:
    """One compiled evaluator: ``run()`` returns the exact count.

    ``mode`` records which specialization was selected (``"acyclic"`` for
    the array-semiring Yannakakis pass, ``"chain"`` for the baked
    backtracking closure chain) and ``indexed_facts`` how many facts the
    compile pass indexed — both surfaced through the ``compiled.*``
    observability counters and useful in tests.

    ``refresh(new_structure, delta)`` produces a new artifact for a
    structure that differs from the compiled one *exactly* by ``delta``
    (same schema, same constants): per-relation fact indexes of untouched
    relations are shared, touched chain indexes are patched in
    O(|delta|), and only join passes adjacent to a touched relation are
    regrouped.  The original artifact is never mutated — cache entries
    for the old database version stay valid.
    """

    __slots__ = ("mode", "indexed_facts", "_run", "_refresh")

    def __init__(
        self,
        mode: str,
        indexed_facts: int,
        run: Callable[[], int],
        refresh: Callable[[Structure, "object"], "CompiledComponent"] | None = None,
    ) -> None:
        self.mode = mode
        self.indexed_facts = indexed_facts
        self._run = run
        self._refresh = refresh

    def run(self) -> int:
        return self._run()

    def refresh(self, structure: Structure, delta) -> "CompiledComponent | None":
        """An equivalent artifact for ``structure``, or ``None``.

        ``structure`` must be the compiled structure with ``delta``
        applied.  Returns ``None`` when the artifact does not support
        incremental refresh (callers then recompile from scratch).
        """
        if self._refresh is None:
            return None
        return self._refresh(structure, delta)

    def __repr__(self) -> str:
        return (
            f"CompiledComponent(mode={self.mode!r}, "
            f"indexed_facts={self.indexed_facts})"
        )


# -- acyclic components: array-based semiring aggregation ---------------------


def _atom_rows(
    atom, structure: Structure
) -> tuple[tuple[Variable, ...], list[tuple]]:
    """``(variable order, rows)``: one value tuple per consistent fact.

    The variable order is the atom's first-occurrence order; each row
    holds the binding's values in that order.  Consistency (constants,
    repeated-variable positions) is discharged at compile time by the
    acyclic engine's :func:`~repro.homomorphism.acyclic.matching_facts`.
    """
    variables: list[Variable] = []
    seen: set[Variable] = set()
    for term in atom.terms:
        if not isinstance(term, Constant) and term not in seen:
            seen.add(term)
            variables.append(term)
    order = tuple(variables)
    rows = [
        tuple(binding[variable] for variable in order)
        for binding, _ in matching_facts(atom, structure)
    ]
    return order, rows


def _int_column(length: int, fill: int) -> list[int]:
    return [fill] * length


def _machine_column(length: int, fill: int):
    return array("q", [fill]) * length if length else array("q")


def _compile_acyclic(
    query: ConjunctiveQuery,
    structure: Structure,
    tree: list[tuple[int, int | None]],
    prior: tuple | None = None,
    touched: frozenset[str] = frozenset(),
) -> CompiledComponent:
    """Yannakakis counting with all grouping resolved at compile time.

    Every bottom-up join pass is reduced to two precomputed group-id
    vectors: child row → accumulator slot, parent row → accumulator slot
    (or ``-1`` when the parent's separator binding matches no child row).
    The runtime is then pure array arithmetic — scatter-add the child
    weights, multiply them into the parent — over whichever column type
    the counts fit in.

    ``prior`` (a previous compile's ``(var_orders, all_rows, passes)``)
    with ``touched`` enables incremental refresh: atoms of untouched
    relations reuse their row tables, and passes whose endpoints are both
    untouched reuse their group vectors verbatim.
    """
    atoms = list(query.atoms)
    prior_rows = prior[1] if prior is not None else None
    prior_passes = (
        {(p[0], p[1]): p for p in prior[2]} if prior is not None else {}
    )
    var_orders: list[tuple[Variable, ...]] = []
    all_rows: list[list[tuple]] = []
    indexed = 0
    for position, atom in enumerate(atoms):
        if prior_rows is not None and atom.relation not in touched:
            order = prior[0][position]
            rows = prior_rows[position]
        else:
            order, rows = _atom_rows(atom, structure)
            if prior_rows is not None:
                obs_metrics.add("compiled.index_refreshes")
        var_orders.append(order)
        all_rows.append(rows)
        indexed += len(rows)

    #: Per pass: (child, parent, child_groups, parent_groups, group_count).
    passes: list[tuple[int, int, array, array, int]] = []
    root = tree[-1][0] if tree else None
    for index, parent in tree:
        if parent is None:
            root = index
            continue
        if (
            prior_rows is not None
            and atoms[index].relation not in touched
            and atoms[parent].relation not in touched
            and (index, parent) in prior_passes
        ):
            passes.append(prior_passes[(index, parent)])
            continue
        separator = sorted(
            set(var_orders[index]) & set(var_orders[parent]),
            key=lambda variable: variable.name,
        )
        child_take = tuple(var_orders[index].index(v) for v in separator)
        parent_take = tuple(var_orders[parent].index(v) for v in separator)
        groups: dict[tuple, int] = {}
        child_groups = array("l")
        for row in all_rows[index]:
            key = tuple(row[position] for position in child_take)
            child_groups.append(groups.setdefault(key, len(groups)))
        parent_groups = array("l")
        for row in all_rows[parent]:
            key = tuple(row[position] for position in parent_take)
            parent_groups.append(groups.get(key, -1))
        passes.append((index, parent, child_groups, parent_groups, len(groups)))

    row_counts = tuple(len(rows) for rows in all_rows)
    atom_variables: set[Variable] = set()
    for order in var_orders:
        atom_variables.update(order)
    free = len(query.variables - atom_variables)
    domain_size = len(structure.domain)

    def execute(make_column) -> int:
        weights = [make_column(count, 1) for count in row_counts]
        for child, parent, child_groups, parent_groups, group_count in passes:
            acc = make_column(group_count, 0)
            for group, weight in zip(child_groups, weights[child]):
                acc[group] += weight
            parent_weights = weights[parent]
            for position, group in enumerate(parent_groups):
                parent_weights[position] = (
                    parent_weights[position] * acc[group] if group >= 0 else 0
                )
        if root is None:
            return 1
        return sum(weights[root])

    def run() -> int:
        try:
            total = execute(_machine_column)
        except OverflowError:
            # Counts outgrew 64-bit columns; re-run on exact int columns.
            obs_metrics.add("compiled.overflow_fallbacks")
            total = execute(_int_column)
        if total == 0:
            return 0
        return total * domain_size**free

    state = (tuple(var_orders), tuple(all_rows), tuple(passes))

    def refresh(new_structure: Structure, delta) -> CompiledComponent:
        return _compile_acyclic(
            query, new_structure, tree, state, delta.touched_relations()
        )

    return CompiledComponent("acyclic", indexed, run, refresh)


# -- cyclic components: baked closure chains ----------------------------------


def _order_atoms(query: ConjunctiveQuery, structure: Structure) -> list:
    """A static join order: connected-first, small relations early.

    A greedy stand-in for the interpreter's dynamic fail-first selection:
    start from the atom with the fewest facts, then repeatedly take the
    atom with the most already-bound variables (maximally constrained ⇒
    smallest candidate buckets), breaking ties towards smaller relations
    and finally towards the query's stored atom order, which keeps the
    choice deterministic across α-equivalent copies.
    """
    remaining = list(range(len(query.atoms)))
    atoms = list(query.atoms)
    fact_counts = [len(_facts_of(structure, atom.relation)) for atom in atoms]
    atom_vars = [set(atom.variables()) for atom in atoms]
    bound: set[Variable] = set()
    order: list[int] = []
    while remaining:
        best = min(
            remaining,
            key=lambda index: (
                -len(atom_vars[index] & bound),
                fact_counts[index],
                index,
            ),
        )
        remaining.remove(best)
        bound |= atom_vars[best]
        order.append(best)
    return [atoms[index] for index in order]


#: One chain atom's compiled index plus the position metadata needed to
#: patch it incrementally: ``(key_positions, checks, duplicates, take,
#: key_slots, new_slots, index)``.
_ChainSpec = tuple


def _build_index(
    atom,
    structure: Structure,
    slot_of: dict[Variable, int],
) -> _ChainSpec:
    """The :data:`_ChainSpec` for one atom in the chain.

    ``index`` maps a tuple of already-bound values (at ``key_slots``, in
    position order) to the candidate extensions: the values the atom's
    newly-bound variables take, one entry per consistent fact.  Constants
    and repeated variables are discharged at build time.
    """
    key_positions: list[int] = []
    key_slots: list[int] = []
    checks: list[tuple[int, Element]] = []
    duplicates: list[tuple[int, int]] = []
    new_first: dict[Variable, int] = {}
    new_variables: list[Variable] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            checks.append((position, structure.interpret(term.name)))
        elif term in slot_of:
            key_positions.append(position)
            key_slots.append(slot_of[term])
        elif term in new_first:
            duplicates.append((new_first[term], position))
        else:
            new_first[term] = position
            new_variables.append(term)
    for variable in new_variables:
        slot_of[variable] = len(slot_of)
    new_slots = tuple(slot_of[variable] for variable in new_variables)
    take = tuple(new_first[variable] for variable in new_variables)
    index: dict = {}
    for fact in _facts_of(structure, atom.relation):
        if any(fact[position] != value for position, value in checks):
            continue
        if any(fact[i] != fact[j] for i, j in duplicates):
            continue
        key = tuple(fact[position] for position in key_positions)
        if len(take) == 1:
            index.setdefault(key, []).append(fact[take[0]])
        else:
            index.setdefault(key, []).append(
                tuple(fact[position] for position in take)
            )
    return (
        tuple(key_positions),
        tuple(checks),
        tuple(duplicates),
        take,
        tuple(key_slots),
        new_slots,
        index,
    )


def _fact_entry(spec: _ChainSpec, fact: tuple) -> tuple | None:
    """``(key, value)`` for a fact passing the spec's filters, else None."""
    key_positions, checks, duplicates, take = spec[0], spec[1], spec[2], spec[3]
    if any(fact[position] != value for position, value in checks):
        return None
    if any(fact[i] != fact[j] for i, j in duplicates):
        return None
    key = tuple(fact[position] for position in key_positions)
    if len(take) == 1:
        return key, fact[take[0]]
    return key, tuple(fact[position] for position in take)


def _patched_index(spec: _ChainSpec, adds, removes) -> tuple[_ChainSpec, int]:
    """A copy of the spec with ``adds``/``removes`` applied to its index.

    ``adds`` and ``removes`` must be the *effective* fact changes (adds
    absent before, removes present before).  Copy-on-write per bucket: the
    input spec — possibly still live under the old database version's
    cache key — is never mutated.  Returns the patched spec and the net
    change in indexed entries.
    """
    index = spec[6]
    new_index = dict(index)
    touched_keys: set = set()

    def bucket(key) -> list:
        if key not in touched_keys:
            new_index[key] = list(new_index.get(key, ()))
            touched_keys.add(key)
        return new_index[key]

    net = 0
    for fact in adds:
        entry = _fact_entry(spec, fact)
        if entry is None:
            continue
        key, value = entry
        bucket(key).append(value)
        net += 1
    for fact in removes:
        entry = _fact_entry(spec, fact)
        if entry is None:
            continue
        key, value = entry
        values = bucket(key)
        values.remove(value)
        net -= 1
        if not values:
            del new_index[key]
    return spec[:6] + (new_index,), net


def _make_step(
    key_slots: tuple[int, ...],
    new_slots: tuple[int, ...],
    index: dict,
    private: bool,
    after: Callable,
) -> Callable:
    """One specialized closure of the chain, hard-wired to its slots.

    The common small shapes get dedicated bodies (scalar keys, single
    new variable, fully-bound membership checks); everything else runs
    the generic tuple path.  ``private`` atoms — whose new variables
    occur in no later atom — contribute the *size* of their candidate
    bucket instead of being enumerated, mirroring the interpreter's
    private-variable counting.
    """
    if not new_slots:
        # Membership check: every position bound (or constant); the
        # bucket is empty or a singleton by fact-set uniqueness.
        if len(key_slots) == 1:
            slot = key_slots[0]

            def step(env, _index=index, _after=after, _slot=slot):
                return _after(env) if (env[_slot],) in _index else 0

        else:

            def step(env, _index=index, _after=after, _slots=key_slots):
                return (
                    _after(env)
                    if tuple(env[slot] for slot in _slots) in _index
                    else 0
                )

        return step
    if private:
        counts = {key: len(bucket) for key, bucket in index.items()}
        if not key_slots:
            factor = counts.get((), 0)

            def step(env, _factor=factor, _after=after):
                return _factor * _after(env) if _factor else 0

        elif len(key_slots) == 1:
            slot = key_slots[0]

            def step(env, _counts=counts, _after=after, _slot=slot):
                factor = _counts.get((env[_slot],), 0)
                return factor * _after(env) if factor else 0

        else:

            def step(env, _counts=counts, _after=after, _slots=key_slots):
                factor = _counts.get(tuple(env[slot] for slot in _slots), 0)
                return factor * _after(env) if factor else 0

        return step
    if len(new_slots) == 1:
        write = new_slots[0]
        if not key_slots:
            bucket = index.get((), ())

            def step(env, _bucket=bucket, _after=after, _write=write):
                total = 0
                for value in _bucket:
                    env[_write] = value
                    total += _after(env)
                return total

        elif len(key_slots) == 1:
            slot = key_slots[0]

            def step(env, _index=index, _after=after, _slot=slot, _write=write):
                bucket = _index.get((env[_slot],))
                if bucket is None:
                    return 0
                total = 0
                for value in bucket:
                    env[_write] = value
                    total += _after(env)
                return total

        else:

            def step(
                env, _index=index, _after=after, _slots=key_slots, _write=write
            ):
                bucket = _index.get(tuple(env[slot] for slot in _slots))
                if bucket is None:
                    return 0
                total = 0
                for value in bucket:
                    env[_write] = value
                    total += _after(env)
                return total

        return step

    def step(
        env, _index=index, _after=after, _slots=key_slots, _writes=new_slots
    ):
        bucket = _index.get(tuple(env[slot] for slot in _slots))
        if bucket is None:
            return 0
        total = 0
        for values in bucket:
            for write, value in zip(_writes, values):
                env[write] = value
            total += _after(env)
        return total

    return step


def _effective_changes(
    structure: Structure, relation: str, delta
) -> tuple[set, set]:
    """``(adds, removes)`` the delta actually performs on one relation.

    Mirrors :meth:`Structure.apply_delta`'s lenient semantics in
    O(|delta|): inserts of present facts and deletes of absent facts drop
    out, and a fact both inserted and deleted ends up deleted.
    """
    raw_inserts = {
        tuple(values) for name, values in delta.inserts if name == relation
    }
    raw_deletes = {
        tuple(values) for name, values in delta.deletes if name == relation
    }
    adds = {
        fact
        for fact in raw_inserts - raw_deletes
        if not structure.has_fact(relation, fact)
    }
    removes = {
        fact for fact in raw_deletes if structure.has_fact(relation, fact)
    }
    return adds, removes


def _compile_chain(
    query: ConjunctiveQuery, structure: Structure
) -> CompiledComponent:
    """The baked backtracking chain for a (cyclic) component."""
    ordered = _order_atoms(query, structure)
    slot_of: dict[Variable, int] = {}
    specs: list[_ChainSpec] = []
    indexed = 0
    for atom in ordered:
        spec = _build_index(atom, structure, slot_of)
        specs.append(spec)
        indexed += sum(len(bucket) for bucket in spec[6].values())
    return _assemble_chain(
        query, tuple(ordered), tuple(specs), len(slot_of), structure, indexed
    )


def _assemble_chain(
    query: ConjunctiveQuery,
    ordered: tuple,
    specs: tuple,
    slots: int,
    structure: Structure,
    indexed: int,
) -> CompiledComponent:
    """Fold prebuilt per-atom specs into a runnable closure chain.

    Shared by :func:`_compile_chain` (fresh specs) and incremental
    refresh (patched specs): the closures themselves are cheap to remake;
    the fact indexes inside the specs are the expensive part.
    """
    # An atom is private when its new slots are read by no later step.
    privacy: list[bool] = [False] * len(specs)
    later_reads: set[int] = set()
    for position in range(len(specs) - 1, -1, -1):
        key_slots, new_slots = specs[position][4], specs[position][5]
        privacy[position] = not (set(new_slots) & later_reads)
        later_reads.update(key_slots)

    chain: Callable = lambda env: 1  # noqa: E731 — the chain's terminal
    for position in range(len(specs) - 1, -1, -1):
        key_slots, new_slots, index = (
            specs[position][4],
            specs[position][5],
            specs[position][6],
        )
        chain = _make_step(key_slots, new_slots, index, privacy[position], chain)

    domain_size = len(structure.domain)
    free = len(query.variables) - slots
    first = chain

    def run() -> int:
        total = first([None] * slots)
        if total == 0:
            return 0
        return total * domain_size**free

    def refresh(new_structure: Structure, delta) -> CompiledComponent:
        touched = delta.touched_relations()
        changes = {
            relation: _effective_changes(structure, relation, delta)
            for relation in touched
        }
        new_specs: list[_ChainSpec] = []
        new_indexed = indexed
        for atom, spec in zip(ordered, specs):
            if atom.relation in touched:
                adds, removes = changes[atom.relation]
                spec, net = _patched_index(spec, adds, removes)
                new_indexed += net
                obs_metrics.add("compiled.index_refreshes")
            new_specs.append(spec)
        return _assemble_chain(
            query,
            ordered,
            tuple(new_specs),
            slots,
            new_structure,
            new_indexed,
        )

    return CompiledComponent("chain", indexed, run, refresh)


# -- the public engine --------------------------------------------------------


def compile_component(
    query: ConjunctiveQuery, structure: Structure
) -> CompiledComponent:
    """Compile one supported component against one structure.

    Picks the array-semiring Yannakakis evaluator for α-acyclic shapes
    and the closure chain otherwise.  Callers are expected to have
    checked :func:`compiled_supported`; this function assumes the
    envelope holds.
    """
    obs_metrics.add("plan.compile.builds")
    tree = join_tree(query)
    if tree is not None:
        artifact = _compile_acyclic(query, structure, tree)
    else:
        artifact = _compile_chain(query, structure)
    obs_metrics.add("compiled.indexed_facts", artifact.indexed_facts)
    return artifact


def refresh_component(
    artifact: CompiledComponent, structure: Structure, delta
) -> CompiledComponent | None:
    """Incrementally re-target an artifact at a mutated database.

    ``structure`` must be the artifact's compiled structure with ``delta``
    applied (same schema, same constants — exactly what
    :meth:`Structure.apply_delta` guarantees).  Untouched per-relation
    indexes are shared between old and new artifact; touched chain
    indexes are patched in O(|delta|); only acyclic join passes adjacent
    to a touched relation are regrouped.  Returns ``None`` when the
    artifact predates refresh support — or when refreshing raises (e.g.
    the artifact's constants are not interpreted by ``structure``, which
    can happen when fingerprint coincidence misattributes an artifact to
    this database) — so callers fall back to recompiling on the next
    miss.  Successful refreshes count as ``compiled.artifact_refreshes``.
    """
    try:
        refreshed = artifact.refresh(structure, delta)
    except BagCQError:
        return None
    if refreshed is not None:
        obs_metrics.add("compiled.artifact_refreshes")
    return refreshed


def count_homomorphisms_compiled(
    query: ConjunctiveQuery, structure: Structure
) -> int:
    """``φ(D)`` via a compiled per-component evaluator.

    Bit-identical to :func:`~repro.homomorphism.backtracking.
    count_homomorphisms` on every input: supported components run the
    compiled artifact (cached across calls in the planner's
    :class:`~repro.planner.analyze.PlanCache`), everything else falls
    back to the interpreter — same counts, same error classes.
    """
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter("compiled.calls").inc()
    if not compiled_supported(query, structure):
        if registry is not None:
            registry.counter("compiled.fallbacks").inc()
        return count_homomorphisms(query, structure)
    ensure_stack_for(query)
    from repro.planner.plan import default_plan_cache

    artifact, was_hit = default_plan_cache().compiled_artifact(
        query, structure, compile_component
    )
    if registry is not None:
        registry.counter(f"compiled.{artifact.mode}_runs").inc()
        if was_hit:
            registry.counter("compiled.artifact_reuses").inc()
    return artifact.run()
