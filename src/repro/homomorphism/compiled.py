"""Per-plan compilation: specialized evaluators for one (component, D).

The interpreted engines re-discover the same structure on every call: the
backtracking engine re-scans relation fact lists to find consistent
facts, and the Yannakakis engine re-groups dict-of-int weight tables —
even though the planner already knows each component's shape before
evaluation.  This module *compiles* a connected component against a
structure once and reuses the artifact:

* **Fact indexes** — for every atom, a hash map from bound-variable
  prefix tuples to the candidate extensions, built in one pass over the
  relation's facts.  Runtime candidate discovery becomes one dict lookup
  instead of a fact-list scan.
* **Closure chains** (cyclic components) — the chosen variable order is
  baked into a flat chain of specialized closures, one per atom, each
  hard-wired to its key slots and newly-bound slots.  No atom selection,
  no assignment dicts, no retraction bookkeeping at runtime.
* **Array-based semiring aggregation** (α-acyclic components) — the
  Yannakakis bottom-up count runs over parallel ``array('q')`` weight
  columns with precomputed group ids per join pass, instead of
  dict-of-int message tables.  Counts that overflow 64-bit storage
  transparently re-run on plain Python ``int`` columns
  (``compiled.overflow_fallbacks``), so results stay exact.

Artifacts are cached in the planner's :class:`~repro.planner.analyze.
PlanCache` keyed by ``(canonical component, structure)`` — α-equivalent
components on the same database share one compilation, exactly as their
counts share one evaluation in
:class:`~repro.homomorphism.cache.CountCache` — so warm service traffic
pays the compile once.

**Totality.**  :func:`count_homomorphisms_compiled` never raises where
the backtracking engine would not: components outside the specializer's
envelope (inequalities, uninterpreted constants, arity mismatches — see
:func:`compiled_supported`, mirrored by the planner's eligibility gates)
fall back to the interpreter, which raises exactly the interpreter's
error classes.  ``engine="compiled"`` is therefore a drop-in for the
default engine on *every* input, and the qa ``cross_engine`` oracle
enforces bit-identity differentially.
"""

from __future__ import annotations

from array import array
from typing import Callable, Hashable

from repro.homomorphism.acyclic import join_tree, matching_facts
from repro.homomorphism.backtracking import count_homomorphisms, ensure_stack_for
from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Variable
from repro.relational.structure import Structure

__all__ = [
    "CompiledComponent",
    "compile_component",
    "compiled_supported",
    "count_homomorphisms_compiled",
]

Element = Hashable


def compiled_supported(query: ConjunctiveQuery, structure: Structure) -> bool:
    """Is the component inside the specializer's envelope?

    The gates mirror :func:`repro.planner.cost.eligible_engines` (and the
    acyclic engine's preconditions, minus GYO-reducibility — the compiler
    handles cyclic shapes through the closure chain):

    * no inequalities — the index keys and closure chains assume pure
      relational joins;
    * every constant interpreted by the structure — the interpreter
      raises :class:`~repro.errors.ConstantError` here, and the fallback
      must preserve that class;
    * atom arities matching the structure's schema — ditto for
      :class:`~repro.errors.EvaluationError`.

    Outside the envelope :func:`count_homomorphisms_compiled` falls back
    to the interpreter rather than erroring.
    """
    if query.inequalities:
        return False
    for constant in query.constants:
        if not structure.interprets(constant.name):
            return False
    for atom in query.atoms:
        if (
            atom.relation in structure.schema
            and structure.schema.arity(atom.relation) != atom.arity
        ):
            return False
    return True


def _facts_of(structure: Structure, relation: str) -> tuple[tuple, ...]:
    """The relation's facts, with missing relations interpreted as empty."""
    if relation not in structure.schema:
        return ()
    return tuple(structure.facts(relation))


class CompiledComponent:
    """One compiled evaluator: ``run()`` returns the exact count.

    ``mode`` records which specialization was selected (``"acyclic"`` for
    the array-semiring Yannakakis pass, ``"chain"`` for the baked
    backtracking closure chain) and ``indexed_facts`` how many facts the
    compile pass indexed — both surfaced through the ``compiled.*``
    observability counters and useful in tests.
    """

    __slots__ = ("mode", "indexed_facts", "_run")

    def __init__(self, mode: str, indexed_facts: int, run: Callable[[], int]) -> None:
        self.mode = mode
        self.indexed_facts = indexed_facts
        self._run = run

    def run(self) -> int:
        return self._run()

    def __repr__(self) -> str:
        return (
            f"CompiledComponent(mode={self.mode!r}, "
            f"indexed_facts={self.indexed_facts})"
        )


# -- acyclic components: array-based semiring aggregation ---------------------


def _atom_rows(
    atom, structure: Structure
) -> tuple[tuple[Variable, ...], list[tuple]]:
    """``(variable order, rows)``: one value tuple per consistent fact.

    The variable order is the atom's first-occurrence order; each row
    holds the binding's values in that order.  Consistency (constants,
    repeated-variable positions) is discharged at compile time by the
    acyclic engine's :func:`~repro.homomorphism.acyclic.matching_facts`.
    """
    variables: list[Variable] = []
    seen: set[Variable] = set()
    for term in atom.terms:
        if not isinstance(term, Constant) and term not in seen:
            seen.add(term)
            variables.append(term)
    order = tuple(variables)
    rows = [
        tuple(binding[variable] for variable in order)
        for binding, _ in matching_facts(atom, structure)
    ]
    return order, rows


def _int_column(length: int, fill: int) -> list[int]:
    return [fill] * length


def _machine_column(length: int, fill: int):
    return array("q", [fill]) * length if length else array("q")


def _compile_acyclic(
    query: ConjunctiveQuery,
    structure: Structure,
    tree: list[tuple[int, int | None]],
) -> CompiledComponent:
    """Yannakakis counting with all grouping resolved at compile time.

    Every bottom-up join pass is reduced to two precomputed group-id
    vectors: child row → accumulator slot, parent row → accumulator slot
    (or ``-1`` when the parent's separator binding matches no child row).
    The runtime is then pure array arithmetic — scatter-add the child
    weights, multiply them into the parent — over whichever column type
    the counts fit in.
    """
    atoms = list(query.atoms)
    var_orders: list[tuple[Variable, ...]] = []
    all_rows: list[list[tuple]] = []
    indexed = 0
    for atom in atoms:
        order, rows = _atom_rows(atom, structure)
        var_orders.append(order)
        all_rows.append(rows)
        indexed += len(rows)

    #: Per pass: (child, parent, child_groups, parent_groups, group_count).
    passes: list[tuple[int, int, array, array, int]] = []
    root = tree[-1][0] if tree else None
    for index, parent in tree:
        if parent is None:
            root = index
            continue
        separator = sorted(
            set(var_orders[index]) & set(var_orders[parent]),
            key=lambda variable: variable.name,
        )
        child_take = tuple(var_orders[index].index(v) for v in separator)
        parent_take = tuple(var_orders[parent].index(v) for v in separator)
        groups: dict[tuple, int] = {}
        child_groups = array("l")
        for row in all_rows[index]:
            key = tuple(row[position] for position in child_take)
            child_groups.append(groups.setdefault(key, len(groups)))
        parent_groups = array("l")
        for row in all_rows[parent]:
            key = tuple(row[position] for position in parent_take)
            parent_groups.append(groups.get(key, -1))
        passes.append((index, parent, child_groups, parent_groups, len(groups)))

    row_counts = tuple(len(rows) for rows in all_rows)
    atom_variables: set[Variable] = set()
    for order in var_orders:
        atom_variables.update(order)
    free = len(query.variables - atom_variables)
    domain_size = len(structure.domain)

    def execute(make_column) -> int:
        weights = [make_column(count, 1) for count in row_counts]
        for child, parent, child_groups, parent_groups, group_count in passes:
            acc = make_column(group_count, 0)
            for group, weight in zip(child_groups, weights[child]):
                acc[group] += weight
            parent_weights = weights[parent]
            for position, group in enumerate(parent_groups):
                parent_weights[position] = (
                    parent_weights[position] * acc[group] if group >= 0 else 0
                )
        if root is None:
            return 1
        return sum(weights[root])

    def run() -> int:
        try:
            total = execute(_machine_column)
        except OverflowError:
            # Counts outgrew 64-bit columns; re-run on exact int columns.
            obs_metrics.add("compiled.overflow_fallbacks")
            total = execute(_int_column)
        if total == 0:
            return 0
        return total * domain_size**free

    return CompiledComponent("acyclic", indexed, run)


# -- cyclic components: baked closure chains ----------------------------------


def _order_atoms(query: ConjunctiveQuery, structure: Structure) -> list:
    """A static join order: connected-first, small relations early.

    A greedy stand-in for the interpreter's dynamic fail-first selection:
    start from the atom with the fewest facts, then repeatedly take the
    atom with the most already-bound variables (maximally constrained ⇒
    smallest candidate buckets), breaking ties towards smaller relations
    and finally towards the query's stored atom order, which keeps the
    choice deterministic across α-equivalent copies.
    """
    remaining = list(range(len(query.atoms)))
    atoms = list(query.atoms)
    fact_counts = [len(_facts_of(structure, atom.relation)) for atom in atoms]
    atom_vars = [set(atom.variables()) for atom in atoms]
    bound: set[Variable] = set()
    order: list[int] = []
    while remaining:
        best = min(
            remaining,
            key=lambda index: (
                -len(atom_vars[index] & bound),
                fact_counts[index],
                index,
            ),
        )
        remaining.remove(best)
        bound |= atom_vars[best]
        order.append(best)
    return [atoms[index] for index in order]


def _build_index(
    atom,
    structure: Structure,
    slot_of: dict[Variable, int],
) -> tuple[tuple[int, ...], tuple[int, ...], dict]:
    """``(key_slots, new_slots, index)`` for one atom in the chain.

    ``index`` maps a tuple of already-bound values (at ``key_slots``, in
    position order) to the candidate extensions: the values the atom's
    newly-bound variables take, one entry per consistent fact.  Constants
    and repeated variables are discharged at build time.
    """
    key_positions: list[int] = []
    key_slots: list[int] = []
    checks: list[tuple[int, Element]] = []
    duplicates: list[tuple[int, int]] = []
    new_first: dict[Variable, int] = {}
    new_variables: list[Variable] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            checks.append((position, structure.interpret(term.name)))
        elif term in slot_of:
            key_positions.append(position)
            key_slots.append(slot_of[term])
        elif term in new_first:
            duplicates.append((new_first[term], position))
        else:
            new_first[term] = position
            new_variables.append(term)
    for variable in new_variables:
        slot_of[variable] = len(slot_of)
    new_slots = tuple(slot_of[variable] for variable in new_variables)
    take = tuple(new_first[variable] for variable in new_variables)
    index: dict = {}
    for fact in _facts_of(structure, atom.relation):
        if any(fact[position] != value for position, value in checks):
            continue
        if any(fact[i] != fact[j] for i, j in duplicates):
            continue
        key = tuple(fact[position] for position in key_positions)
        if len(take) == 1:
            index.setdefault(key, []).append(fact[take[0]])
        else:
            index.setdefault(key, []).append(
                tuple(fact[position] for position in take)
            )
    return tuple(key_slots), new_slots, index


def _make_step(
    key_slots: tuple[int, ...],
    new_slots: tuple[int, ...],
    index: dict,
    private: bool,
    after: Callable,
) -> Callable:
    """One specialized closure of the chain, hard-wired to its slots.

    The common small shapes get dedicated bodies (scalar keys, single
    new variable, fully-bound membership checks); everything else runs
    the generic tuple path.  ``private`` atoms — whose new variables
    occur in no later atom — contribute the *size* of their candidate
    bucket instead of being enumerated, mirroring the interpreter's
    private-variable counting.
    """
    if not new_slots:
        # Membership check: every position bound (or constant); the
        # bucket is empty or a singleton by fact-set uniqueness.
        if len(key_slots) == 1:
            slot = key_slots[0]

            def step(env, _index=index, _after=after, _slot=slot):
                return _after(env) if (env[_slot],) in _index else 0

        else:

            def step(env, _index=index, _after=after, _slots=key_slots):
                return (
                    _after(env)
                    if tuple(env[slot] for slot in _slots) in _index
                    else 0
                )

        return step
    if private:
        counts = {key: len(bucket) for key, bucket in index.items()}
        if not key_slots:
            factor = counts.get((), 0)

            def step(env, _factor=factor, _after=after):
                return _factor * _after(env) if _factor else 0

        elif len(key_slots) == 1:
            slot = key_slots[0]

            def step(env, _counts=counts, _after=after, _slot=slot):
                factor = _counts.get((env[_slot],), 0)
                return factor * _after(env) if factor else 0

        else:

            def step(env, _counts=counts, _after=after, _slots=key_slots):
                factor = _counts.get(tuple(env[slot] for slot in _slots), 0)
                return factor * _after(env) if factor else 0

        return step
    if len(new_slots) == 1:
        write = new_slots[0]
        if not key_slots:
            bucket = index.get((), ())

            def step(env, _bucket=bucket, _after=after, _write=write):
                total = 0
                for value in _bucket:
                    env[_write] = value
                    total += _after(env)
                return total

        elif len(key_slots) == 1:
            slot = key_slots[0]

            def step(env, _index=index, _after=after, _slot=slot, _write=write):
                bucket = _index.get((env[_slot],))
                if bucket is None:
                    return 0
                total = 0
                for value in bucket:
                    env[_write] = value
                    total += _after(env)
                return total

        else:

            def step(
                env, _index=index, _after=after, _slots=key_slots, _write=write
            ):
                bucket = _index.get(tuple(env[slot] for slot in _slots))
                if bucket is None:
                    return 0
                total = 0
                for value in bucket:
                    env[_write] = value
                    total += _after(env)
                return total

        return step

    def step(
        env, _index=index, _after=after, _slots=key_slots, _writes=new_slots
    ):
        bucket = _index.get(tuple(env[slot] for slot in _slots))
        if bucket is None:
            return 0
        total = 0
        for values in bucket:
            for write, value in zip(_writes, values):
                env[write] = value
            total += _after(env)
        return total

    return step


def _compile_chain(
    query: ConjunctiveQuery, structure: Structure
) -> CompiledComponent:
    """The baked backtracking chain for a (cyclic) component."""
    ordered = _order_atoms(query, structure)
    slot_of: dict[Variable, int] = {}
    built: list[tuple[tuple[int, ...], tuple[int, ...], dict]] = []
    indexed = 0
    for atom in ordered:
        key_slots, new_slots, index = _build_index(atom, structure, slot_of)
        built.append((key_slots, new_slots, index))
        indexed += sum(len(bucket) for bucket in index.values())
    # An atom is private when its new slots are read by no later step.
    later_reads: set[int] = set()
    privacy: list[bool] = [False] * len(built)
    for position in range(len(built) - 1, -1, -1):
        key_slots, new_slots, _ = built[position]
        privacy[position] = not (set(new_slots) & later_reads)
        later_reads.update(key_slots)

    chain: Callable = lambda env: 1  # noqa: E731 — the chain's terminal
    for position in range(len(built) - 1, -1, -1):
        key_slots, new_slots, index = built[position]
        chain = _make_step(key_slots, new_slots, index, privacy[position], chain)

    slots = len(slot_of)
    domain_size = len(structure.domain)
    free = len(query.variables) - slots
    first = chain

    def run() -> int:
        total = first([None] * slots)
        if total == 0:
            return 0
        return total * domain_size**free

    return CompiledComponent("chain", indexed, run)


# -- the public engine --------------------------------------------------------


def compile_component(
    query: ConjunctiveQuery, structure: Structure
) -> CompiledComponent:
    """Compile one supported component against one structure.

    Picks the array-semiring Yannakakis evaluator for α-acyclic shapes
    and the closure chain otherwise.  Callers are expected to have
    checked :func:`compiled_supported`; this function assumes the
    envelope holds.
    """
    obs_metrics.add("plan.compile.builds")
    tree = join_tree(query)
    if tree is not None:
        artifact = _compile_acyclic(query, structure, tree)
    else:
        artifact = _compile_chain(query, structure)
    obs_metrics.add("compiled.indexed_facts", artifact.indexed_facts)
    return artifact


def count_homomorphisms_compiled(
    query: ConjunctiveQuery, structure: Structure
) -> int:
    """``φ(D)`` via a compiled per-component evaluator.

    Bit-identical to :func:`~repro.homomorphism.backtracking.
    count_homomorphisms` on every input: supported components run the
    compiled artifact (cached across calls in the planner's
    :class:`~repro.planner.analyze.PlanCache`), everything else falls
    back to the interpreter — same counts, same error classes.
    """
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter("compiled.calls").inc()
    if not compiled_supported(query, structure):
        if registry is not None:
            registry.counter("compiled.fallbacks").inc()
        return count_homomorphisms(query, structure)
    ensure_stack_for(query)
    from repro.planner.plan import default_plan_cache

    artifact, was_hit = default_plan_cache().compiled_artifact(
        query, structure, compile_component
    )
    if registry is not None:
        registry.counter(f"compiled.{artifact.mode}_runs").inc()
        if was_hit:
            registry.counter("compiled.artifact_reuses").inc()
    return artifact.run()
