"""The Appendix B pipeline: from Hilbert's 10th problem to Lemma 11.

Given a polynomial ``Q`` with integer coefficients, Appendix B constructs a
Lemma 11 instance ``(c, P_s, P_b)`` such that ``Q`` has a root in ℕ iff the
Lemma 11 inequality fails for some valuation.  The steps (each one a method
below, all intermediate artifacts retained for inspection and testing):

* **B.2** Rename the variables of ``Q`` to ``ξ₂,…,ξ_n`` (reserving ``ξ₁``),
  square it (``Q' = Q²``), split into positive and negative parts, and set
  ``P₁ = Q'_- + 1``, ``P₂ = Q'_+``.  Lemma 25: ``Q(Ξ)=0 ⟺ P₁(Ξ) > P₂(Ξ)``.
* **B.3** Add ``P = Σ_{t∈T} t`` (over the union ``T`` of their monomials)
  to both, yielding ``P₁' , P₂'`` with a common monomial set.
* **B.4** Pad every monomial with a power of ``ξ₁`` to the common degree
  ``d = 1 + max degree`` (Lemmas 26–28 relate ``P''`` to ``P'``).
* **B.5** Let ``c = max(2, max coefficient of P₁'')`` and output
  ``P_s = P₁''``, ``P_b = c·P₂''``.

Lemma 29 then gives: ``∃Ξ. P₁(Ξ) > P₂(Ξ)`` iff
``∃Ξ'. c·P_s(Ξ') > Ξ'(ξ₁)^d·P_b(Ξ')``.

One engineering note: distinct monomials of ``T`` can *collide* after the
``ξ₁``-padding of B.4 (e.g. ``x₂`` and ``x₁x₂`` both pad to ``x₁²x₂`` when
``d = 3``).  Colliding monomials are merged by summing their coefficients
in both polynomials, which preserves the polynomials' values and every
Lemma 11 side condition; the test-suite checks the Lemma 29 equivalence on
instances that exercise this merge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolynomialError
from repro.polynomials.lemma11 import Lemma11Instance
from repro.polynomials.monomial import Monomial
from repro.polynomials.polynomial import Polynomial

__all__ = ["HilbertReduction", "hilbert_to_lemma11"]


@dataclass(frozen=True)
class HilbertReduction:
    """All artifacts of the Appendix B construction, in order of creation."""

    q_original: Polynomial
    q: Polynomial
    variable_renaming: dict[int, int]
    q_squared: Polynomial
    q_plus: Polynomial
    q_minus: Polynomial
    p1: Polynomial
    p2: Polynomial
    common: Polynomial
    p1_prime: Polynomial
    p2_prime: Polynomial
    d: int
    p1_doubleprime: Polynomial
    p2_doubleprime: Polynomial
    c: int
    instance: Lemma11Instance

    def q_has_root(self, valuation) -> bool:
        """``Q(Ξ) = 0`` for the given valuation of the *renamed* variables."""
        return self.q.evaluate(valuation) == 0

    def describe(self) -> str:
        """A step-by-step textual trace of the construction."""
        lines = [
            f"Q (input)           : {self.q_original}",
            f"Q (renamed to ξ2..) : {self.q}",
            f"Q' = Q^2            : {self.q_squared}",
            f"Q'_+                : {self.q_plus}",
            f"Q'_-                : {self.q_minus}",
            f"P1 = Q'_- + 1       : {self.p1}",
            f"P2 = Q'_+           : {self.p2}",
            f"P  = Σ t over T     : {self.common}",
            f"P1' = P1 + P        : {self.p1_prime}",
            f"P2' = P2 + P        : {self.p2_prime}",
            f"d  = 1 + max degree : {self.d}",
            f"P1'' (ξ1-padded)    : {self.p1_doubleprime}",
            f"P2'' (ξ1-padded)    : {self.p2_doubleprime}",
            f"c                   : {self.c}",
            f"P_s = P1''          : {self.instance.p_s}",
            f"P_b = c·P2''        : {self.instance.p_b}",
        ]
        return "\n".join(lines)


def hilbert_to_lemma11(q: Polynomial) -> HilbertReduction:
    """Run the full Appendix B pipeline on a Hilbert-10 polynomial ``Q``.

    >>> x, y = Polynomial.variable(1), Polynomial.variable(2)
    >>> reduction = hilbert_to_lemma11(x**2 - 2 * y**2 - 1)
    >>> reduction.instance.c >= 2
    True
    """
    # -- B.2: rename variables to ξ2.., square, split signs -----------------
    original_variables = sorted(q.variables)
    renaming = {old: new for new, old in enumerate(original_variables, start=2)}
    renamed = q.rename_variables(renaming)

    q_squared = renamed**2
    q_plus, q_minus = q_squared.split_signs()
    p1 = q_minus + 1
    p2 = q_plus

    # -- B.3: common monomial set ----------------------------------------------
    monomial_set = sorted(set(p1.monomials) | set(p2.monomials))
    common = Polynomial((monomial, 1) for monomial in monomial_set)
    p1_prime = p1 + common
    p2_prime = p2 + common

    # -- B.4: pad to common degree d with ξ1 ------------------------------------
    d = 1 + max(monomial.degree for monomial in monomial_set)
    padded: dict[Monomial, tuple[int, int]] = {}
    order: list[Monomial] = []
    for monomial in monomial_set:
        lifted = monomial.canonical().prepend_variable(1, d - monomial.degree)
        key = lifted.canonical()
        s_coefficient = p1_prime.coefficient(monomial)
        b_coefficient = p2_prime.coefficient(monomial)
        if key not in padded:
            order.append(key)
            padded[key] = (0, 0)
        s_old, b_old = padded[key]
        padded[key] = (s_old + s_coefficient, b_old + b_coefficient)

    ordered_monomials = tuple(
        Monomial((1,) * key.exponent_of(1) + tuple(i for i in key.indices if i != 1))
        for key in order
    )
    s_coefficients = tuple(padded[key][0] for key in order)
    p2_coefficients = tuple(padded[key][1] for key in order)

    p1_doubleprime = Polynomial(zip(ordered_monomials, s_coefficients))
    p2_doubleprime = Polynomial(zip(ordered_monomials, p2_coefficients))

    # -- B.5: scale P2'' so coefficients dominate ----------------------------------
    c = max(2, max(s_coefficients))
    b_coefficients = tuple(c * coefficient for coefficient in p2_coefficients)

    if any(coefficient < 1 for coefficient in s_coefficients):
        raise PolynomialError(
            "internal error: P1'' lost a monomial during padding"
        )

    instance = Lemma11Instance(
        c=c,
        monomials=ordered_monomials,
        s_coefficients=s_coefficients,
        b_coefficients=b_coefficients,
    )
    return HilbertReduction(
        q_original=q,
        q=renamed,
        variable_renaming=renaming,
        q_squared=q_squared,
        q_plus=q_plus,
        q_minus=q_minus,
        p1=p1,
        p2=p2,
        common=common,
        p1_prime=p1_prime,
        p2_prime=p2_prime,
        d=d,
        p1_doubleprime=p1_doubleprime,
        p2_doubleprime=p2_doubleprime,
        c=c,
        instance=instance,
    )
