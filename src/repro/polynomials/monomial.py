"""Monomials of numerical variables.

The paper's reductions (Lemma 11, Appendix B) manipulate polynomials of
*numerical variables* ``x₁, x₂, …, x_n`` ranging over ℕ.  A monomial here
is an **ordered** product of variables — the order matters because Lemma 11
requires ``x₁`` to occur as the *first* variable of every monomial, and the
Arena relation ``𝒫(n, d, m)`` of Section 4.4 records which variable is the
``d``-th factor of which monomial.

Variables are identified by positive integer indices (``1`` for ``x₁``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import PolynomialError

__all__ = ["Monomial"]

Valuation = Mapping[int, int]


@dataclass(frozen=True, order=True)
class Monomial:
    """An ordered product of numerical variables, e.g. ``x₁·x₂·x₂``.

    >>> t = Monomial((1, 2, 2))
    >>> t.degree
    3
    >>> t.evaluate({1: 5, 2: 3})
    45
    >>> str(t)
    'x1*x2^2'
    """

    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        for index in self.indices:
            if not isinstance(index, int) or index < 1:
                raise PolynomialError(
                    f"variable indices must be positive integers, got {index!r}"
                )

    @classmethod
    def constant(cls) -> "Monomial":
        """The empty product (degree 0)."""
        return cls(())

    @classmethod
    def of(cls, *indices: int) -> "Monomial":
        return cls(tuple(indices))

    @property
    def degree(self) -> int:
        return len(self.indices)

    @property
    def variables(self) -> frozenset[int]:
        return frozenset(self.indices)

    def exponent_of(self, index: int) -> int:
        return self.indices.count(index)

    def canonical(self) -> "Monomial":
        """The sorted form, used as a key for polynomial arithmetic.

        Two monomials denote the same product iff their canonical forms
        coincide; the *ordered* form is only significant inside Lemma 11
        instances.
        """
        return Monomial(tuple(sorted(self.indices)))

    def times(self, other: "Monomial") -> "Monomial":
        return Monomial(self.indices + other.indices)

    def prepend_variable(self, index: int, count: int = 1) -> "Monomial":
        """Prefix ``count`` occurrences of ``x_index`` (Appendix B.4)."""
        if count < 0:
            raise PolynomialError(f"cannot prepend {count} occurrences")
        return Monomial((index,) * count + self.indices)

    def evaluate(self, valuation: Valuation | Sequence[int]) -> int:
        """The value of the product under a valuation ``Ξ``.

        ``valuation`` is a mapping from variable index to ℕ, or a sequence
        where position ``i`` (0-based) holds the value of ``x_{i+1}``.
        """
        value = 1
        for index in self.indices:
            value *= _lookup(valuation, index)
        return value

    def __str__(self) -> str:
        if not self.indices:
            return "1"
        parts: list[str] = []
        i = 0
        while i < len(self.indices):
            index = self.indices[i]
            run = 1
            while i + run < len(self.indices) and self.indices[i + run] == index:
                run += 1
            parts.append(f"x{index}" if run == 1 else f"x{index}^{run}")
            i += run
        return "*".join(parts)


def _lookup(valuation: Valuation | Sequence[int], index: int) -> int:
    if isinstance(valuation, Mapping):
        try:
            value = valuation[index]
        except KeyError:
            raise PolynomialError(
                f"valuation does not assign variable x{index}"
            ) from None
    else:
        if index > len(valuation):
            raise PolynomialError(f"valuation does not assign variable x{index}")
        value = valuation[index - 1]
    if value < 0:
        raise PolynomialError(
            f"valuations range over the naturals; x{index} = {value}"
        )
    return value
