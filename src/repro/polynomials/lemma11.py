"""The normal form of Lemma 11: the source of undecidability.

Lemma 11 states that the following problem is undecidable.  Given a natural
number ``c ≥ 2`` and two polynomials ``P_s = Σ c_{s,m}·T_m`` and
``P_b = Σ c_{b,m}·T_m`` with natural coefficients such that

1. both sums range over the **same** monomials ``T_1 … T_𝗆``,
2. every monomial has the same degree ``d``,
3. ``x₁`` occurs as the **first** variable of each ``T_m``, and
4. ``1 ≤ c_{s,m} ≤ c_{b,m}`` for each ``m``,

does ``c·P_s(Ξ(x⃗)) ≤ Ξ(x₁)^d · P_b(Ξ(x⃗))`` hold for every valuation
``Ξ : {x₁,…,x_n} → ℕ``?

A :class:`Lemma11Instance` is a validated instance of this problem; it is
the direct input of the Theorem 1 reduction (Section 4) and the output of
the Appendix B pipeline (:mod:`repro.polynomials.hilbert`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import Lemma11ViolationError
from repro.polynomials.monomial import Monomial, Valuation
from repro.polynomials.polynomial import Polynomial

__all__ = ["Lemma11Instance"]


@dataclass(frozen=True)
class Lemma11Instance:
    """A validated instance ``(c, P_s, P_b)`` of the Lemma 11 problem.

    ``monomials`` holds the shared **ordered** monomials ``T_1 … T_𝗆``;
    ``s_coefficients[m]`` and ``b_coefficients[m]`` are the coefficients of
    ``T_{m+1}`` in ``P_s`` and ``P_b`` respectively.

    >>> inst = Lemma11Instance(
    ...     c=2,
    ...     monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
    ...     s_coefficients=(1, 2),
    ...     b_coefficients=(3, 2),
    ... )
    >>> inst.n, inst.m, inst.d
    (2, 2, 2)
    >>> inst.holds_for({1: 2, 2: 1})
    True
    >>> inst.holds_for({1: 1, 2: 1})
    False
    """

    c: int
    monomials: tuple[Monomial, ...]
    s_coefficients: tuple[int, ...]
    b_coefficients: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.c < 2:
            raise Lemma11ViolationError(f"Lemma 11 requires c >= 2, got {self.c}")
        if not self.monomials:
            raise Lemma11ViolationError("at least one monomial is required")
        if not (
            len(self.monomials)
            == len(self.s_coefficients)
            == len(self.b_coefficients)
        ):
            raise Lemma11ViolationError(
                "monomials and coefficient vectors must have equal length"
            )
        degrees = {monomial.degree for monomial in self.monomials}
        if len(degrees) != 1:
            raise Lemma11ViolationError(
                f"all monomials must have the same degree, got degrees {sorted(degrees)}"
            )
        if self.d < 1:
            raise Lemma11ViolationError("monomials must have degree >= 1")
        for index, monomial in enumerate(self.monomials, start=1):
            if monomial.indices[0] != 1:
                raise Lemma11ViolationError(
                    f"x1 must be the first variable of every monomial; "
                    f"T_{index} = {monomial} starts with x{monomial.indices[0]}"
                )
        canonical_forms = [monomial.canonical() for monomial in self.monomials]
        if len(set(canonical_forms)) != len(canonical_forms):
            raise Lemma11ViolationError(
                "the monomials T_1 ... T_m must be pairwise distinct"
            )
        for index, (small, big) in enumerate(
            zip(self.s_coefficients, self.b_coefficients), start=1
        ):
            if not 1 <= small <= big:
                raise Lemma11ViolationError(
                    f"coefficients must satisfy 1 <= c_s,m <= c_b,m; "
                    f"for m={index} got c_s={small}, c_b={big}"
                )

    # -- dimensions (the paper's 𝗇, 𝗆, 𝖽) ------------------------------

    @property
    def n(self) -> int:
        """Number of numerical variables (largest index occurring)."""
        return max(max(monomial.indices) for monomial in self.monomials)

    @property
    def m(self) -> int:
        """Number of monomials."""
        return len(self.monomials)

    @property
    def d(self) -> int:
        """The common degree of all monomials."""
        return self.monomials[0].degree

    # -- polynomials ------------------------------------------------------

    @property
    def p_s(self) -> Polynomial:
        return Polynomial(zip(self.monomials, self.s_coefficients))

    @property
    def p_b(self) -> Polynomial:
        return Polynomial(zip(self.monomials, self.b_coefficients))

    def position_relation(self) -> frozenset[tuple[int, int, int]]:
        """The relation ``𝒫 ⊆ {1..n} × {1..d} × {1..m}`` of Section 4.4.

        ``(n, d, m) ∈ 𝒫`` iff ``x_n`` is the ``d``-th variable of ``T_m``
        (all indices 1-based, like the paper's).
        """
        triples: set[tuple[int, int, int]] = set()
        for m_index, monomial in enumerate(self.monomials, start=1):
            for d_index, n_index in enumerate(monomial.indices, start=1):
                triples.add((n_index, d_index, m_index))
        return frozenset(triples)

    # -- the Lemma 11 inequality --------------------------------------------

    def lhs(self, valuation: Valuation | Sequence[int]) -> int:
        """``c · P_s(Ξ(x⃗))``."""
        return self.c * self.p_s.evaluate(valuation)

    def rhs(self, valuation: Valuation | Sequence[int]) -> int:
        """``Ξ(x₁)^d · P_b(Ξ(x⃗))``."""
        if isinstance(valuation, Mapping):
            x1 = valuation[1]
        else:
            x1 = valuation[0]
        return x1**self.d * self.p_b.evaluate(valuation)

    def holds_for(self, valuation: Valuation | Sequence[int]) -> bool:
        """Does ``c·P_s(Ξ) ≤ Ξ(x₁)^d·P_b(Ξ)`` hold for this valuation?"""
        return self.lhs(valuation) <= self.rhs(valuation)

    def valuations(self, max_value: int) -> Iterator[dict[int, int]]:
        """All valuations ``{1..n} → {0..max_value}``."""
        indices = range(1, self.n + 1)
        for values in itertools.product(range(max_value + 1), repeat=self.n):
            yield dict(zip(indices, values))

    def find_counterexample(self, max_value: int) -> dict[int, int] | None:
        """A valuation violating the inequality, searched on a grid.

        Returns the first ``Ξ`` with ``c·P_s(Ξ) > Ξ(x₁)^d·P_b(Ξ)`` among all
        valuations into ``{0..max_value}``, or ``None``.  (Absence of a grid
        counterexample proves nothing — the problem is undecidable.)
        """
        for valuation in self.valuations(max_value):
            if not self.holds_for(valuation):
                return valuation
        return None

    def __str__(self) -> str:
        return (
            f"{self.c}·({self.p_s})  ≤?  x1^{self.d}·({self.p_b})"
        )
