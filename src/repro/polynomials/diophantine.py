"""A library of concrete Diophantine instances.

Hilbert's 10th problem — does ``Q(Ξ) = 0`` have a solution over ℕ? — is the
paper's source of undecidability (Theorem 6 / reference [18]).  Since no
algorithm decides it, the reproduction exercises the reductions on a suite
of *concrete* polynomials whose solvability is known by elementary number
theory.  Each instance records the polynomial, its solvability status, and
a witness valuation when one exists (witnesses are verified by the test
suite, not trusted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolynomialError
from repro.polynomials.polynomial import Polynomial

__all__ = [
    "DiophantineInstance",
    "linear",
    "pell",
    "pell_nontrivial",
    "sum_of_squares",
    "markov",
    "fermat_cubes",
    "always_positive",
    "parity_obstruction",
    "standard_suite",
]


@dataclass(frozen=True)
class DiophantineInstance:
    """A named polynomial with known solvability over ℕ.

    ``solvable`` is ``True``/``False`` when known; ``witness`` (if present)
    is a valuation ``{variable index: value}`` with ``polynomial(witness) = 0``.
    """

    name: str
    polynomial: Polynomial
    solvable: bool
    witness: dict[int, int] | None
    description: str

    def __post_init__(self) -> None:
        if self.witness is not None:
            if not self.solvable:
                raise PolynomialError(
                    f"{self.name}: witness supplied for an unsolvable instance"
                )
            value = self.polynomial.evaluate(self.witness)
            if value != 0:
                raise PolynomialError(
                    f"{self.name}: claimed witness {self.witness} gives "
                    f"Q = {value}, not 0"
                )

    def __str__(self) -> str:
        status = "solvable" if self.solvable else "unsolvable"
        return f"{self.name}: {self.polynomial} = 0  [{status}]"


def _var(index: int) -> Polynomial:
    return Polynomial.variable(index)


def linear(a: int, b: int, c: int) -> DiophantineInstance:
    """``a·x + b·y − c = 0`` over ℕ (``a, b, c > 0``).

    Solvable iff ``c`` is a non-negative integer combination of ``a`` and
    ``b`` — decided here by a tiny search, which is exact for this family.
    """
    if min(a, b, c) <= 0:
        raise PolynomialError("linear instance requires positive a, b, c")
    polynomial = a * _var(1) + b * _var(2) - c
    witness = None
    for x in range(c // a + 1):
        remainder = c - a * x
        if remainder % b == 0:
            witness = {1: x, 2: remainder // b}
            break
    return DiophantineInstance(
        name=f"linear({a},{b},{c})",
        polynomial=polynomial,
        solvable=witness is not None,
        witness=witness,
        description=f"{a}x + {b}y = {c} over the naturals",
    )


def pell(n: int) -> DiophantineInstance:
    """``x² − n·y² − 1 = 0`` — always solvable over ℕ via ``(1, 0)``."""
    if n < 1:
        raise PolynomialError("pell requires n >= 1")
    polynomial = _var(1) ** 2 - n * _var(2) ** 2 - 1
    return DiophantineInstance(
        name=f"pell({n})",
        polynomial=polynomial,
        solvable=True,
        witness={1: 1, 2: 0},
        description=f"Pell equation x^2 - {n}y^2 = 1 (trivial solution allowed)",
    )


def pell_nontrivial(n: int, witness_x: int | None = None) -> DiophantineInstance:
    """``x² − n·(y+1)² − 1 = 0``: the Pell equation with ``y ≥ 1`` forced.

    Solvable iff ``n`` is **not** a perfect square (classical theory of the
    Pell equation).  For non-square ``n ≤ 30`` a fundamental solution is
    found by search; larger non-square ``n`` require ``witness_x``.
    """
    if n < 1:
        raise PolynomialError("pell_nontrivial requires n >= 1")
    polynomial = _var(1) ** 2 - n * (_var(2) + 1) ** 2 - 1
    root = int(n**0.5)
    if root * root == n:
        return DiophantineInstance(
            name=f"pell_nontrivial({n})",
            polynomial=polynomial,
            solvable=False,
            witness=None,
            description=f"x^2 - {n}(y+1)^2 = 1 with square n: unsolvable",
        )
    witness = None
    if witness_x is not None:
        y_plus_1_squared = (witness_x**2 - 1) // n
        witness = {1: witness_x, 2: int(y_plus_1_squared**0.5) - 1}
    else:
        for x in range(2, 100_000):
            value = x * x - 1
            if value % n == 0:
                square = value // n
                side = int(square**0.5)
                if side >= 1 and side * side == square:
                    witness = {1: x, 2: side - 1}
                    break
        if witness is None:
            raise PolynomialError(
                f"no fundamental solution of Pell({n}) found within the "
                f"search bound; pass witness_x explicitly"
            )
    return DiophantineInstance(
        name=f"pell_nontrivial({n})",
        polynomial=polynomial,
        solvable=True,
        witness=witness,
        description=f"x^2 - {n}(y+1)^2 = 1 with y >= 0 forced non-trivial",
    )


def sum_of_squares(c: int) -> DiophantineInstance:
    """``x² + y² − c = 0``: solvable iff ``c`` is a sum of two squares."""
    if c < 0:
        raise PolynomialError("sum_of_squares requires c >= 0")
    polynomial = _var(1) ** 2 + _var(2) ** 2 - c
    witness = None
    x = 0
    while x * x <= c and witness is None:
        rest = c - x * x
        y = int(rest**0.5)
        for candidate in (y - 1, y, y + 1):
            if candidate >= 0 and candidate * candidate == rest:
                witness = {1: x, 2: candidate}
                break
        x += 1
    return DiophantineInstance(
        name=f"sum_of_squares({c})",
        polynomial=polynomial,
        solvable=witness is not None,
        witness=witness,
        description=f"x^2 + y^2 = {c}",
    )


def markov() -> DiophantineInstance:
    """``x² + y² + z² − 3xyz = 0``: the Markov equation, solvable by (1,1,1)."""
    polynomial = (
        _var(1) ** 2
        + _var(2) ** 2
        + _var(3) ** 2
        - 3 * _var(1) * _var(2) * _var(3)
    )
    return DiophantineInstance(
        name="markov",
        polynomial=polynomial,
        solvable=True,
        witness={1: 1, 2: 1, 3: 1},
        description="Markov triple equation x^2 + y^2 + z^2 = 3xyz",
    )


def fermat_cubes() -> DiophantineInstance:
    """``(x+1)³ + (y+1)³ − (z+1)³ = 0``: unsolvable (Fermat, exponent 3)."""
    polynomial = (
        (_var(1) + 1) ** 3 + (_var(2) + 1) ** 3 - (_var(3) + 1) ** 3
    )
    return DiophantineInstance(
        name="fermat_cubes",
        polynomial=polynomial,
        solvable=False,
        witness=None,
        description="Fermat's last theorem for exponent 3, shifted to force positivity",
    )


def always_positive() -> DiophantineInstance:
    """``x² + 1 = 0``: has no root anywhere, let alone in ℕ."""
    polynomial = _var(1) ** 2 + 1
    return DiophantineInstance(
        name="always_positive",
        polynomial=polynomial,
        solvable=False,
        witness=None,
        description="x^2 + 1 is strictly positive",
    )


def parity_obstruction() -> DiophantineInstance:
    """``2x − 2y − 1 = 0``: unsolvable by parity."""
    polynomial = 2 * _var(1) - 2 * _var(2) - 1
    return DiophantineInstance(
        name="parity_obstruction",
        polynomial=polynomial,
        solvable=False,
        witness=None,
        description="an even number never equals an odd one",
    )


def standard_suite() -> tuple[DiophantineInstance, ...]:
    """The fixed instance suite used by the experiments (E8, E9, E11, E12).

    Mixes solvable and unsolvable instances so both branches of each
    reduction's correctness proof are exercised.
    """
    return (
        linear(2, 3, 7),
        linear(2, 4, 5),
        pell(2),
        pell_nontrivial(2),
        pell_nontrivial(4),
        sum_of_squares(25),
        sum_of_squares(7),
        markov(),
        always_positive(),
        parity_obstruction(),
    )
