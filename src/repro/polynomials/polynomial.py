"""Multivariate polynomials with integer coefficients.

The inputs of Hilbert's 10th problem (Theorem 6 in Appendix B) and every
intermediate object of the Appendix B pipeline.  Internally a polynomial is
a mapping from *canonical* (sorted) monomials to non-zero integer
coefficients; the ordered monomials demanded by Lemma 11 live in
:class:`repro.polynomials.lemma11.Lemma11Instance`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import PolynomialError
from repro.polynomials.monomial import Monomial, Valuation

__all__ = ["Polynomial"]


class Polynomial:
    """An immutable polynomial ``Σ c_i·t_i`` over ℤ.

    >>> x, y = Polynomial.variable(1), Polynomial.variable(2)
    >>> q = x**2 - 2 * y**2 - 1
    >>> q.evaluate({1: 3, 2: 2})
    0
    >>> str(q)
    '-1 + x1^2 - 2*x2^2'
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, int] | Iterable[tuple[Monomial, int]] = ()) -> None:
        collected: dict[Monomial, int] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for monomial, coefficient in items:
            if not isinstance(monomial, Monomial):
                raise PolynomialError(f"not a Monomial: {monomial!r}")
            if not isinstance(coefficient, int):
                raise PolynomialError(f"not an integer coefficient: {coefficient!r}")
            key = monomial.canonical()
            collected[key] = collected.get(key, 0) + coefficient
        self._terms: dict[Monomial, int] = {
            monomial: coefficient
            for monomial, coefficient in sorted(collected.items())
            if coefficient != 0
        }

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls()

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        return cls({Monomial.constant(): value})

    @classmethod
    def variable(cls, index: int) -> "Polynomial":
        """The polynomial ``x_index``."""
        return cls({Monomial.of(index): 1})

    @classmethod
    def from_terms(cls, *terms: tuple[int, Sequence[int]]) -> "Polynomial":
        """Build from ``(coefficient, variable-indices)`` pairs.

        >>> str(Polynomial.from_terms((3, [1, 1]), (-1, [2])))
        '3*x1^2 - x2'
        """
        return cls(
            (Monomial(tuple(indices)), coefficient)
            for coefficient, indices in terms
        )

    # -- accessors ------------------------------------------------------------

    @property
    def terms(self) -> dict[Monomial, int]:
        """``{canonical monomial: coefficient}`` (non-zero coefficients only)."""
        return dict(self._terms)

    @property
    def monomials(self) -> tuple[Monomial, ...]:
        return tuple(self._terms)

    def coefficient(self, monomial: Monomial) -> int:
        return self._terms.get(monomial.canonical(), 0)

    def __iter__(self) -> Iterator[tuple[Monomial, int]]:
        return iter(self._terms.items())

    def is_zero(self) -> bool:
        return not self._terms

    @property
    def degree(self) -> int:
        """The total degree (``0`` for constants and for the zero polynomial)."""
        return max((monomial.degree for monomial in self._terms), default=0)

    @property
    def variables(self) -> frozenset[int]:
        result: set[int] = set()
        for monomial in self._terms:
            result |= monomial.variables
        return frozenset(result)

    def has_natural_coefficients(self) -> bool:
        """Are all coefficients ≥ 0 (required of ``P_s`` and ``P_b``)?"""
        return all(coefficient > 0 for coefficient in self._terms.values())

    def is_homogeneous(self) -> bool:
        """Do all monomials share the same degree (Lemma 11's condition)?"""
        degrees = {monomial.degree for monomial in self._terms}
        return len(degrees) <= 1

    # -- arithmetic ---------------------------------------------------------------

    def __add__(self, other: "Polynomial | int") -> "Polynomial":
        other = _coerce(other)
        terms = dict(self._terms)
        return Polynomial(list(terms.items()) + list(other._terms.items()))

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(
            (monomial, -coefficient) for monomial, coefficient in self._terms.items()
        )

    def __sub__(self, other: "Polynomial | int") -> "Polynomial":
        return self + (-_coerce(other))

    def __rsub__(self, other: "Polynomial | int") -> "Polynomial":
        return _coerce(other) - self

    def __mul__(self, other: "Polynomial | int") -> "Polynomial":
        other = _coerce(other)
        terms: list[tuple[Monomial, int]] = []
        for left_monomial, left_coefficient in self._terms.items():
            for right_monomial, right_coefficient in other._terms.items():
                terms.append(
                    (
                        left_monomial.times(right_monomial),
                        left_coefficient * right_coefficient,
                    )
                )
        return Polynomial(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise PolynomialError(f"negative exponent {exponent}")
        result = Polynomial.constant(1)
        for _ in range(exponent):
            result = result * self
        return result

    def scale(self, factor: int) -> "Polynomial":
        return self * factor

    def split_signs(self) -> tuple["Polynomial", "Polynomial"]:
        """``(Q'_+, Q'_-)`` of Appendix B.2: ``self = positive − negative``.

        Both returned polynomials have natural coefficients.
        """
        positive = Polynomial(
            (monomial, coefficient)
            for monomial, coefficient in self._terms.items()
            if coefficient > 0
        )
        negative = Polynomial(
            (monomial, -coefficient)
            for monomial, coefficient in self._terms.items()
            if coefficient < 0
        )
        return positive, negative

    def rename_variables(self, mapping: Mapping[int, int]) -> "Polynomial":
        """Rename variable indices (injective on the variables present)."""
        present = self.variables
        image = {mapping.get(index, index) for index in present}
        if len(image) != len(present):
            raise PolynomialError("variable renaming must be injective")
        return Polynomial(
            (
                Monomial(tuple(mapping.get(i, i) for i in monomial.indices)),
                coefficient,
            )
            for monomial, coefficient in self._terms.items()
        )

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, valuation: Valuation | Sequence[int]) -> int:
        """The value under a valuation ``Ξ : variables → ℕ``."""
        return sum(
            coefficient * monomial.evaluate(valuation)
            for monomial, coefficient in self._terms.items()
        )

    # -- value semantics -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts: list[str] = []
        for monomial, coefficient in self._terms.items():
            magnitude = abs(coefficient)
            if monomial.degree == 0:
                body = str(magnitude)
            elif magnitude == 1:
                body = str(monomial)
            else:
                body = f"{magnitude}*{monomial}"
            if not parts:
                parts.append(body if coefficient > 0 else f"-{body}")
            else:
                parts.append(f"+ {body}" if coefficient > 0 else f"- {body}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Polynomial({str(self)!r})"


def _coerce(value: "Polynomial | int") -> Polynomial:
    if isinstance(value, int):
        return Polynomial.constant(value)
    if isinstance(value, Polynomial):
        return value
    raise PolynomialError(f"cannot coerce {value!r} to a Polynomial")
