"""Polynomials over ℕ/ℤ, the Lemma 11 normal form, and the Appendix B pipeline."""

from repro.polynomials.diophantine import (
    DiophantineInstance,
    always_positive,
    fermat_cubes,
    linear,
    markov,
    parity_obstruction,
    pell,
    pell_nontrivial,
    standard_suite,
    sum_of_squares,
)
from repro.polynomials.hilbert import HilbertReduction, hilbert_to_lemma11
from repro.polynomials.lemma11 import Lemma11Instance
from repro.polynomials.monomial import Monomial
from repro.polynomials.polynomial import Polynomial

__all__ = [
    "DiophantineInstance",
    "HilbertReduction",
    "Lemma11Instance",
    "Monomial",
    "Polynomial",
    "always_positive",
    "fermat_cubes",
    "hilbert_to_lemma11",
    "linear",
    "markov",
    "parity_obstruction",
    "pell",
    "pell_nontrivial",
    "standard_suite",
    "sum_of_squares",
]
