"""JSON serialization for queries and structures.

Reduction outputs are artifacts worth persisting: a counterexample
database produced by the Theorem 1 pipeline, or the query pair of a
Theorem 3 instance, should be storable and reloadable bit-for-bit.  This
module provides a stable JSON encoding for :class:`Schema`,
:class:`Structure`, :class:`ConjunctiveQuery`, :class:`OpenQuery` and
:class:`QueryProduct`.

Domain elements are restricted to the JSON-friendly closure of strings,
integers, booleans and (nested) tuples — which covers everything the
library itself generates (fresh elements are strings or tagged tuples).
Tuples are encoded as ``{"§": [...]}`` so they survive the round trip
distinctly from lists.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import BagCQError
from repro.queries.atoms import Atom, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.open_query import OpenQuery
from repro.queries.product import QueryProduct
from repro.queries.terms import Constant, Term, Variable
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.structure import Delta, Structure

__all__ = [
    "SerializationError",
    "schema_to_dict",
    "schema_from_dict",
    "structure_to_dict",
    "structure_from_dict",
    "structure_from_facts",
    "delta_to_dict",
    "delta_from_dict",
    "ground_facts_from_text",
    "query_to_dict",
    "query_from_dict",
    "open_query_to_dict",
    "open_query_from_dict",
    "product_to_dict",
    "product_from_dict",
    "dumps",
    "loads",
]

_TUPLE_TAG = "§"


class SerializationError(BagCQError):
    """An object cannot be (de)serialized."""


# -- elements -------------------------------------------------------------


_CONST_TAG = "§const"
_VAR_TAG = "§var"


def _encode_element(element: Any) -> Any:
    if isinstance(element, bool) or isinstance(element, (int, str)):
        return element
    if isinstance(element, tuple):
        return {_TUPLE_TAG: [_encode_element(part) for part in element]}
    # Canonical structures use terms themselves as elements.
    if isinstance(element, Constant):
        return {_CONST_TAG: element.name}
    if isinstance(element, Variable):
        return {_VAR_TAG: element.name}
    raise SerializationError(
        f"cannot serialize domain element of type {type(element).__name__}: "
        f"{element!r}"
    )


def _decode_element(payload: Any) -> Any:
    if isinstance(payload, dict):
        if set(payload) == {_TUPLE_TAG}:
            return tuple(_decode_element(part) for part in payload[_TUPLE_TAG])
        if set(payload) == {_CONST_TAG}:
            return Constant(payload[_CONST_TAG])
        if set(payload) == {_VAR_TAG}:
            return Variable(payload[_VAR_TAG])
        raise SerializationError(f"malformed element payload: {payload!r}")
    if isinstance(payload, (int, str, bool)):
        return payload
    raise SerializationError(f"malformed element payload: {payload!r}")


# -- terms ------------------------------------------------------------------


def _encode_term(term: Term) -> dict:
    kind = "const" if isinstance(term, Constant) else "var"
    return {"kind": kind, "name": term.name}


def _decode_term(payload: dict) -> Term:
    try:
        kind, name = payload["kind"], payload["name"]
    except (KeyError, TypeError):
        raise SerializationError(f"malformed term payload: {payload!r}") from None
    if kind == "var":
        return Variable(name)
    if kind == "const":
        return Constant(name)
    raise SerializationError(f"unknown term kind {kind!r}")


# -- schema --------------------------------------------------------------------


def schema_to_dict(schema: Schema) -> dict:
    return {
        "relations": {symbol.name: symbol.arity for symbol in schema},
    }


def schema_from_dict(payload: dict) -> Schema:
    try:
        relations = payload["relations"]
    except (KeyError, TypeError):
        raise SerializationError(f"malformed schema payload: {payload!r}") from None
    return Schema(
        RelationSymbol(name, arity) for name, arity in relations.items()
    )


# -- structures -------------------------------------------------------------------


def structure_to_dict(structure: Structure) -> dict:
    return {
        "schema": schema_to_dict(structure.schema),
        "facts": {
            name: sorted(
                (
                    [_encode_element(value) for value in values]
                    for values in structure.facts(name)
                ),
                key=repr,
            )
            for name in structure.schema.relation_names
            if structure.facts(name)
        },
        "constants": {
            name: _encode_element(element)
            for name, element in sorted(structure.constants.items())
        },
        "domain": sorted(
            (_encode_element(element) for element in structure.domain), key=repr
        ),
    }


def structure_from_dict(payload: dict) -> Structure:
    try:
        schema = schema_from_dict(payload["schema"])
        facts = {
            name: [
                tuple(_decode_element(value) for value in values)
                for values in tuples
            ]
            for name, tuples in payload.get("facts", {}).items()
        }
        constants = {
            name: _decode_element(element)
            for name, element in payload.get("constants", {}).items()
        }
        domain = [_decode_element(e) for e in payload.get("domain", [])]
    except (KeyError, TypeError) as error:
        raise SerializationError(
            f"malformed structure payload: {error}"
        ) from error
    return Structure(schema, facts, constants, domain)


def structure_from_facts(text: str) -> Structure:
    """Parse an inline database: whitespace-separated ground atoms.

    The shorthand behind ``bagcq evaluate --facts`` and the service's
    ``"facts"`` request field: terms use the query syntax (``#name`` for
    constants; other identifiers become domain elements named after
    themselves), atoms may be separated by whitespace or ``;``.
    """
    from repro.queries.parser import parse_query

    facts: dict[str, set[tuple]] = {}
    arities: dict[str, int] = {}
    constants: dict[str, Any] = {}
    for chunk in text.replace(";", " ").split():
        if not chunk:
            continue
        query = parse_query(chunk)
        for atom in query.atoms:
            values = []
            for term in atom.terms:
                if isinstance(term, Constant):
                    constants[term.name] = term.name
                values.append(term.name)
            arities[atom.relation] = len(values)
            facts.setdefault(atom.relation, set()).add(tuple(values))
    schema = Schema(RelationSymbol(n, a) for n, a in arities.items())
    return Structure(schema, facts, constants)


def ground_facts_from_text(text: str) -> list[tuple[str, tuple]]:
    """Parse ground atoms (``E(a, b); T(a, b, c)``) into ``(name, values)``.

    The same term syntax as :func:`structure_from_facts`: ``#name`` denotes
    a constant (its *name* is used as the element, matching the inline-facts
    shorthand), bare identifiers become elements named after themselves.
    Atoms may be separated by whitespace or ``;`` and may contain spaces
    after commas.  Used by ``bagcq update --insert/--delete``, the
    service's ``/update`` text shorthand, and delta JSON files.
    """
    import re

    from repro.queries.parser import parse_query

    facts: list[tuple[str, tuple]] = []
    stripped = text.replace(";", " ").strip()
    if not stripped:
        return facts
    # Each atom is name(args); the args never nest, so a non-greedy
    # paren match delimits atoms regardless of internal whitespace.
    chunks = re.findall(r"[^\s(),]+\s*\([^()]*\)", stripped)
    remainder = re.sub(r"[^\s(),]+\s*\([^()]*\)", " ", stripped).strip()
    if remainder:
        # Leftover text means something was not a well-formed atom; let
        # the query parser produce its usual diagnostic on the raw text.
        parse_query(stripped)
    for chunk in chunks:
        query = parse_query(chunk)
        for atom in query.atoms:
            facts.append(
                (atom.relation, tuple(term.name for term in atom.terms))
            )
    return facts


# -- deltas ---------------------------------------------------------------------------


def delta_to_dict(delta: Delta) -> dict:
    return {
        "inserts": [
            [name, [_encode_element(value) for value in values]]
            for name, values in delta.inserts
        ],
        "deletes": [
            [name, [_encode_element(value) for value in values]]
            for name, values in delta.deletes
        ],
        "add_elements": [_encode_element(e) for e in delta.add_elements],
        "remove_elements": [_encode_element(e) for e in delta.remove_elements],
    }


def _decode_fact(entry: Any) -> tuple[str, tuple]:
    try:
        name, values = entry
    except (TypeError, ValueError):
        raise SerializationError(f"malformed fact payload: {entry!r}") from None
    if not isinstance(name, str):
        raise SerializationError(f"malformed fact payload: {entry!r}")
    return name, tuple(_decode_element(value) for value in values)


def delta_from_dict(payload: dict) -> Delta:
    if not isinstance(payload, dict):
        raise SerializationError(f"malformed delta payload: {payload!r}")
    try:
        return Delta(
            inserts=tuple(
                _decode_fact(entry) for entry in payload.get("inserts", [])
            ),
            deletes=tuple(
                _decode_fact(entry) for entry in payload.get("deletes", [])
            ),
            add_elements=tuple(
                _decode_element(e) for e in payload.get("add_elements", [])
            ),
            remove_elements=tuple(
                _decode_element(e) for e in payload.get("remove_elements", [])
            ),
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed delta payload: {error}") from error


# -- queries -------------------------------------------------------------------------


def query_to_dict(query: ConjunctiveQuery) -> dict:
    return {
        "atoms": [
            {
                "relation": atom.relation,
                "terms": [_encode_term(term) for term in atom.terms],
            }
            for atom in query.atoms
        ],
        "inequalities": [
            {"left": _encode_term(ineq.left), "right": _encode_term(ineq.right)}
            for ineq in query.inequalities
        ],
    }


def query_from_dict(payload: dict) -> ConjunctiveQuery:
    try:
        atoms = [
            Atom(
                entry["relation"],
                tuple(_decode_term(term) for term in entry["terms"]),
            )
            for entry in payload.get("atoms", [])
        ]
        inequalities = [
            Inequality(_decode_term(entry["left"]), _decode_term(entry["right"]))
            for entry in payload.get("inequalities", [])
        ]
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed query payload: {error}") from error
    return ConjunctiveQuery(atoms, inequalities)


def open_query_to_dict(query: OpenQuery) -> dict:
    return {
        "body": query_to_dict(query.body),
        "head": [variable.name for variable in query.head],
    }


def open_query_from_dict(payload: dict) -> OpenQuery:
    try:
        body = query_from_dict(payload["body"])
        head = payload.get("head", [])
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed open query payload: {error}") from error
    return OpenQuery(body, tuple(head))


def product_to_dict(product: QueryProduct) -> dict:
    return {
        "factors": [
            {"query": query_to_dict(query), "exponent": exponent}
            for query, exponent in product
        ]
    }


def product_from_dict(payload: dict) -> QueryProduct:
    try:
        factors = [
            (query_from_dict(entry["query"]), entry["exponent"])
            for entry in payload.get("factors", [])
        ]
    except (KeyError, TypeError) as error:
        raise SerializationError(
            f"malformed query product payload: {error}"
        ) from error
    return QueryProduct(factors)


# -- top level -----------------------------------------------------------------------

_ENCODERS = {
    Schema: ("schema", schema_to_dict),
    Structure: ("structure", structure_to_dict),
    Delta: ("delta", delta_to_dict),
    ConjunctiveQuery: ("query", query_to_dict),
    OpenQuery: ("open_query", open_query_to_dict),
    QueryProduct: ("query_product", product_to_dict),
}

_DECODERS = {
    "schema": schema_from_dict,
    "structure": structure_from_dict,
    "delta": delta_from_dict,
    "query": query_from_dict,
    "open_query": open_query_from_dict,
    "query_product": product_from_dict,
}


def dumps(obj, indent: int | None = None) -> str:
    """Serialize any supported object to a self-describing JSON string."""
    for cls, (tag, encoder) in _ENCODERS.items():
        if isinstance(obj, cls):
            return json.dumps(
                {"type": tag, "payload": encoder(obj)}, indent=indent
            )
    raise SerializationError(
        f"cannot serialize objects of type {type(obj).__name__}"
    )


def loads(text: str):
    """Inverse of :func:`dumps`."""
    try:
        envelope = json.loads(text)
        tag = envelope["type"]
        payload = envelope["payload"]
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise SerializationError(f"malformed envelope: {error}") from error
    try:
        decoder = _DECODERS[tag]
    except KeyError:
        raise SerializationError(f"unknown payload type {tag!r}") from None
    return decoder(payload)
