"""``repro.service`` — a long-running, shared-cache evaluation daemon.

The library evaluates one query per process invocation; the ROADMAP's
serving goal needs the opposite shape: a warm process that amortizes the
:class:`~repro.homomorphism.cache.CountCache` and the planner's
:class:`~repro.planner.analyze.PlanCache` across millions of requests.
This package provides exactly that, on the standard library alone:

* :class:`EvaluationServer` (``server.py``) — a ``ThreadingHTTPServer``
  front over a bounded worker pool, with admission control (bounded
  queue, structured 429 shedding), **single-flight coalescing** of
  identical in-flight requests keyed by the canonicalization discipline
  the caches already use, per-request deadlines, request-scoped tracing
  (``X-Trace-Id``/``X-Request-Id`` in and out, a bounded flight recorder
  behind ``GET /traces``), per-endpoint latency histograms, ``/healthz``
  and ``/metrics``, and graceful drain on shutdown.
* :class:`ServiceClient` (``client.py``) — a small blocking client with
  retry + exponential backoff + jitter, honoring ``Retry-After``; it
  mints the trace/request ids and reuses the request id across retries.
* ``protocol.py`` — the versioned JSON error envelope, the request
  identity headers, and the single-flight request keys both sides agree
  on.
* ``handlers.py`` — the transport-free request handlers mapping JSON
  bodies onto :func:`repro.homomorphism.engine.count` /
  :func:`~repro.homomorphism.engine.count_ucq`, :func:`repro.planner.plan`
  and :func:`repro.decision.search.find_counterexample`.

Wire commands: ``bagcq serve`` starts a daemon, ``bagcq call`` drives
one from the shell.  See ``docs/SERVICE.md`` for the endpoint and
tuning reference.
"""

from __future__ import annotations

from repro.service.client import (
    DeadlineExceeded,
    RemoteError,
    ServiceClient,
    ServiceProtocolError,
    ServiceUnavailable,
)
from repro.service.databases import DatabaseRegistry, NamedDatabase
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REQUEST_ID_HEADER,
    TRACE_ID_HEADER,
    error_envelope,
    error_from_exception,
    status_for_kind,
)
from repro.service.server import (
    EvaluationServer,
    RequestContext,
    ServerConfig,
    serve,
)

__all__ = [
    "DatabaseRegistry",
    "DeadlineExceeded",
    "EvaluationServer",
    "NamedDatabase",
    "PROTOCOL_VERSION",
    "REQUEST_ID_HEADER",
    "RemoteError",
    "RequestContext",
    "ServerConfig",
    "ServiceClient",
    "ServiceProtocolError",
    "ServiceUnavailable",
    "TRACE_ID_HEADER",
    "error_envelope",
    "error_from_exception",
    "serve",
    "status_for_kind",
]
