"""The evaluation daemon: HTTP front, bounded worker pool, single-flight.

Architecture (one process, threads only, standard library only)::

    ThreadingHTTPServer (one thread per connection)
        │  parse + validate body          ── cheap, done on the HTTP thread
        │  single-flight lookup           ── identical in-flight work merges
        │  admission control              ── bounded queue; Full → 429 shed
        ▼
    queue.Queue(maxsize=queue_depth)
        ▼
    N worker threads (warm, registry-activated)
        │  CountCache + PlanCache shared  ── process-wide, thread-safe
        ▼
    flight resolution → every waiting HTTP thread fans the result out

**Admission control.**  Work enters a bounded queue with a non-blocking
put: when ``queue_depth`` jobs are already waiting, the request is shed
immediately with a structured 429 envelope carrying a ``Retry-After``
hint — the server never builds an unbounded backlog and never hangs a
client.

**Single-flight coalescing.**  Before enqueueing, the request's
:func:`~repro.service.protocol.request_key` (built on
:func:`~repro.homomorphism.cache.canonical_component`, the count cache's
own α-equivalence discipline) is looked up in the in-flight table; a
match parks the new request on the existing flight instead of enqueueing
duplicate work.  N concurrent identical requests cost one evaluation —
and coalesced requests bypass the admission queue entirely, since they
add no work.

**Deadlines.**  Each request carries ``deadline_ms`` (defaulting to the
server's).  The waiting HTTP thread gives up at the deadline and
responds with a ``deadline_exceeded`` envelope; the evaluation itself is
never interrupted mid-flight (Python threads cannot be killed safely),
so shared caches only ever see *completed, correct* counts — a timeout
cannot poison them.  A queued job whose waiters have all timed out is
skipped when it reaches a worker (``service.expired_skipped``).

**Graceful shutdown.**  :meth:`EvaluationServer.close` stops accepting,
marks the server draining (new requests get a 503 ``shutting_down``
envelope), lets queued + in-flight work finish, and joins the workers.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import BagCQError
from repro.homomorphism.cache import DEFAULT_CACHE_SIZE, CountCache
from repro.obs import activate
from repro.obs.metrics import Registry
from repro.obs.report import SCHEMA_VERSION, stable_json_dumps
from repro.obs.trace import FlightRecorder, Span
from repro.service import protocol
from repro.service.databases import DEFAULT_MAX_DATABASES, DatabaseRegistry
from repro.service.handlers import ENDPOINTS, ParsedRequest

__all__ = ["EvaluationServer", "RequestContext", "ServerConfig", "serve"]

#: Every ``service.*`` counter, pre-registered at zero so a fresh
#: ``/metrics`` scrape reports the full family deterministically.
_SERVICE_COUNTERS = (
    "service.requests",
    "service.logical_requests",
    "service.retried_requests",
    "service.admitted",
    "service.coalesced",
    "service.shed",
    "service.deadline_exceeded",
    "service.expired_skipped",
    "service.completed",
    "service.errors",
    "service.rejected_draining",
    "service.http_lines",
    "service.db_loads",
    "service.db_updates",
)

#: The incremental-evaluation counter family (see docs/INCREMENTAL.md),
#: pre-registered for the same deterministic-scrape reason.
_DELTA_COUNTERS = (
    "delta.applied",
    "delta.invalidations",
    "delta.migrated",
    "delta.reused_factors",
    "delta.affected_components",
)


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one :class:`EvaluationServer` (see docs/SERVICE.md)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → ephemeral; read the bound port off `.address`
    workers: int = 4
    #: Jobs allowed to wait for a worker; beyond this, requests are shed.
    queue_depth: int = 64
    #: Applied when a request carries no ``deadline_ms`` of its own.
    default_deadline_ms: int = 30_000
    #: Hard ceiling on any requested deadline.
    max_deadline_ms: int = 300_000
    #: Single-flight coalescing of identical in-flight requests.
    coalesce: bool = True
    #: ``Retry-After`` hint (seconds) sent with 429/503 envelopes.
    retry_after_s: float = 0.05
    count_cache_size: int = DEFAULT_CACHE_SIZE
    #: Completed request traces held for ``GET /traces`` (flight recorder).
    trace_buffer: int = 128
    #: Request ids remembered for retry recognition (LRU-bounded).
    recent_ids: int = 1024
    #: Named databases resident at once (``POST /db``); loads beyond this
    #: are rejected unless they rebind an existing name.
    max_databases: int = DEFAULT_MAX_DATABASES
    #: Root of the durable cache tier (``repro.shard.persist``).  When
    #: set, the count/plan/containment caches warm-restore from it at
    #: startup, write through to it, and ``POST /snapshot`` bulk-syncs
    #: it; ``None`` (the default) keeps all caches memory-only.
    snapshot_dir: str | None = None


class _Flight:
    """One in-flight unit of work and everyone waiting on it."""

    __slots__ = (
        "key",
        "event",
        "result",
        "error",
        "waiters",
        "deadline",
        "enqueued_at",
        "spans",
        "leader_request_id",
    )

    def __init__(self, key: tuple, deadline: float) -> None:
        self.key = key
        self.event = threading.Event()
        self.result: dict | None = None
        self.error: BaseException | None = None
        self.waiters = 1
        self.deadline = deadline
        #: ``perf_counter`` at admission; the worker derives queue wait.
        self.enqueued_at: float | None = None
        #: Worker-built spans (queue_wait, evaluate), attached before the
        #: event is set so the leader's HTTP thread can adopt them into
        #: its request trace without cross-thread context variables.
        self.spans: list[Span] = []
        #: Request id of the waiter that created the flight; coalesced
        #: waiters record it so a trace names whose evaluation it shared.
        self.leader_request_id: str | None = None


class _RecentIds:
    """A bounded LRU set of request ids, for recognizing retries.

    ``seen(id)`` returns whether the id was already offered and records
    it; capacity-bounded so a long-lived server cannot grow memory with
    the number of requests it ever served.  Thread-safe.
    """

    __slots__ = ("_capacity", "_ids", "_lock")

    def __init__(self, capacity: int) -> None:
        self._capacity = max(1, capacity)
        self._ids: OrderedDict[str, None] = OrderedDict()
        self._lock = threading.Lock()

    def seen(self, request_id: str) -> bool:
        with self._lock:
            present = request_id in self._ids
            if present:
                self._ids.move_to_end(request_id)
            else:
                self._ids[request_id] = None
                if len(self._ids) > self._capacity:
                    self._ids.popitem(last=False)
            return present


class RequestContext:
    """Identity and trace skeleton of one HTTP request.

    Created on the HTTP connection thread before any processing, so every
    response — including parse failures — carries the same ``trace_id``
    and ``request_id`` the client sent (or server-minted replacements).
    The root span collects children (admission, coalesce/wait, shed, plus
    worker-built queue_wait/evaluate spans adopted from the flight) and
    is snapshotted into the flight recorder when the request finishes.
    """

    __slots__ = (
        "endpoint",
        "trace_id",
        "request_id",
        "retried",
        "coalesced",
        "root",
        "started",
    )

    def __init__(
        self, endpoint: str, trace_id: str, request_id: str, retried: bool
    ) -> None:
        self.endpoint = endpoint
        self.trace_id = trace_id
        self.request_id = request_id
        self.retried = retried
        self.coalesced = False
        self.started = time.perf_counter()
        self.root = Span(
            "request",
            attrs={
                "endpoint": endpoint,
                "trace_id": trace_id,
                "request_id": request_id,
            },
        )
        self.root.start = self.started

    def child(self, name: str, **attrs) -> Span:
        """Open a child span under the root (single-threaded: HTTP thread)."""
        node = Span(name, attrs)
        node.start = time.perf_counter()
        self.root.children.append(node)
        return node

    @staticmethod
    def end(node: Span, **attrs) -> None:
        node.duration = time.perf_counter() - (node.start or 0.0)
        if attrs:
            node.set(**attrs)


class EvaluationServer:
    """A warm, bounded, coalescing evaluation daemon.

    Start with :meth:`start` (non-blocking; binds the socket and spins up
    the pool) or :func:`serve` (blocking, for the CLI).  Thread-safe to
    use from tests: ``server.address`` gives the bound ``(host, port)``.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        if self.config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.config.workers}")
        if self.config.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.config.queue_depth}"
            )
        self.registry = Registry()
        for name in _SERVICE_COUNTERS + _DELTA_COUNTERS:
            self.registry.counter(name)
        self.registry.gauge("service.inflight").set(0)
        self.registry.gauge("service.queued").set(0)
        self.registry.gauge("service.databases").set(0)
        # End-to-end and evaluate-only latency distributions, one
        # histogram per endpoint, pre-registered so a fresh /metrics
        # scrape reports the full family (with zero counts).
        for endpoint in sorted(ENDPOINTS):
            self.registry.histogram(f"service.request_ms.{endpoint}")
            self.registry.histogram(f"service.time.{endpoint}")
        self.recorder = FlightRecorder(self.config.trace_buffer)
        self._recent_ids = _RecentIds(self.config.recent_ids)
        self.count_cache = CountCache(self.config.count_cache_size)
        self.databases = DatabaseRegistry(
            self.count_cache, max_databases=self.config.max_databases
        )
        self.durable = None
        self._restore_report: dict | None = None
        if self.config.snapshot_dir is not None:
            from repro.containment_set import default_containment_cache
            from repro.planner.plan import default_plan_cache
            from repro.shard.persist import (
                SNAPSHOT_COUNTERS,
                DurableCacheStore,
            )

            for name in SNAPSHOT_COUNTERS:
                self.registry.counter(name)
            self.durable = DurableCacheStore(
                self.config.snapshot_dir, registry=self.registry
            )
            # Warm-restore before any traffic, then write through: the
            # plan and containment caches are process-wide singletons
            # (one server per worker process in the sharded deployment),
            # the count cache is this server's own.
            self._restore_report = self.durable.restore_all(
                self.count_cache,
                default_plan_cache(),
                default_containment_cache(),
            )
            self.count_cache.attach_durable(self.durable)
            default_plan_cache().attach_durable(self.durable)
            default_containment_cache().attach_durable(self.durable)
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_depth)
        self._flights: dict[tuple, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._draining = False
        self._started = False
        self._closed = False
        self._workers: list[threading.Thread] = []
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "EvaluationServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        server = self

        class _Handler(_RequestHandler):
            evaluation_server = server

        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.daemon_threads = True
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"bagcq-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="bagcq-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("server not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self, drain: bool = True) -> None:
        """Stop accepting, drain queued + in-flight work, join the pool."""
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        self._draining = True
        if drain:
            # Sentinels park behind all queued work, so every admitted
            # job is executed (and its waiters answered) before exit.
            for _ in self._workers:
                self._queue.put(None)
            for worker in self._workers:
                worker.join(timeout=60)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10)
        if self.durable is not None:
            # The plan/containment caches are process-wide: leave no
            # dangling write-through sink behind (the next server — or
            # none — decides anew).  Detach only our own store; a newer
            # server may already have replaced it.
            from repro.containment_set import default_containment_cache
            from repro.planner.plan import default_plan_cache

            self.count_cache.attach_durable(None)
            for cache in (default_plan_cache(), default_containment_cache()):
                if getattr(cache, "_durable", None) is self.durable:
                    cache.attach_durable(None)

    def __enter__(self) -> "EvaluationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request path ------------------------------------------------------

    def _counter(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def new_context(self, endpoint: str, headers=None) -> RequestContext:
        """Mint or adopt the request's identity; count logical vs retried.

        A usable ``X-Trace-Id``/``X-Request-Id`` pair from the client is
        adopted verbatim (retries reuse it, so the recent-id LRU can
        recognize them); anything absent or malformed degrades to a
        server-minted id rather than a rejection.
        """
        get = (lambda name: None) if headers is None else headers.get
        trace_id = protocol.clean_id(get(protocol.TRACE_ID_HEADER))
        if trace_id is None:
            trace_id = protocol.mint_id()
        request_id = protocol.clean_id(get(protocol.REQUEST_ID_HEADER))
        if request_id is None:
            request_id = protocol.mint_id()
            retried = False
        else:
            retried = self._recent_ids.seen(request_id)
        self._counter(
            "service.retried_requests" if retried
            else "service.logical_requests"
        )
        return RequestContext(endpoint, trace_id, request_id, retried)

    def finish_request(self, context: RequestContext, status: str) -> None:
        """Close the request trace: histogram + flight-recorder entry."""
        context.root.duration = time.perf_counter() - context.started
        context.root.set(status=status)
        if context.endpoint in ENDPOINTS:
            self.registry.histogram(
                f"service.request_ms.{context.endpoint}"
            ).observe(context.root.duration)
        self.recorder.record(
            {
                "trace_id": context.trace_id,
                "request_id": context.request_id,
                "endpoint": context.endpoint,
                "status": status,
                "retried": context.retried,
                "duration_ms": context.root.duration_ms,
                "spans": context.root.snapshot(),
            }
        )

    def submit(
        self,
        endpoint: str,
        body: dict,
        deadline_ms: int | None,
        context: RequestContext | None = None,
    ) -> dict:
        """Admit, (maybe) coalesce, execute, and wait — the whole request.

        Returns the response dict; raises :class:`_ServiceFailure` with a
        ready-made envelope for every structured failure mode.  Called on
        the HTTP connection thread.
        """
        if context is None:
            context = self.new_context(endpoint)
        self._counter("service.requests")
        admission = context.child("admission")
        try:
            if self._draining:
                self._counter("service.rejected_draining")
                raise _ServiceFailure(
                    protocol.KIND_SHUTTING_DOWN,
                    "server is draining; retry against another replica",
                    retry_after=self.config.retry_after_s,
                )
            parser = ENDPOINTS.get(endpoint)
            if parser is None:
                raise _ServiceFailure(
                    protocol.KIND_NOT_FOUND, f"unknown endpoint /{endpoint}"
                )
            deadline_s = (
                min(
                    deadline_ms if deadline_ms is not None
                    else self.config.default_deadline_ms,
                    self.config.max_deadline_ms,
                )
                / 1000.0
            )
            if deadline_s <= 0:
                raise _ServiceFailure(
                    protocol.KIND_BAD_REQUEST,
                    f"deadline_ms must be positive, got {deadline_ms}",
                )
            try:
                request = parser(body, self.count_cache, self.databases)
            except BagCQError as error:
                self._counter("service.errors")
                raise _ServiceFailure.from_exception(error) from error
            deadline = time.monotonic() + deadline_s
            flight, created = self._join_or_create_flight(
                request, deadline, context
            )
        except _ServiceFailure as failure:
            context.end(admission, outcome=failure.kind)
            raise

        if created:
            try:
                flight.enqueued_at = time.perf_counter()
                self._queue.put_nowait((request, flight))
                self.registry.gauge("service.queued").set_max(self._queue.qsize())
                self._counter("service.admitted")
                context.end(admission, outcome="admitted")
            except queue.Full:
                shed = _ServiceFailure(
                    protocol.KIND_OVERLOADED,
                    f"admission queue full ({self.config.queue_depth} deep); "
                    "load shed",
                    retry_after=self.config.retry_after_s,
                )
                self._abandon_flight(flight, shed)
                self._counter("service.shed")
                context.end(admission, outcome="shed")
                context.end(
                    context.child("shed"),
                    queue_depth=self.config.queue_depth,
                )
                raise shed from None
        else:
            self._counter("service.coalesced")
            context.coalesced = True
            context.end(admission, outcome="coalesced")

        # "wait" for the leader (it owns the evaluation), "coalesce" for
        # followers (they ride along on the leader's flight).
        wait_span = context.child("wait" if created else "coalesce")
        if not created and flight.leader_request_id is not None:
            wait_span.set(leader_request_id=flight.leader_request_id)
        remaining = deadline - time.monotonic()
        completed = flight.event.wait(timeout=max(0.0, remaining))
        context.end(wait_span, completed=completed)
        if not completed:
            self._leave_flight(flight)
            self._counter("service.deadline_exceeded")
            raise _ServiceFailure(
                protocol.KIND_DEADLINE,
                f"deadline of {deadline_s * 1000:.0f} ms exceeded; "
                "the evaluation may still complete and warm the cache",
            )
        if created:
            # Adopt the worker-built spans (queue_wait, evaluate) into
            # the leader's request trace.  Safe: the worker attached them
            # before setting the event, and only the leader adopts.
            context.root.children.extend(flight.spans)
        if flight.error is not None:
            self._counter("service.errors")
            if isinstance(flight.error, _ServiceFailure):
                raise flight.error
            raise _ServiceFailure.from_exception(flight.error)
        assert flight.result is not None
        return flight.result

    def _join_or_create_flight(
        self,
        request: ParsedRequest,
        deadline: float,
        context: RequestContext | None = None,
    ) -> tuple[_Flight, bool]:
        leader_id = None if context is None else context.request_id
        if not self.config.coalesce:
            flight = _Flight(request.key, deadline)
            flight.leader_request_id = leader_id
            return flight, True
        with self._flights_lock:
            existing = self._flights.get(request.key)
            if existing is not None:
                existing.waiters += 1
                existing.deadline = max(existing.deadline, deadline)
                return existing, False
            flight = _Flight(request.key, deadline)
            flight.leader_request_id = leader_id
            self._flights[request.key] = flight
            return flight, True

    def _leave_flight(self, flight: _Flight) -> None:
        """A waiter timed out; the flight may become abandoned."""
        with self._flights_lock:
            flight.waiters -= 1

    def _abandon_flight(self, flight: _Flight, error: BaseException) -> None:
        """Resolve a never-enqueued flight so coalesced waiters wake too."""
        with self._flights_lock:
            self._flights.pop(flight.key, None)
        flight.error = error
        flight.event.set()

    # -- worker side -------------------------------------------------------

    def _worker_loop(self) -> None:
        # Activate the server's registry in this thread: context vars do
        # not cross thread boundaries, so without this the engine/cache/
        # plan counters of evaluations would vanish instead of landing
        # in /metrics.
        with activate(self.registry):
            while True:
                item = self._queue.get()
                if item is None:  # shutdown sentinel
                    return
                request, flight = item
                self.registry.gauge("service.queued").set(self._queue.qsize())
                dequeued = time.perf_counter()
                queue_wait = Span("queue_wait")
                queue_wait.start = (
                    dequeued if flight.enqueued_at is None
                    else flight.enqueued_at
                )
                queue_wait.duration = dequeued - queue_wait.start
                with self._flights_lock:
                    expired = (
                        flight.waiters <= 0
                        and time.monotonic() > flight.deadline
                    )
                    if expired:
                        # Nobody is listening anymore: drop the job instead
                        # of spending a worker on it, and make the key
                        # immediately reusable.
                        self._flights.pop(flight.key, None)
                if expired:
                    self._counter("service.expired_skipped")
                    queue_wait.set(outcome="expired_skipped")
                    flight.spans = [queue_wait]
                    flight.error = BagCQError("expired before execution")
                    flight.event.set()
                    continue
                with self._inflight_lock:
                    self._inflight += 1
                    self.registry.gauge("service.inflight").set(self._inflight)
                evaluate = Span(
                    "evaluate", attrs={"endpoint": request.endpoint}
                )
                evaluate.start = time.perf_counter()
                try:
                    with self.registry.histogram(
                        f"service.time.{request.endpoint}"
                    ).time():
                        flight.result = request.run()
                    self._counter("service.completed")
                    evaluate.set(outcome="ok")
                except BaseException as error:  # noqa: BLE001 — fanned to waiters
                    flight.error = error
                    evaluate.set(outcome="error", error=type(error).__name__)
                finally:
                    evaluate.duration = time.perf_counter() - evaluate.start
                    # Attach spans *before* event.set(): the leader reads
                    # them only after wait() returns.
                    flight.spans = [queue_wait, evaluate]
                    with self._inflight_lock:
                        self._inflight -= 1
                        self.registry.gauge("service.inflight").set(
                            self._inflight
                        )
                    with self._flights_lock:
                        self._flights.pop(flight.key, None)
                    flight.event.set()

    # -- introspection -----------------------------------------------------

    def health(self) -> dict:
        from repro.containment_set import default_containment_cache
        from repro.planner.plan import plan_cache_occupancy

        payload = {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
            "queued": self._queue.qsize(),
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "coalesce": self.config.coalesce,
            # Admission backlog as a first-class object (the legacy
            # ``queued``/``queue_depth`` scalars stay for old scrapers).
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.config.queue_depth,
            },
            "workers_detail": [
                {"name": worker.name, "alive": worker.is_alive()}
                for worker in self._workers
            ],
            # Occupancy of every cache tier a router wants to see in its
            # aggregated fleet view, not just the count cache.
            "caches": {
                "count": self.count_cache.stats(),
                "plan": plan_cache_occupancy(),
                "containment": default_containment_cache().stats(),
            },
            "count_cache": self.count_cache.stats(),
            "databases": self.databases.snapshot(),
            "traces": {
                "capacity": self.recorder.capacity,
                "recorded": self.recorder.recorded,
                "dropped": self.recorder.dropped,
            },
        }
        if self.durable is not None:
            payload["snapshot"] = {
                "directory": str(self.durable.root),
                "files": self.durable.stats(),
                "restored": self._restore_report,
            }
        return payload

    def snapshot(self) -> dict:
        """``POST /snapshot``: bulk-sync all three caches to disk."""
        if self.durable is None:
            raise _ServiceFailure(
                protocol.KIND_BAD_REQUEST,
                "server has no snapshot directory; "
                "start it with --snapshot-dir",
            )
        from repro.containment_set import default_containment_cache
        from repro.planner.plan import default_plan_cache

        saved = self.durable.save_all(
            self.count_cache,
            default_plan_cache(),
            default_containment_cache(),
        )
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "snapshot_dir": str(self.durable.root),
            "saved": saved,
            "files": self.durable.stats(),
        }

    def metrics_json(self) -> str:
        return stable_json_dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "metrics": self.registry.snapshot(),
            }
        )

    def traces_json(self) -> str:
        """``GET /traces``: the flight recorder as stable JSON."""
        return stable_json_dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "capacity": self.recorder.capacity,
                "recorded": self.recorder.recorded,
                "dropped": self.recorder.dropped,
                "traces": self.recorder.snapshot(),
            }
        )


class _ServiceFailure(Exception):
    """A structured failure with its wire envelope attached."""

    def __init__(
        self, kind: str, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.retry_after = retry_after
        self.envelope = protocol.error_envelope(kind, message, retry_after)
        self.status = protocol.status_for_kind(kind)

    @classmethod
    def from_exception(cls, error: BaseException) -> "_ServiceFailure":
        envelope = protocol.error_from_exception(error)
        entry = envelope["error"]
        return cls(entry["kind"], entry["message"], entry["retry_after"])


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP onto the :class:`EvaluationServer` it belongs to."""

    evaluation_server: EvaluationServer  # set by the start() subclass
    protocol_version = "HTTP/1.1"
    #: Sockets that go quiet are dropped, so shutdown cannot wedge on a
    #: client that connected and never finished its request.
    timeout = 30

    server_version = "bagcq-service/1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Access logging is a counter, not a stderr line-per-request.
        self.evaluation_server.registry.counter("service.http_lines").inc()

    def _send_json(
        self,
        status: int,
        payload: dict,
        retry_after: float | None = None,
        context: RequestContext | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:.3f}")
        if context is not None:
            self.send_header(protocol.TRACE_ID_HEADER, context.trace_id)
            self.send_header(protocol.REQUEST_ID_HEADER, context.request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_failure(
        self,
        failure: _ServiceFailure,
        context: RequestContext | None = None,
    ) -> None:
        payload = failure.envelope
        if context is not None:
            payload = protocol.stamp_ids(
                payload, context.trace_id, context.request_id
            )
        self._send_json(failure.status, payload, failure.retry_after, context)

    def _fail_request(
        self, failure: _ServiceFailure, context: RequestContext
    ) -> None:
        """Close out the request's trace, then send the envelope.

        Trace first: once the client holds the response it may immediately
        scrape /metrics or /traces and must see its own request there.
        """
        self.evaluation_server.finish_request(context, failure.kind)
        self._send_failure(failure, context)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        server = self.evaluation_server
        if self.path == "/healthz":
            self._send_json(200, server.health())
        elif self.path == "/metrics":
            body = server.metrics_json().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/traces":
            body = server.traces_json().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.lstrip("/") in ENDPOINTS or self.path == "/snapshot":
            self._send_failure(
                _ServiceFailure(
                    protocol.KIND_METHOD,
                    f"{self.path} requires POST",
                )
            )
        else:
            self._send_failure(
                _ServiceFailure(
                    protocol.KIND_NOT_FOUND, f"no such endpoint {self.path}"
                )
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        server = self.evaluation_server
        endpoint = self.path.lstrip("/")
        context = server.new_context(endpoint, self.headers)
        if endpoint in ("healthz", "metrics", "traces"):
            self._fail_request(
                _ServiceFailure(
                    protocol.KIND_METHOD, f"{self.path} requires GET"
                ),
                context,
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b""
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as error:
            server.registry.counter("service.errors").inc()
            self._fail_request(
                _ServiceFailure(
                    protocol.KIND_BAD_REQUEST,
                    f"request body is not valid JSON: {error}",
                ),
                context,
            )
            return
        deadline_ms = None
        if isinstance(body, dict) and "deadline_ms" in body:
            deadline_value = body["deadline_ms"]
            if isinstance(deadline_value, bool) or not isinstance(
                deadline_value, int
            ):
                self._fail_request(
                    _ServiceFailure(
                        protocol.KIND_BAD_REQUEST,
                        f"'deadline_ms' must be an integer, "
                        f"got {deadline_value!r}",
                    ),
                    context,
                )
                return
            deadline_ms = deadline_value
        try:
            if endpoint == "snapshot":
                # Administrative, not evaluation traffic: bypasses the
                # admission queue and single-flight (snapshots are
                # idempotent and cheap relative to the work they save).
                result = server.snapshot()
            else:
                result = server.submit(endpoint, body, deadline_ms, context)
        except _ServiceFailure as failure:
            self._fail_request(failure, context)
            return
        # Record the trace before the response goes out: a client holding
        # its answer may immediately scrape /metrics or /traces and must
        # see its own request there (read-your-writes).
        server.finish_request(
            context, "coalesced" if context.coalesced else "completed"
        )
        self._send_json(
            200,
            protocol.stamp_ids(result, context.trace_id, context.request_id),
            context=context,
        )


def serve(config: ServerConfig | None = None) -> None:
    """Blocking entry point (``bagcq serve``): run until interrupted."""
    server = EvaluationServer(config)
    server.start()
    host, port = server.address
    print(f"bagcq service listening on http://{host}:{port}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("draining…", flush=True)
    finally:
        server.close()
